//! Gate-equivalent area and logic-level delay cost model.
//!
//! The paper reports cycle-time and area figures obtained from a commercial
//! 65nm synthesis flow. This reproduction replaces the standard-cell library
//! with an explicit, documented cost model:
//!
//! * **delay** is measured in logic levels (unit-delay model) — a ripple
//!   adder of width `w` costs about `w` levels, a Kogge-Stone prefix adder
//!   about `2·log2(w)`, a SECDED decoder a few levels more than its parity
//!   tree, and so on;
//! * **area** is measured in gate equivalents (GE), with per-bit figures for
//!   datapath blocks and fixed overheads for the elastic controllers
//!   (EB controller, early-evaluation mux controller, shared-module
//!   controller with its scheduler).
//!
//! Absolute numbers are therefore not comparable with the paper's 65nm
//! picoseconds/µm², but *relative* comparisons (speculative vs. baseline,
//! overhead per pipeline stage) are — which is all the paper's conclusions
//! rest on. The constants are plain public fields so experiments can
//! recalibrate them.

use std::collections::BTreeMap;

use elastic_core::{Netlist, Node, NodeKind, Op};
use elastic_datapath::adder::kogge_stone_levels;

/// Cost model constants plus per-operation delay/area rules.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Area of one bit of elastic-buffer storage implemented with a pair of
    /// transparent latches (Figure 2(a)), in gate equivalents.
    pub latch_pair_area_per_bit: f64,
    /// Area of one bit of flip-flop storage (used by the `Lb = 0` buffer of
    /// Figure 5), in gate equivalents.
    pub flipflop_area_per_bit: f64,
    /// Fixed area of an EB handshake controller.
    pub eb_controller_area: f64,
    /// Fixed area of a fork/join controller per port.
    pub join_controller_area_per_port: f64,
    /// Area of a 2-to-1 multiplexor per data bit.
    pub mux_area_per_bit: f64,
    /// Additional fixed area of an early-evaluation mux controller with its
    /// anti-token counters.
    pub early_eval_controller_area: f64,
    /// Fixed area of the shared-module controller (Figure 4(b)).
    pub shared_controller_area: f64,
    /// Area of the scheduler / prediction logic of a shared module.
    pub scheduler_area: f64,
    /// Per-entry control overhead of a commit-stage lane (FIFO pointers,
    /// kill bookkeeping) beyond the data flip-flops. Together with
    /// [`CostModel::flipflop_area_per_bit`] this makes the commit stage's
    /// area **linear in `lanes × depth`** — the cost side of the
    /// latency/throughput-versus-depth trade swept by
    /// `examples/commit_depth.rs`.
    pub commit_slot_control_area: f64,
    /// Extra delay (levels) contributed by elastic control logic on the
    /// datapath path of a stage (valid gating, mux select buffering).
    pub controller_delay_levels: f64,
    /// Clock overhead (register clock-to-output plus setup), in levels.
    pub clock_overhead_levels: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latch_pair_area_per_bit: 8.0,
            flipflop_area_per_bit: 6.0,
            eb_controller_area: 14.0,
            join_controller_area_per_port: 6.0,
            mux_area_per_bit: 3.0,
            early_eval_controller_area: 22.0,
            shared_controller_area: 30.0,
            scheduler_area: 36.0,
            commit_slot_control_area: 5.0,
            controller_delay_levels: 1.0,
            clock_overhead_levels: 2.0,
        }
    }
}

/// Area of a design, split by contribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Combinational datapath logic.
    pub datapath: f64,
    /// Elastic buffers (storage plus their controllers).
    pub buffers: f64,
    /// Other elastic control (forks, mux controllers, shared-module control,
    /// schedulers).
    pub control: f64,
    /// Per-node contributions, for reports.
    pub per_node: BTreeMap<String, f64>,
}

impl AreaBreakdown {
    /// Total area in gate equivalents.
    pub fn total(&self) -> f64 {
        self.datapath + self.buffers + self.control
    }
}

impl CostModel {
    /// Combinational delay of an operation in logic levels.
    pub fn op_delay(&self, op: &Op) -> f64 {
        match op {
            Op::Identity | Op::Const(_) | Op::Mask { .. } | Op::BitSelect { .. } => 0.0,
            Op::Not | Op::Neg => 1.0,
            Op::And | Op::Or | Op::Xor => 1.0,
            Op::Shl | Op::Shr => 3.0,
            Op::Inc | Op::Dec => 4.0,
            Op::Eq | Op::Ne | Op::Lt => 4.0,
            Op::Add | Op::Sub => 8.0,
            Op::Alu8 => 10.0,
            Op::RippleAdd { width } => f64::from(*width) + 1.0,
            Op::KoggeStoneAdd { width } => 2.0 * f64::from(kogge_stone_levels(*width)) + 2.0,
            Op::ApproxAdd { width, spec_bits } => {
                f64::from((*spec_bits).max(width - spec_bits)) + 1.0
            }
            Op::ApproxAddErr { spec_bits, .. } => f64::from(*spec_bits) + 2.0,
            Op::SecdedEncode { data_width } => f64::from(kogge_stone_levels(*data_width)) + 3.0,
            Op::SecdedCorrect { data_width } => f64::from(kogge_stone_levels(*data_width)) + 6.0,
            Op::SecdedSyndrome { data_width } => f64::from(kogge_stone_levels(*data_width)) + 4.0,
            Op::Lut(_) => 2.0,
            Op::Opaque { delay_levels, .. } => f64::from(*delay_levels),
            _ => 1.0,
        }
    }

    /// Area of an operation in gate equivalents.
    pub fn op_area(&self, op: &Op) -> f64 {
        match op {
            Op::Identity | Op::Const(_) | Op::Mask { .. } | Op::BitSelect { .. } => 0.0,
            Op::Not | Op::Neg => 8.0,
            Op::And | Op::Or | Op::Xor => 16.0,
            Op::Shl | Op::Shr => 60.0,
            Op::Inc | Op::Dec => 30.0,
            Op::Eq | Op::Ne | Op::Lt => 24.0,
            Op::Add | Op::Sub => 80.0,
            Op::Alu8 => 280.0,
            Op::RippleAdd { width } => 7.0 * f64::from(*width),
            Op::KoggeStoneAdd { width } => {
                let levels = f64::from(kogge_stone_levels(*width));
                f64::from(*width) * (6.0 + 3.0 * levels)
            }
            Op::ApproxAdd { width, .. } => 7.5 * f64::from(*width),
            Op::ApproxAddErr { spec_bits, .. } => 7.0 * f64::from(*spec_bits) + 10.0,
            Op::SecdedEncode { data_width } => 4.0 * f64::from(*data_width),
            Op::SecdedCorrect { data_width } => 9.0 * f64::from(*data_width),
            Op::SecdedSyndrome { data_width } => 5.0 * f64::from(*data_width),
            Op::Lut(table) => 4.0 * table.len() as f64,
            Op::Opaque { area_ge, .. } => f64::from(*area_ge),
            _ => 10.0,
        }
    }

    /// Combinational delay contributed by a node on the forward data path.
    ///
    /// Sequential nodes (buffers, the variable-latency unit) contribute no
    /// combinational delay — they terminate paths instead.
    pub fn node_delay(&self, node: &Node) -> f64 {
        match &node.kind {
            NodeKind::Function(spec) => self.op_delay(&spec.op),
            NodeKind::Mux(_) => 1.0 + self.controller_delay_levels,
            NodeKind::Fork(_) => 0.5,
            NodeKind::Shared(spec) => {
                // Input select mux, the shared logic itself, and the grant logic.
                1.0 + self.op_delay(&spec.op) + self.controller_delay_levels
            }
            NodeKind::Buffer(_) | NodeKind::VarLatency(_) => 0.0,
            NodeKind::Source(_) | NodeKind::Sink(_) => 0.0,
            _ => 0.0,
        }
    }

    /// Area contributed by a node, given the widths of its output channels.
    pub fn node_area(&self, netlist: &Netlist, node: &Node) -> f64 {
        let max_output_width =
            netlist.output_channels(node.id).iter().map(|c| f64::from(c.width)).fold(0.0, f64::max);
        let max_input_width =
            netlist.input_channels(node.id).iter().map(|c| f64::from(c.width)).fold(0.0, f64::max);
        let width = max_output_width.max(max_input_width).max(1.0);
        match &node.kind {
            NodeKind::Buffer(spec) => {
                let storage_bits = f64::from(spec.capacity.max(1)) / 2.0 * width;
                let per_bit = if spec.backward_latency == 0 {
                    self.flipflop_area_per_bit
                } else {
                    self.latch_pair_area_per_bit
                };
                storage_bits * per_bit + self.eb_controller_area
            }
            NodeKind::Function(spec) => self.op_area(&spec.op),
            NodeKind::Mux(spec) => {
                let data_inputs = spec.data_inputs.max(2) as f64;
                let mut area = (data_inputs - 1.0) * self.mux_area_per_bit * width;
                area += self.join_controller_area_per_port * (1.0 + data_inputs);
                if spec.early_eval {
                    area += self.early_eval_controller_area;
                }
                area
            }
            NodeKind::Fork(spec) => self.join_controller_area_per_port * spec.outputs as f64,
            NodeKind::Shared(spec) => {
                let users = spec.users.max(2) as f64;
                self.op_area(&spec.op)
                    + (users - 1.0) * self.mux_area_per_bit * width * spec.inputs_per_user as f64
                    + self.shared_controller_area
                    + self.scheduler_area
            }
            NodeKind::VarLatency(spec) => {
                // Approximate and exact units plus the error detector and the
                // output register.
                self.op_area(&spec.exact)
                    + self.op_area(&spec.approx)
                    + self.op_area(&spec.error)
                    + width * self.flipflop_area_per_bit
                    + self.eb_controller_area
            }
            NodeKind::Commit(spec) => {
                // One result register bank plus FIFO/kill bookkeeping per
                // lane entry, plus an EB-grade controller per lane: the area
                // grows linearly with `lanes × depth`, which is what the
                // depth sweep trades against the latency/throughput win of a
                // scheduler that can run further ahead.
                let lanes = spec.lanes.max(1) as f64;
                let slots = lanes * f64::from(spec.depth.max(1));
                slots * (width * self.flipflop_area_per_bit + self.commit_slot_control_area)
                    + lanes * self.eb_controller_area
            }
            NodeKind::Source(_) | NodeKind::Sink(_) => 0.0,
            _ => 0.0,
        }
    }

    /// `true` for nodes that are part of the test harness rather than of the
    /// design (fault injectors and environments) and must not be counted in
    /// area comparisons.
    pub fn is_harness_node(node: &Node) -> bool {
        node.kind.is_environment()
            || node.name.starts_with("inject")
            || node.name.starts_with("fault")
    }

    /// Area of the whole design, split by contribution (harness nodes excluded).
    pub fn netlist_area(&self, netlist: &Netlist) -> AreaBreakdown {
        let mut breakdown = AreaBreakdown::default();
        for node in netlist.live_nodes() {
            if Self::is_harness_node(node) {
                continue;
            }
            let area = self.node_area(netlist, node);
            breakdown.per_node.insert(node.name.clone(), area);
            match &node.kind {
                NodeKind::Buffer(_) => breakdown.buffers += area,
                NodeKind::Function(_) | NodeKind::VarLatency(_) => breakdown.datapath += area,
                NodeKind::Shared(spec) => {
                    breakdown.datapath += self.op_area(&spec.op);
                    breakdown.control += area - self.op_area(&spec.op);
                }
                _ => breakdown.control += area,
            }
        }
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1a, fig1c, fig1d, Fig1Config};

    #[test]
    fn prefix_adders_are_faster_but_larger_than_ripple() {
        let model = CostModel::default();
        let ripple = Op::RippleAdd { width: 32 };
        let prefix = Op::KoggeStoneAdd { width: 32 };
        assert!(model.op_delay(&prefix) < model.op_delay(&ripple));
        assert!(model.op_area(&prefix) > model.op_area(&ripple));
    }

    #[test]
    fn approximate_adders_are_faster_than_exact_ones() {
        let model = CostModel::default();
        let exact = Op::RippleAdd { width: 8 };
        let approx = Op::ApproxAdd { width: 8, spec_bits: 4 };
        assert!(model.op_delay(&approx) < model.op_delay(&exact));
    }

    #[test]
    fn opaque_blocks_use_their_declared_budget() {
        let model = CostModel::default();
        let op = elastic_core::op::opaque("F", 7, 123);
        assert_eq!(model.op_delay(&op), 7.0);
        assert_eq!(model.op_area(&op), 123.0);
    }

    #[test]
    fn shannon_duplication_costs_more_area_than_sharing() {
        let model = CostModel::default();
        let config = Fig1Config::default();
        let duplicated = model.netlist_area(&fig1c(&config).netlist).total();
        let shared = model.netlist_area(&fig1d(&config).netlist).total();
        let original = model.netlist_area(&fig1a(&config).netlist).total();
        assert!(
            duplicated > shared,
            "sharing must reduce area versus duplication: {duplicated} vs {shared}"
        );
        assert!(
            shared > original,
            "speculation still costs some control overhead: {shared} vs {original}"
        );
    }

    #[test]
    fn harness_nodes_are_excluded_from_area() {
        let config = Fig1Config::default();
        let handles = fig1a(&config);
        let model = CostModel::default();
        let breakdown = model.netlist_area(&handles.netlist);
        assert!(!breakdown.per_node.contains_key("src0"));
        assert!(breakdown.per_node.contains_key("eb"));
        assert!(breakdown.total() > 0.0);
        assert!(breakdown.buffers > 0.0);
    }

    #[test]
    fn commit_stage_area_grows_linearly_with_depth() {
        let model = CostModel::default();
        let with_depth = |depth: u32| {
            let mut n = Netlist::new("t");
            let commit = n.add_commit("c", elastic_core::CommitSpec { lanes: 2, depth });
            let src0 = n.add_source("s0", elastic_core::SourceSpec::always());
            let src1 = n.add_source("s1", elastic_core::SourceSpec::always());
            let sink0 = n.add_sink("k0", elastic_core::SinkSpec::always_ready());
            let sink1 = n.add_sink("k1", elastic_core::SinkSpec::always_ready());
            n.connect(elastic_core::Port::output(src0, 0), elastic_core::Port::input(commit, 0), 8)
                .unwrap();
            n.connect(elastic_core::Port::output(src1, 0), elastic_core::Port::input(commit, 1), 8)
                .unwrap();
            n.connect(
                elastic_core::Port::output(commit, 0),
                elastic_core::Port::input(sink0, 0),
                8,
            )
            .unwrap();
            n.connect(
                elastic_core::Port::output(commit, 1),
                elastic_core::Port::input(sink1, 0),
                8,
            )
            .unwrap();
            let node = n.node(commit).unwrap().clone();
            model.node_area(&n, &node)
        };
        let (d1, d2, d4) = (with_depth(1), with_depth(2), with_depth(4));
        assert!(d1 < d2 && d2 < d4, "area must grow with depth: {d1} {d2} {d4}");
        // Linear in the slot count: the d1→d2 increment equals half the
        // d2→d4 increment (per-lane controller overhead is depth-independent).
        assert!(((d2 - d1) - (d4 - d2) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_backward_buffers_are_cheaper_than_standard_ones() {
        let model = CostModel::default();
        let mut n = Netlist::new("t");
        let standard = n.add_buffer("std", elastic_core::BufferSpec::standard(0));
        let zero = n.add_buffer("zb", elastic_core::BufferSpec::zero_backward(0));
        // Connect them so widths resolve.
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let mid = n.add_op("mid", Op::Identity);
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(elastic_core::Port::output(src, 0), elastic_core::Port::input(standard, 0), 8)
            .unwrap();
        n.connect(elastic_core::Port::output(standard, 0), elastic_core::Port::input(mid, 0), 8)
            .unwrap();
        n.connect(elastic_core::Port::output(mid, 0), elastic_core::Port::input(zero, 0), 8)
            .unwrap();
        n.connect(elastic_core::Port::output(zero, 0), elastic_core::Port::input(sink, 0), 8)
            .unwrap();
        let std_node = n.node(standard).unwrap();
        let zb_node = n.node(zero).unwrap();
        assert!(model.node_area(&n, std_node) > model.node_area(&n, zb_node));
    }
}
