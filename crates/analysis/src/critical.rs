//! Detection of speculation candidates: critical cycles through a
//! multiplexor select input.
//!
//! Step 1 of the paper's speculation recipe (Section 4) is to "find a
//! critical cycle from an output of an early evaluation multiplexor to its
//! select input". When such a cycle exists and carries the design's critical
//! combinational path, the other transformations cannot help: bubble
//! insertion lowers the throughput bound of the cycle, retiming has no
//! registers to move inside it, and early evaluation alone does not shorten
//! the select computation. Speculation is then "the transformation of
//! choice".

use elastic_core::transform::find_select_cycles;
use elastic_core::{Netlist, NodeId, NodeKind};

use crate::cost::CostModel;
use crate::timing;

/// A multiplexor whose select input closes a cycle, together with the
/// assessment of whether that cycle is performance-critical.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationCandidate {
    /// The multiplexor.
    pub mux: NodeId,
    /// The cycles from the multiplexor output back to its select input.
    pub select_cycles: Vec<Vec<NodeId>>,
    /// Combinational delay (logic levels) of the slowest select cycle,
    /// counting only combinational nodes.
    pub cycle_delay: f64,
    /// Sequential latency (number of buffers) of the shortest select cycle.
    pub cycle_latency: u64,
    /// `true` when the design's critical timing path lies on one of the
    /// select cycles — the situation where speculation pays off most.
    pub on_critical_path: bool,
}

/// Depth-dependent profile of one in-order commit stage: the occupancy model
/// paired with the area model of [`CostModel`].
///
/// A commit stage of depth `d` lets the speculative shared module's scheduler
/// run up to `d` results ahead of the resolution point *per lane* before the
/// lane back-pressures the module — `run_ahead_bound` is that structural
/// ceiling. Whether a workload ever reaches it is an empirical question the
/// simulator answers (`elastic_sim`'s per-lane peak-occupancy statistics);
/// this profile is the static side of that comparison, used by the
/// `commit_depth` benchmark to report how much area each extra entry buys.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitProfile {
    /// The commit-stage node.
    pub node: NodeId,
    /// Number of result lanes (one per shared-module user).
    pub lanes: usize,
    /// Configured per-lane FIFO depth.
    pub depth: u32,
    /// Structural ceiling on the scheduler's run-ahead per lane (equals
    /// `depth`: a lane holding `d` parked results cannot accept a `d+1`-th
    /// until the resolution point drains or squashes the oldest).
    pub run_ahead_bound: u32,
    /// Area of the stage under the model — linear in `lanes × depth`.
    pub area: f64,
}

/// Profiles every in-order commit stage of the design.
///
/// Returns one [`CommitProfile`] per [`NodeKind::Commit`] node, in netlist
/// order; designs whose speculations all sit on select loops (where the
/// commit stage is skipped — the loop's elastic buffer already decouples the
/// speculation) profile to an empty list.
pub fn commit_profiles(netlist: &Netlist, model: &CostModel) -> Vec<CommitProfile> {
    netlist
        .live_nodes()
        .filter_map(|node| match &node.kind {
            NodeKind::Commit(spec) => Some(CommitProfile {
                node: node.id,
                lanes: spec.lanes,
                depth: spec.depth,
                run_ahead_bound: spec.depth,
                area: model.node_area(netlist, node),
            }),
            _ => None,
        })
        .collect()
}

/// Finds every multiplexor with a select cycle and assesses its criticality.
pub fn speculation_candidates(netlist: &Netlist, model: &CostModel) -> Vec<SpeculationCandidate> {
    let timing = timing::analyze(netlist, model);
    let critical_nodes: std::collections::HashSet<NodeId> =
        timing.critical_path.iter().copied().collect();

    let mut candidates = Vec::new();
    for node in netlist.live_nodes() {
        if !matches!(node.kind, NodeKind::Mux(_)) {
            continue;
        }
        let select_cycles = match find_select_cycles(netlist, node.id) {
            Ok(cycles) if !cycles.is_empty() => cycles,
            _ => continue,
        };
        let mut cycle_delay: f64 = 0.0;
        let mut cycle_latency = u64::MAX;
        let mut on_critical_path = false;
        for cycle in &select_cycles {
            let delay: f64 =
                cycle.iter().filter_map(|id| netlist.node(*id)).map(|n| model.node_delay(n)).sum();
            cycle_delay = cycle_delay.max(delay);
            let latency: u64 = cycle
                .iter()
                .filter_map(|id| netlist.node(*id))
                .map(|n| match &n.kind {
                    NodeKind::Buffer(spec) => u64::from(spec.forward_latency),
                    NodeKind::VarLatency(_) | NodeKind::Commit(_) => 1,
                    _ => 0,
                })
                .sum();
            cycle_latency = cycle_latency.min(latency);
            if cycle.iter().any(|id| critical_nodes.contains(id)) {
                on_critical_path = true;
            }
        }
        candidates.push(SpeculationCandidate {
            mux: node.id,
            select_cycles,
            cycle_delay,
            cycle_latency: if cycle_latency == u64::MAX { 0 } else { cycle_latency },
            on_critical_path,
        });
    }
    candidates.sort_by(|a, b| {
        b.cycle_delay.partial_cmp(&a.cycle_delay).unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{
        fig1a, fig1d, resilient_nonspeculative, Fig1Config, ResilientConfig,
    };

    #[test]
    fn the_fig1_mux_is_a_speculation_candidate() {
        let handles = fig1a(&Fig1Config::default());
        let candidates = speculation_candidates(&handles.netlist, &CostModel::default());
        assert_eq!(candidates.len(), 1);
        let candidate = &candidates[0];
        assert_eq!(candidate.mux, handles.mux);
        assert!(candidate.on_critical_path, "the G→mux→F loop is the critical path");
        assert_eq!(candidate.cycle_latency, 1);
        assert!(candidate.cycle_delay > 10.0);
    }

    #[test]
    fn the_resilient_accumulator_mux_is_a_candidate() {
        let handles = resilient_nonspeculative(&ResilientConfig::default());
        let candidates = speculation_candidates(&handles.netlist, &CostModel::default());
        assert!(candidates.iter().any(|c| Some(c.mux) == handles.mux));
    }

    #[test]
    fn already_speculated_designs_still_report_their_select_cycle() {
        // After speculation the select cycle still exists (that is fine — the
        // shared module now hides its latency); the candidate list simply
        // documents it.
        let handles = fig1d(&Fig1Config::default());
        let candidates = speculation_candidates(&handles.netlist, &CostModel::default());
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn commit_profiles_report_the_depth_dependent_occupancy_model() {
        use elastic_core::transform::{speculate, SpeculateOptions};

        // A feed-forward mux speculated at two different depths: the profile
        // must expose the run-ahead ceiling and an area that grows with it.
        let build = |depth: u32| {
            let mut n = elastic_core::Netlist::new("ff");
            let sel = n.add_source("sel", elastic_core::SourceSpec::always());
            let a = n.add_source("a", elastic_core::SourceSpec::always());
            let b = n.add_source("b", elastic_core::SourceSpec::always());
            let mux = n.add_mux("mux", elastic_core::MuxSpec::lazy(2));
            let f = n.add_op("f", elastic_core::op::opaque("F", 4, 80));
            let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
            n.connect(elastic_core::Port::output(sel, 0), elastic_core::Port::input(mux, 0), 1)
                .unwrap();
            n.connect(elastic_core::Port::output(a, 0), elastic_core::Port::input(mux, 1), 8)
                .unwrap();
            n.connect(elastic_core::Port::output(b, 0), elastic_core::Port::input(mux, 2), 8)
                .unwrap();
            n.connect(elastic_core::Port::output(mux, 0), elastic_core::Port::input(f, 0), 8)
                .unwrap();
            n.connect(elastic_core::Port::output(f, 0), elastic_core::Port::input(sink, 0), 8)
                .unwrap();
            let options = SpeculateOptions {
                allow_acyclic: true,
                commit_depth: depth,
                ..SpeculateOptions::default()
            };
            speculate(&mut n, mux, &options).unwrap();
            n
        };
        let model = CostModel::default();
        let shallow = commit_profiles(&build(1), &model);
        let deep = commit_profiles(&build(4), &model);
        assert_eq!(shallow.len(), 1);
        assert_eq!(deep.len(), 1);
        assert_eq!(shallow[0].run_ahead_bound, 1);
        assert_eq!(deep[0].run_ahead_bound, 4);
        assert_eq!(deep[0].lanes, 2);
        assert!(deep[0].area > shallow[0].area, "each extra entry costs area");

        // Loop speculation skips the stage entirely: nothing to profile.
        let loop_design = fig1d(&Fig1Config::default());
        loop_design.netlist.validate().unwrap();
        assert!(commit_profiles(&loop_design.netlist, &model).is_empty());
    }

    #[test]
    fn feed_forward_muxes_are_not_candidates() {
        let mut n = elastic_core::Netlist::new("ff");
        let sel = n.add_source("sel", elastic_core::SourceSpec::always());
        let a = n.add_source("a", elastic_core::SourceSpec::always());
        let b = n.add_source("b", elastic_core::SourceSpec::always());
        let mux = n.add_mux("mux", elastic_core::MuxSpec::lazy(2));
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(elastic_core::Port::output(sel, 0), elastic_core::Port::input(mux, 0), 1)
            .unwrap();
        n.connect(elastic_core::Port::output(a, 0), elastic_core::Port::input(mux, 1), 8).unwrap();
        n.connect(elastic_core::Port::output(b, 0), elastic_core::Port::input(mux, 2), 8).unwrap();
        n.connect(elastic_core::Port::output(mux, 0), elastic_core::Port::input(sink, 0), 8)
            .unwrap();
        assert!(speculation_candidates(&n, &CostModel::default()).is_empty());
    }
}
