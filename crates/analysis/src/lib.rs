//! # elastic-analysis
//!
//! Static performance and cost analysis for elastic netlists.
//!
//! The paper evaluates its designs with a commercial 65nm synthesis flow; in
//! this reproduction the corresponding numbers come from an explicit
//! gate-equivalent **cost model** ([`cost::CostModel`]) and from graph
//! analyses of the netlist:
//!
//! * [`timing`] — combinational path analysis: the cycle time is the longest
//!   register-to-register (EB-to-EB) path under the unit-delay (logic-level)
//!   model, plus a per-node controller overhead;
//! * [`marked_graph`] — the token/latency view of the netlist: every cycle of
//!   the graph bounds the throughput by `tokens / buffers`; the minimum over
//!   all cycles is the throughput bound that bubble insertion degrades and
//!   speculation restores;
//! * [`critical`] — detection of critical cycles that pass through a
//!   multiplexor select input, the structural trigger for speculation
//!   (step 1 of Section 4), plus the depth-dependent occupancy profile of
//!   in-order commit stages ([`critical::commit_profiles`]: how far a
//!   scheduler may run ahead of the resolution point, and what each extra
//!   lane entry costs in area);
//! * [`cost`] — area in gate equivalents per node (datapath blocks, elastic
//!   buffers, controller overhead), used for the area-overhead comparisons of
//!   Sections 5.1 and 5.2;
//! * [`report`] — design-point comparison tables (throughput, cycle time,
//!   effective cycle time, area) in the form the paper reports them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod critical;
pub mod marked_graph;
pub mod report;
pub mod timing;

pub use cost::{AreaBreakdown, CostModel};
pub use report::{DesignComparison, DesignPoint};
pub use timing::TimingReport;
