//! Marked-graph (token / latency) view of an elastic netlist.
//!
//! Abstracting data away, an elastic netlist behaves like a timed marked
//! graph: every directed cycle of the graph bounds the sustainable throughput
//! by `tokens on the cycle / sequential latency of the cycle`. Bubble
//! insertion (Figure 1(b)) adds latency to a cycle without adding tokens,
//! which is exactly why it halves the throughput of the Figure-1 loop; the
//! Shannon/speculation transformations restore the bound by keeping the loop
//! latency at one buffer.
//!
//! For early-evaluation designs the bound is conservative (early evaluation
//! can do better than the all-inputs-required abstraction on the non-critical
//! cycles); the cycle-accurate simulator gives the exact figure.

use std::collections::HashSet;

use elastic_core::{Netlist, NodeId, NodeKind};

/// One directed cycle of the netlist with its token count and latency.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleInfo {
    /// Nodes on the cycle, in traversal order.
    pub nodes: Vec<NodeId>,
    /// Tokens initially stored on the cycle (anti-tokens count negatively).
    pub tokens: i64,
    /// Sequential latency of the cycle (sum of buffer forward latencies and
    /// variable-latency registers).
    pub latency: u64,
}

impl CycleInfo {
    /// The throughput bound imposed by this cycle (`tokens / latency`);
    /// `None` when the cycle has no sequential element (a combinational loop,
    /// which is invalid) or a non-positive token count (a structural
    /// deadlock).
    pub fn throughput_bound(&self) -> Option<f64> {
        if self.latency == 0 || self.tokens <= 0 {
            None
        } else {
            Some((self.tokens as f64 / self.latency as f64).min(1.0))
        }
    }
}

/// Analysis of all simple cycles of a netlist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MarkedGraphAnalysis {
    /// Every simple cycle found.
    pub cycles: Vec<CycleInfo>,
}

impl MarkedGraphAnalysis {
    /// The overall throughput bound: the minimum over all cycles, 1.0 for
    /// feed-forward netlists, and 0.0 when some cycle can never carry a token
    /// (deadlock) or is purely combinational.
    pub fn throughput_bound(&self) -> f64 {
        let mut bound: f64 = 1.0;
        for cycle in &self.cycles {
            match cycle.throughput_bound() {
                Some(b) => bound = bound.min(b),
                None => return 0.0,
            }
        }
        bound
    }

    /// The cycle that imposes the minimum bound, if any cycle exists.
    pub fn critical_cycle(&self) -> Option<&CycleInfo> {
        self.cycles.iter().min_by(|a, b| {
            let ba = a.throughput_bound().unwrap_or(0.0);
            let bb = b.throughput_bound().unwrap_or(0.0);
            ba.partial_cmp(&bb).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

fn node_latency(netlist: &Netlist, node: NodeId) -> u64 {
    match netlist.node(node).map(|n| &n.kind) {
        Some(NodeKind::Buffer(spec)) => u64::from(spec.forward_latency),
        Some(NodeKind::VarLatency(_) | NodeKind::Commit(_)) => 1,
        _ => 0,
    }
}

fn node_tokens(netlist: &Netlist, node: NodeId) -> i64 {
    match netlist.node(node).map(|n| &n.kind) {
        Some(NodeKind::Buffer(spec)) => i64::from(spec.init_tokens),
        Some(NodeKind::VarLatency(_)) => 0,
        _ => 0,
    }
}

/// Enumerates the simple cycles of the netlist and their token/latency
/// figures. Environments never participate in cycles.
pub fn analyze(netlist: &Netlist) -> MarkedGraphAnalysis {
    let mut cycles = Vec::new();
    let mut nodes: Vec<NodeId> = netlist.live_nodes().map(|n| n.id).collect();
    nodes.sort();

    // Johnson-style bounded enumeration: start a DFS from every node and only
    // record cycles whose smallest node id is the start node (each simple
    // cycle is then reported exactly once).
    for &start in &nodes {
        let mut stack = vec![start];
        let mut on_path: HashSet<NodeId> = HashSet::new();
        on_path.insert(start);
        dfs(netlist, start, start, &mut stack, &mut on_path, &mut cycles);
    }

    fn dfs(
        netlist: &Netlist,
        start: NodeId,
        current: NodeId,
        stack: &mut Vec<NodeId>,
        on_path: &mut HashSet<NodeId>,
        cycles: &mut Vec<CycleInfo>,
    ) {
        for next in netlist.successors(current) {
            if next == start {
                let nodes = stack.clone();
                let tokens = nodes.iter().map(|&n| node_tokens(netlist, n)).sum();
                let latency = nodes.iter().map(|&n| node_latency(netlist, n)).sum();
                cycles.push(CycleInfo { nodes, tokens, latency });
                continue;
            }
            if next < start || on_path.contains(&next) {
                continue;
            }
            if netlist.node(next).map(|n| n.kind.is_environment()).unwrap_or(true) {
                continue;
            }
            on_path.insert(next);
            stack.push(next);
            dfs(netlist, start, next, stack, on_path, cycles);
            stack.pop();
            on_path.remove(&next);
        }
    }

    MarkedGraphAnalysis { cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{
        fig1a, fig1b, fig1c, fig1d, resilient_nonspeculative, resilient_speculative,
        resilient_unprotected, Fig1Config, ResilientConfig,
    };

    #[test]
    fn fig1a_loop_has_one_cycle_at_full_throughput() {
        let analysis = analyze(&fig1a(&Fig1Config::default()).netlist);
        assert_eq!(analysis.cycles.len(), 1);
        assert_eq!(analysis.cycles[0].tokens, 1);
        assert_eq!(analysis.cycles[0].latency, 1);
        assert_eq!(analysis.throughput_bound(), 1.0);
    }

    #[test]
    fn bubble_insertion_halves_the_bound() {
        let analysis = analyze(&fig1b(&Fig1Config::default()).netlist);
        assert_eq!(analysis.throughput_bound(), 0.5);
        let critical = analysis.critical_cycle().unwrap();
        assert_eq!(critical.tokens, 1);
        assert_eq!(critical.latency, 2);
    }

    #[test]
    fn shannon_and_speculation_keep_the_bound_at_one() {
        assert_eq!(analyze(&fig1c(&Fig1Config::default()).netlist).throughput_bound(), 1.0);
        assert_eq!(analyze(&fig1d(&Fig1Config::default()).netlist).throughput_bound(), 1.0);
    }

    #[test]
    fn resilient_designs_show_the_pipeline_depth_difference() {
        let config = ResilientConfig::default();
        assert_eq!(analyze(&resilient_unprotected(&config).netlist).throughput_bound(), 1.0);
        assert_eq!(
            analyze(&resilient_nonspeculative(&config).netlist).throughput_bound(),
            0.5,
            "the SECDED pipeline stage doubles the accumulator loop latency"
        );
        assert_eq!(
            analyze(&resilient_speculative(&config).netlist).throughput_bound(),
            1.0,
            "speculation removes the extra stage from the loop"
        );
    }

    #[test]
    fn feed_forward_netlists_have_no_cycles() {
        let mut n = elastic_core::Netlist::new("ff");
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(elastic_core::Port::output(src, 0), elastic_core::Port::input(sink, 0), 8)
            .unwrap();
        let analysis = analyze(&n);
        assert!(analysis.cycles.is_empty());
        assert_eq!(analysis.throughput_bound(), 1.0);
        assert!(analysis.critical_cycle().is_none());
    }

    #[test]
    fn token_free_cycles_are_reported_as_deadlocks() {
        let mut n = elastic_core::Netlist::new("deadlock");
        let eb = n.add_buffer("eb", elastic_core::BufferSpec::bubble());
        let f = n.add_op("f", elastic_core::Op::Identity);
        n.connect(elastic_core::Port::output(eb, 0), elastic_core::Port::input(f, 0), 8).unwrap();
        n.connect(elastic_core::Port::output(f, 0), elastic_core::Port::input(eb, 0), 8).unwrap();
        let analysis = analyze(&n);
        assert_eq!(analysis.throughput_bound(), 0.0);
    }
}
