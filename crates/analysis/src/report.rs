//! Design-point comparison reports.
//!
//! The paper compares designs by throughput, cycle time, *effective cycle
//! time* (cycle time divided by throughput — the average time per useful
//! token) and area. [`DesignComparison`] collects those four figures for a
//! set of design points and renders the comparison table every benchmark of
//! this workspace prints.

use elastic_core::Netlist;

use crate::cost::CostModel;
use crate::marked_graph;
use crate::timing;

/// The figures of merit of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Label (e.g. "fig1d-speculation").
    pub name: String,
    /// Tokens per cycle (from simulation or from the marked-graph bound).
    pub throughput: f64,
    /// Cycle time in logic levels (from [`timing::analyze`]).
    pub cycle_time: f64,
    /// Area in gate equivalents (from [`CostModel::netlist_area`]).
    pub area: f64,
}

impl DesignPoint {
    /// Builds a design point from a netlist, using the marked-graph
    /// throughput bound (callers with simulation results should prefer
    /// [`DesignPoint::with_throughput`]).
    pub fn from_netlist(name: impl Into<String>, netlist: &Netlist, model: &CostModel) -> Self {
        let throughput = marked_graph::analyze(netlist).throughput_bound();
        Self::with_throughput(name, netlist, model, throughput)
    }

    /// Builds a design point from a netlist and a measured throughput.
    pub fn with_throughput(
        name: impl Into<String>,
        netlist: &Netlist,
        model: &CostModel,
        throughput: f64,
    ) -> Self {
        let timing = timing::analyze(netlist, model);
        let area = model.netlist_area(netlist).total();
        DesignPoint { name: name.into(), throughput, cycle_time: timing.cycle_time, area }
    }

    /// Cycle time divided by throughput: average logic levels per useful token.
    pub fn effective_cycle_time(&self) -> f64 {
        if self.throughput <= 0.0 {
            f64::INFINITY
        } else {
            self.cycle_time / self.throughput
        }
    }
}

/// A set of design points compared against a named baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesignComparison {
    /// The compared points, in insertion order; the first is the baseline.
    pub points: Vec<DesignPoint>,
}

impl DesignComparison {
    /// Creates an empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a design point (the first added point is the baseline).
    pub fn push(&mut self, point: DesignPoint) {
        self.points.push(point);
    }

    /// The baseline point, when any point has been added.
    pub fn baseline(&self) -> Option<&DesignPoint> {
        self.points.first()
    }

    /// Relative effective-cycle-time improvement of `point` versus the
    /// baseline (positive = faster than the baseline).
    pub fn effective_cycle_time_improvement(&self, name: &str) -> Option<f64> {
        let baseline = self.baseline()?.effective_cycle_time();
        let point = self.points.iter().find(|p| p.name == name)?.effective_cycle_time();
        Some(1.0 - point / baseline)
    }

    /// Relative area overhead of `point` versus the baseline (positive =
    /// larger than the baseline).
    pub fn area_overhead(&self, name: &str) -> Option<f64> {
        let baseline = self.baseline()?.area;
        let point = self.points.iter().find(|p| p.name == name)?.area;
        if baseline <= 0.0 {
            None
        } else {
            Some(point / baseline - 1.0)
        }
    }

    /// Renders the comparison as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>10} {:>12} {:>14} {:>12} {:>10} {:>10}\n",
            "design", "throughput", "cycle time", "eff. cycle", "area (GE)", "Δeff", "Δarea"
        ));
        for point in &self.points {
            let improvement = self
                .effective_cycle_time_improvement(&point.name)
                .map(|v| format!("{:+.1}%", v * 100.0))
                .unwrap_or_else(|| "-".into());
            let overhead = self
                .area_overhead(&point.name)
                .map(|v| format!("{:+.1}%", v * 100.0))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<28} {:>10.3} {:>12.1} {:>14.1} {:>12.0} {:>10} {:>10}\n",
                point.name,
                point.throughput,
                point.cycle_time,
                point.effective_cycle_time(),
                point.area,
                improvement,
                overhead
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1a, fig1b, fig1c, fig1d, Fig1Config};

    #[test]
    fn fig1_comparison_reproduces_the_papers_qualitative_ranking() {
        let model = CostModel::default();
        let config = Fig1Config::default();
        let mut comparison = DesignComparison::new();
        comparison.push(DesignPoint::from_netlist("fig1a", &fig1a(&config).netlist, &model));
        comparison.push(DesignPoint::from_netlist("fig1b", &fig1b(&config).netlist, &model));
        comparison.push(DesignPoint::from_netlist("fig1c", &fig1c(&config).netlist, &model));
        // Speculation with a good predictor runs close to the Shannon bound.
        comparison.push(DesignPoint::with_throughput(
            "fig1d",
            &fig1d(&config).netlist,
            &model,
            0.95,
        ));

        // Bubble insertion brings "no real gain": its effective cycle time is
        // worse than the baseline's.
        assert!(comparison.effective_cycle_time_improvement("fig1b").unwrap() < 0.0);
        // Shannon decomposition and speculation improve it.
        assert!(comparison.effective_cycle_time_improvement("fig1c").unwrap() > 0.0);
        assert!(comparison.effective_cycle_time_improvement("fig1d").unwrap() > 0.0);
        // Speculation saves area with respect to duplication.
        let shannon_area = comparison.area_overhead("fig1c").unwrap();
        let speculation_area = comparison.area_overhead("fig1d").unwrap();
        assert!(speculation_area < shannon_area);

        let table = comparison.render();
        assert!(table.contains("fig1d"));
        assert!(table.contains("Δarea"));
    }

    #[test]
    fn degenerate_comparisons_are_handled() {
        let comparison = DesignComparison::new();
        assert!(comparison.baseline().is_none());
        assert!(comparison.effective_cycle_time_improvement("x").is_none());
        assert!(comparison.area_overhead("x").is_none());
        let point = DesignPoint { name: "p".into(), throughput: 0.0, cycle_time: 5.0, area: 10.0 };
        assert!(point.effective_cycle_time().is_infinite());
    }
}
