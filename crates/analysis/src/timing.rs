//! Combinational timing analysis: cycle time and critical paths.
//!
//! Elastic buffers (and the monolithic variable-latency unit) are the
//! sequential elements of an elastic netlist; everything else is
//! combinational. The cycle time of a design is therefore the longest
//! combinational path between two sequential endpoints (or environments),
//! measured in logic levels by the [`crate::cost::CostModel`], plus a fixed
//! clock overhead.

use std::collections::HashMap;

use elastic_core::{Netlist, NodeId};

use crate::cost::CostModel;

/// Result of a timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register combinational delay plus clock overhead,
    /// in logic levels.
    pub cycle_time: f64,
    /// The nodes on the critical path, from its launching point to its
    /// capturing point (inclusive).
    pub critical_path: Vec<NodeId>,
}

impl TimingReport {
    /// Effective cycle time at a given throughput (cycle time divided by
    /// tokens per cycle) — the figure of merit the paper optimises.
    pub fn effective_cycle_time(&self, throughput: f64) -> f64 {
        if throughput <= 0.0 {
            f64::INFINITY
        } else {
            self.cycle_time / throughput
        }
    }
}

/// `true` when a node terminates combinational paths.
fn is_sequential_endpoint(netlist: &Netlist, node: NodeId) -> bool {
    let node = match netlist.node(node) {
        Some(node) => node,
        None => return true,
    };
    node.kind.is_sequential() || node.kind.is_environment()
}

/// Computes the cycle time of a netlist under the given cost model.
///
/// The longest path is computed by memoised depth-first search over the
/// combinational region; combinational cycles (which a valid elastic design
/// cannot have) are broken conservatively by ignoring back edges, so the
/// function always terminates.
pub fn analyze(netlist: &Netlist, model: &CostModel) -> TimingReport {
    // Longest combinational delay from each node to any sequential endpoint,
    // including the node's own delay.
    let mut memo: HashMap<NodeId, (f64, Vec<NodeId>)> = HashMap::new();

    fn longest_from(
        netlist: &Netlist,
        model: &CostModel,
        node: NodeId,
        on_stack: &mut Vec<NodeId>,
        memo: &mut HashMap<NodeId, (f64, Vec<NodeId>)>,
    ) -> (f64, Vec<NodeId>) {
        if let Some(result) = memo.get(&node) {
            return result.clone();
        }
        if on_stack.contains(&node) {
            // Combinational loop: break it conservatively.
            return (0.0, vec![node]);
        }
        let own_delay = netlist.node(node).map(|n| model.node_delay(n)).unwrap_or(0.0);
        on_stack.push(node);
        let mut best = (own_delay, vec![node]);
        for successor in netlist.successors(node) {
            if is_sequential_endpoint(netlist, successor) {
                if own_delay >= best.0 {
                    best = (own_delay, vec![node, successor]);
                }
                continue;
            }
            let (tail_delay, tail_path) = longest_from(netlist, model, successor, on_stack, memo);
            let total = own_delay + tail_delay;
            if total > best.0 {
                let mut path = vec![node];
                path.extend(tail_path.iter().copied());
                best = (total, path);
            }
        }
        on_stack.pop();
        memo.insert(node, best.clone());
        best
    }

    let mut cycle_time = 0.0;
    let mut critical_path = Vec::new();
    for node in netlist.live_nodes() {
        // Launch points: sequential nodes and sources.
        if !(node.kind.is_sequential() || node.kind.is_environment()) {
            continue;
        }
        for successor in netlist.successors(node.id) {
            let (delay, path) = if is_sequential_endpoint(netlist, successor) {
                (0.0, vec![successor])
            } else {
                let mut stack = Vec::new();
                longest_from(netlist, model, successor, &mut stack, &mut memo)
            };
            if delay >= cycle_time {
                cycle_time = delay;
                let mut full = vec![node.id];
                full.extend(path);
                critical_path = full;
            }
        }
    }

    TimingReport { cycle_time: cycle_time + model.clock_overhead_levels, critical_path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1a, fig1b, fig1c, fig1d, Fig1Config};

    fn config() -> Fig1Config {
        Fig1Config::default()
    }

    #[test]
    fn fig1a_critical_path_goes_through_g_mux_and_f() {
        let handles = fig1a(&config());
        let model = CostModel::default();
        let report = analyze(&handles.netlist, &model);
        // G (6) + mux (2) + F (6) + fork (0.5) + clock overhead (2).
        assert!(report.cycle_time > 14.0, "cycle time {} too small", report.cycle_time);
        let path_names: Vec<String> = report
            .critical_path
            .iter()
            .filter_map(|id| handles.netlist.node(*id).map(|n| n.name.clone()))
            .collect();
        assert!(path_names.iter().any(|n| n == "g"), "critical path {path_names:?} must contain G");
        assert!(path_names.iter().any(|n| n == "f"), "critical path {path_names:?} must contain F");
    }

    #[test]
    fn bubble_insertion_cuts_the_cycle_time() {
        let model = CostModel::default();
        let base = analyze(&fig1a(&config()).netlist, &model).cycle_time;
        let bubbled = analyze(&fig1b(&config()).netlist, &model).cycle_time;
        assert!(
            bubbled < base,
            "bubble insertion must shorten the critical path: {bubbled} vs {base}"
        );
    }

    #[test]
    fn shannon_and_speculation_run_f_and_g_in_parallel() {
        let model = CostModel::default();
        let base = analyze(&fig1a(&config()).netlist, &model).cycle_time;
        let shannon = analyze(&fig1c(&config()).netlist, &model).cycle_time;
        let speculative = analyze(&fig1d(&config()).netlist, &model).cycle_time;
        assert!(shannon < base);
        assert!(speculative < base);
        // Speculation adds only the shared-module grant mux on top of Shannon.
        assert!(speculative <= shannon + 3.0);
    }

    #[test]
    fn effective_cycle_time_penalises_low_throughput() {
        let report = TimingReport { cycle_time: 10.0, critical_path: Vec::new() };
        assert_eq!(report.effective_cycle_time(1.0), 10.0);
        assert_eq!(report.effective_cycle_time(0.5), 20.0);
        assert!(report.effective_cycle_time(0.0).is_infinite());
    }

    #[test]
    fn bubble_insertion_does_not_pay_off_in_effective_cycle_time() {
        // The paper's point in Section 2: bubble insertion improves the cycle
        // time but halves the throughput, so the effective cycle time gets
        // worse, while speculation improves it.
        let model = CostModel::default();
        let base = analyze(&fig1a(&config()).netlist, &model);
        let bubbled = analyze(&fig1b(&config()).netlist, &model);
        let speculative = analyze(&fig1d(&config()).netlist, &model);
        let base_effective = base.effective_cycle_time(1.0);
        let bubbled_effective = bubbled.effective_cycle_time(0.5);
        let speculative_effective = speculative.effective_cycle_time(0.95);
        assert!(bubbled_effective > base_effective);
        assert!(speculative_effective < base_effective);
    }
}
