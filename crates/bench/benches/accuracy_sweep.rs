//! Experiment E5-accuracy: speculation throughput as a function of branch
//! bias and prediction policy — the qualitative claim of Sections 2 and 4
//! that speculation approaches the Shannon-decomposition bound when the
//! prediction is accurate.

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::SchedulerKind;
use elastic_sim::scenarios::{run_fig1, Fig1Scenario, Fig1Variant};

fn print_table() {
    print_experiment_header("E5-accuracy", "speculation throughput vs. select bias and predictor");
    let policies: [(&str, SchedulerKind); 4] = [
        ("static0", SchedulerKind::Static(0)),
        ("last-taken", SchedulerKind::LastTaken),
        ("two-bit", SchedulerKind::TwoBit),
        ("round-robin", SchedulerKind::RoundRobin),
    ];
    print!("{:<12}", "taken rate");
    for (name, _) in &policies {
        print!(" {name:>12}");
    }
    println!();
    for taken_rate in [0.0, 0.1, 0.2, 0.3, 0.5] {
        print!("{taken_rate:<12.2}");
        for (_, scheduler) in &policies {
            let outcome = run_fig1(&Fig1Scenario {
                variant: Fig1Variant::Speculation,
                taken_rate,
                scheduler: scheduler.clone(),
                cycles: 1200,
                seed: 5,
            })
            .expect("fig1 scenario");
            print!(" {:>12.3}", outcome.throughput);
        }
        println!();
    }
    println!("(the Shannon-decomposition bound is 1.000 token/cycle)");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("accuracy_sweep");
    for (name, scheduler) in
        [("static0", SchedulerKind::Static(0)), ("two-bit", SchedulerKind::TwoBit)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_fig1(&Fig1Scenario {
                    variant: Fig1Variant::Speculation,
                    taken_rate: 0.2,
                    scheduler: scheduler.clone(),
                    cycles: 200,
                    seed: 5,
                })
                .expect("fig1 scenario")
                .throughput
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
