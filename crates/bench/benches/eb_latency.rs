//! Experiment E6-ebs: effect of the recovery-buffer backward latency on the
//! speculative loop (Sections 3.2 and 4.3 — `C >= Lf + Lb` and the `Lb = 0`
//! buffer of Figure 5).

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::library::{fig1a, Fig1Config};
use elastic_core::transform::{speculate, SpeculateOptions};
use elastic_core::{BufferSpec, Netlist, SchedulerKind};
use elastic_sim::{SimConfig, Simulation};

fn speculative_with_recovery(recovery: Option<BufferSpec>) -> Netlist {
    let handles = fig1a(&Fig1Config::default());
    let mut netlist = handles.netlist;
    speculate(
        &mut netlist,
        handles.mux,
        &SpeculateOptions {
            scheduler: SchedulerKind::LastTaken,
            recovery_buffer: recovery,
            ..SpeculateOptions::default()
        },
    )
    .expect("fig1a supports speculation");
    netlist
}

fn throughput(netlist: &Netlist, cycles: u64) -> f64 {
    let sink = netlist.find_node("sink").expect("sink").id;
    let mut sim =
        Simulation::new(netlist, &SimConfig { record_trace: false, ..SimConfig::default() })
            .expect("simulable");
    sim.run(cycles).expect("no deadlock").throughput(sink)
}

fn print_table() {
    print_experiment_header(
        "E6-ebs",
        "recovery-buffer variants after the shared module (Figure 5 / Section 4.3)",
    );
    let variants: [(&str, Option<BufferSpec>); 3] = [
        ("none (Lf=0, Lb=0, as Fig. 1d)", None),
        ("standard EB (Lf=1, Lb=1, C=2)", Some(BufferSpec::standard(0))),
        ("zero-backward EB (Lf=1, Lb=0, C=1)", Some(BufferSpec::zero_backward(0))),
    ];
    println!("{:<36} {:>12}", "recovery buffer", "throughput");
    for (label, recovery) in variants {
        let netlist = speculative_with_recovery(recovery);
        println!("{label:<36} {:>12.3}", throughput(&netlist, 1500));
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("eb_latency");
    let none = speculative_with_recovery(None);
    let standard = speculative_with_recovery(Some(BufferSpec::standard(0)));
    let zero = speculative_with_recovery(Some(BufferSpec::zero_backward(0)));
    group.bench_function("no_recovery_buffer", |b| b.iter(|| throughput(&none, 200)));
    group.bench_function("standard_recovery_buffer", |b| b.iter(|| throughput(&standard, 200)));
    group.bench_function("zero_backward_recovery_buffer", |b| b.iter(|| throughput(&zero, 200)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
