//! Experiment E1-fig1: the four design points of Figure 1 — throughput,
//! cycle time, effective cycle time and area (the comparison Section 2 of the
//! paper walks through qualitatively).

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_analysis::{cost::CostModel, report::DesignPoint, DesignComparison};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::SchedulerKind;
use elastic_sim::scenarios::{build_fig1, run_fig1_sweep, Fig1Scenario, Fig1Variant};
use elastic_sim::{SimConfig, Simulation};

fn print_table() {
    print_experiment_header(
        "E1-fig1",
        "Figure 1 design points (taken rate 0.2, two-bit predictor)",
    );
    let model = CostModel::default();
    let mut comparison = DesignComparison::new();
    let scenarios: Vec<Fig1Scenario> = Fig1Variant::all()
        .into_iter()
        .map(|variant| Fig1Scenario {
            variant,
            taken_rate: 0.2,
            scheduler: SchedulerKind::TwoBit,
            cycles: 2000,
            seed: 7,
        })
        .collect();
    for outcome in run_fig1_sweep(&scenarios).expect("fig1 scenarios") {
        comparison.push(DesignPoint::with_throughput(
            outcome.variant.label(),
            &outcome.handles.netlist,
            &model,
            outcome.throughput,
        ));
    }
    println!("{}", comparison.render());
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig1_designs");
    for variant in Fig1Variant::all() {
        let scenario = Fig1Scenario {
            variant,
            taken_rate: 0.2,
            scheduler: SchedulerKind::TwoBit,
            cycles: 200,
            seed: 7,
        };
        let handles = build_fig1(&scenario);
        group.bench_function(variant.label(), |b| {
            b.iter(|| {
                let mut sim = Simulation::new(
                    &handles.netlist,
                    &SimConfig { record_trace: false, ..SimConfig::default() },
                )
                .expect("simulable");
                sim.run(200).expect("no deadlock")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
