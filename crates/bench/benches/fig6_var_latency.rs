//! Experiment E3-fig6: the variable-latency ALU — stalling (Figure 6(a))
//! versus speculative (Figure 6(b)) across approximation-error rates, plus
//! the cycle-time / area comparison of Section 5.1.

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_analysis::{cost::CostModel, timing};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_sim::scenarios::{run_var_latency, run_var_latency_sweep};
use elastic_sim::{SimConfig, Simulation};

fn print_table() {
    print_experiment_header("E3-fig6", "variable-latency ALU (Section 5.1)");
    println!(
        "{:<12} {:>18} {:>20} {:>10}",
        "error rate", "stalling (tok/cy)", "speculative (tok/cy)", "replays"
    );
    let mut sample = None;
    let error_rates = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8];
    for outcome in run_var_latency_sweep(&error_rates, 1500, 13).expect("fig6 scenarios") {
        println!(
            "{:<12.2} {:>18.3} {:>20.3} {:>10}",
            outcome.error_rate,
            outcome.stalling_throughput,
            outcome.speculative_throughput,
            outcome.replays
        );
        sample.get_or_insert(outcome);
    }
    if let Some(outcome) = sample {
        let model = CostModel::default();
        let stalling = timing::analyze(&outcome.stalling.netlist, &model);
        let speculative = timing::analyze(&outcome.speculative.netlist, &model);
        let stalling_area = model.netlist_area(&outcome.stalling.netlist).total();
        let speculative_area = model.netlist_area(&outcome.speculative.netlist).total();
        println!(
            "cycle time: stalling {:.1} levels, speculative {:.1} levels ({:+.1}%); \
             area: {:.0} vs {:.0} GE ({:+.1}%)  [paper: ~-9% cycle time, ~+12% area]",
            stalling.cycle_time,
            speculative.cycle_time,
            (speculative.cycle_time / stalling.cycle_time - 1.0) * 100.0,
            stalling_area,
            speculative_area,
            (speculative_area / stalling_area - 1.0) * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let outcome = run_var_latency(0.1, 200, 13).expect("fig6 scenario");
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let mut group = c.benchmark_group("fig6_var_latency");
    group.bench_function("stalling", |b| {
        b.iter(|| Simulation::new(&outcome.stalling.netlist, &quiet).unwrap().run(200).unwrap())
    });
    group.bench_function("speculative", |b| {
        b.iter(|| Simulation::new(&outcome.speculative.netlist, &quiet).unwrap().run(200).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
