//! Experiment E4-fig7: the SECDED-protected resilient accumulator —
//! unprotected baseline vs. Figure 7(a) vs. Figure 7(b) across soft-error
//! rates, plus the per-stage area overhead of Section 5.2.

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_analysis::cost::CostModel;
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_sim::scenarios::{run_resilient, run_resilient_sweep};
use elastic_sim::{SimConfig, Simulation};

fn print_table() {
    print_experiment_header("E4-fig7", "SECDED resilient accumulator (Section 5.2)");
    println!(
        "{:<12} {:>14} {:>16} {:>14} {:>10}",
        "upset rate", "unprotected", "fig7a non-spec", "fig7b spec", "replays"
    );
    let mut clean = None;
    let upset_rates = [0.0, 0.01, 0.05, 0.1, 0.2];
    for outcome in run_resilient_sweep(&upset_rates, 1500, 17).expect("fig7 scenarios") {
        println!(
            "{:<12.2} {:>14.3} {:>16.3} {:>14.3} {:>10}",
            outcome.upset_rate,
            outcome.unprotected_throughput,
            outcome.nonspeculative_throughput,
            outcome.speculative_throughput,
            outcome.replays
        );
        if outcome.upset_rate == 0.0 {
            clean = Some(outcome);
        }
    }
    if let Some(outcome) = clean {
        let model = CostModel::default();
        let unprotected = model.netlist_area(&outcome.designs.unprotected.netlist).total();
        let nonspeculative = model.netlist_area(&outcome.designs.nonspeculative.netlist).total();
        let speculative = model.netlist_area(&outcome.designs.speculative.netlist).total();
        println!(
            "area (GE): unprotected {:.0}, fig7a {:.0} ({:+.1}%), fig7b {:.0} ({:+.1}%)  \
             [paper: ~+36% for the protected stage]",
            unprotected,
            nonspeculative,
            (nonspeculative / unprotected - 1.0) * 100.0,
            speculative,
            (speculative / unprotected - 1.0) * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table();
    let outcome = run_resilient(0.05, 200, 17).expect("fig7 scenario");
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let mut group = c.benchmark_group("fig7_secded");
    group.bench_function("unprotected", |b| {
        b.iter(|| {
            Simulation::new(&outcome.designs.unprotected.netlist, &quiet).unwrap().run(200).unwrap()
        })
    });
    group.bench_function("nonspeculative", |b| {
        b.iter(|| {
            Simulation::new(&outcome.designs.nonspeculative.netlist, &quiet)
                .unwrap()
                .run(200)
                .unwrap()
        })
    });
    group.bench_function("speculative", |b| {
        b.iter(|| {
            Simulation::new(&outcome.designs.speculative.netlist, &quiet).unwrap().run(200).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
