//! Simulator throughput: raw cycles per second of the SELF engine on the
//! paper's designs (not a paper figure — a regression guard for the
//! reproduction's own substrate, and the basis for sizing the sweeps).
//!
//! Besides the two paper designs, two large synthetic netlists expose the
//! difference between the event-driven worklist settle phase and the naive
//! full-sweep reference:
//!
//! * a 256-stage pipeline of **standard** (fully registered) elastic buffers
//!   — the full sweep converges in a constant number of sweeps here, so the
//!   gap is the constant-factor cost of re-evaluating all ~770 controllers
//!   per sweep;
//! * a 256-stage chain of **zero-backward-latency** (`Lb = 0`) buffers with
//!   a stalling sink — stop/kill waves traverse the whole chain
//!   combinationally, the full sweep needs O(depth) sweeps of O(nodes)
//!   evaluations per cycle, and the worklist engine's asymptotic win
//!   (work ∝ signal changes) becomes visible.
//!
//! `BENCH_sim_speed.json` in the repository root records measured baselines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::kind::{BackpressurePattern, BufferSpec};
use elastic_core::library::{
    deep_pipeline, fig1d, resilient_speculative, Fig1Config, ResilientConfig,
};
use elastic_sim::{SettleStrategy, SimConfig, Simulation};

fn bench(c: &mut Criterion) {
    print_experiment_header("sim-speed", "simulator cycles/second on the speculative designs");
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };
    let quiet_sweep = SimConfig {
        record_trace: false,
        settle: SettleStrategy::FullSweep,
        ..SimConfig::default()
    };

    let fig1 = fig1d(&Fig1Config::default());
    let fig7 = resilient_speculative(&ResilientConfig {
        data_width: 32,
        operands: (0..512).collect(),
        error_masks: vec![0],
    });
    let pipeline = deep_pipeline(256, BufferSpec::standard(0), BackpressurePattern::Never);
    let comb_chain = deep_pipeline(
        256,
        BufferSpec::zero_backward(0),
        BackpressurePattern::List(vec![true, false]),
    );
    let cycles = 512u64;

    let mut group = c.benchmark_group("sim_speed");
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("fig1d_cycles", |b| {
        b.iter(|| Simulation::new(&fig1.netlist, &quiet).unwrap().run(cycles).unwrap())
    });
    group.bench_function("fig7b_cycles", |b| {
        b.iter(|| Simulation::new(&fig7.netlist, &quiet).unwrap().run(cycles).unwrap())
    });
    group.bench_function("fig1d_with_trace", |b| {
        b.iter(|| {
            Simulation::new(&fig1.netlist, &SimConfig::default()).unwrap().run(cycles).unwrap()
        })
    });
    group.bench_function("pipeline256_event_driven", |b| {
        b.iter(|| Simulation::new(&pipeline, &quiet).unwrap().run(cycles).unwrap())
    });
    group.bench_function("pipeline256_full_sweep", |b| {
        b.iter(|| Simulation::new(&pipeline, &quiet_sweep).unwrap().run(cycles).unwrap())
    });
    group.bench_function("comb_chain256_event_driven", |b| {
        b.iter(|| Simulation::new(&comb_chain, &quiet).unwrap().run(cycles).unwrap())
    });
    group.bench_function("comb_chain256_full_sweep", |b| {
        b.iter(|| Simulation::new(&comb_chain, &quiet_sweep).unwrap().run(cycles).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
