//! Simulator throughput: raw cycles per second of the SELF engine on the
//! paper's designs (not a paper figure — a regression guard for the
//! reproduction's own substrate, and the basis for sizing the sweeps).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::library::{fig1d, resilient_speculative, Fig1Config, ResilientConfig};
use elastic_sim::{SimConfig, Simulation};

fn bench(c: &mut Criterion) {
    print_experiment_header("sim-speed", "simulator cycles/second on the speculative designs");
    let quiet = SimConfig { record_trace: false, ..SimConfig::default() };

    let fig1 = fig1d(&Fig1Config::default());
    let fig7 = resilient_speculative(&ResilientConfig {
        data_width: 32,
        operands: (0..512).collect(),
        error_masks: vec![0],
    });
    let cycles = 512u64;

    let mut group = c.benchmark_group("sim_speed");
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("fig1d_cycles", |b| {
        b.iter(|| Simulation::new(&fig1.netlist, &quiet).unwrap().run(cycles).unwrap())
    });
    group.bench_function("fig7b_cycles", |b| {
        b.iter(|| Simulation::new(&fig7.netlist, &quiet).unwrap().run(cycles).unwrap())
    });
    group.bench_function("fig1d_with_trace", |b| {
        b.iter(|| {
            Simulation::new(&fig1.netlist, &SimConfig::default()).unwrap().run(cycles).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
