//! Experiment E2-table1: regenerate the seven-cycle trace of Table 1 and
//! measure the cost of tracing it.

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::library;
use elastic_sim::{SimConfig, Simulation};

fn print_table() {
    print_experiment_header(
        "E2-table1",
        "Table 1 trace (values A..G, '-' = anti-token, '*' = bubble)",
    );
    let handles = library::table1();
    let mut sim = Simulation::new(&handles.netlist, &SimConfig::default()).expect("simulable");
    sim.run(7).expect("no deadlock");
    let channel = |name: &str| {
        handles.netlist.live_channels().find(|c| c.name == name).map(|c| c.id).unwrap()
    };
    println!(
        "{}",
        sim.trace().render_table(&[
            (channel("fin0"), "Fin0"),
            (channel("fout0"), "Fout0"),
            (channel("fin1"), "Fin1"),
            (channel("fout1"), "Fout1"),
            (channel("sel"), "Sel"),
            (channel("ebin"), "EBin"),
        ])
    );
    let report = sim.report();
    println!(
        "mispredictions observed: {} (paper: 2, at cycles 2 and 5)",
        report.total_mispredictions()
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let handles = library::table1();
    c.bench_function("table1_traced_simulation", |b| {
        b.iter(|| {
            let mut sim =
                Simulation::new(&handles.netlist, &SimConfig::default()).expect("simulable");
            sim.run(7).expect("no deadlock");
            sim.trace().len()
        })
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
