//! Experiment E7-verify: cost of the verification campaign of Section 4.2
//! (protocol checking, leads-to, token conservation, bounded environment
//! exploration) on the speculative Figure-1 design.

use criterion::{criterion_group, criterion_main, Criterion};
use elastic_bench::{criterion_config, print_experiment_header};
use elastic_core::library::{fig1d, Fig1Config};
use elastic_verify::conservation::check_shared_module_conservation;
use elastic_verify::exploration::{explore_environments, ExplorationOptions};
use elastic_verify::liveness::{check_leads_to, LivenessOptions};
use elastic_verify::properties::{check_netlist_protocol, ProtocolOptions};

fn print_table() {
    print_experiment_header(
        "E7-verify",
        "verification campaign on the speculative Figure-1 design",
    );
    let handles = fig1d(&Fig1Config::default());
    let protocol =
        check_netlist_protocol(&handles.netlist, 300, &ProtocolOptions::default()).unwrap();
    let leads_to = check_leads_to(&handles.netlist, &LivenessOptions::default()).unwrap();
    let conservation = check_shared_module_conservation(&handles.netlist, 300).unwrap();
    let exploration = explore_environments(
        &handles.netlist,
        &ExplorationOptions { pattern_depth: 3, max_runs: 32, ..ExplorationOptions::default() },
    )
    .unwrap();
    println!("SELF protocol properties : {}", protocol);
    println!("leads-to (no starvation) : {}", leads_to);
    println!("token conservation       : {}", conservation);
    println!("environment exploration  : {}", exploration);
    assert!(
        exploration.is_exhaustive(),
        "depth-3 over one sink fits max_runs, so no coverage note is expected: {exploration}"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let handles = fig1d(&Fig1Config::default());
    let mut group = c.benchmark_group("verify_cost");
    group.bench_function("protocol_check_300_cycles", |b| {
        b.iter(|| {
            check_netlist_protocol(&handles.netlist, 300, &ProtocolOptions::default()).unwrap()
        })
    });
    group.bench_function("conservation_check_300_cycles", |b| {
        b.iter(|| check_shared_module_conservation(&handles.netlist, 300).unwrap())
    });
    // The zero-rebuild sweep of BENCH_trace_mem.json: 256 bounded-run
    // environments, one simulation build per worker thread, reset per
    // combination.
    let sweep = ExplorationOptions {
        pattern_depth: 8,
        cycles_per_run: 16,
        max_runs: 256,
        random_scheduler_runs: 0,
        seed: 7,
    };
    group.bench_function("environment_sweep_256_runs", |b| {
        b.iter(|| explore_environments(&handles.netlist, &sweep).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
