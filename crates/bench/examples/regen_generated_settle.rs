//! Regenerates `crates/bench/src/generated_settle.rs` from the emitter.
//!
//! Run after changing `elastic_sim::codegen` or the source designs:
//!
//! ```text
//! cargo run -p elastic-bench --example regen_generated_settle
//! ```

fn main() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/generated_settle.rs");
    let text = elastic_bench::codegen_support::module_text();
    std::fs::write(&path, &text).expect("write generated module");
    println!("wrote {} ({} bytes)", path.display(), text.len());
}
