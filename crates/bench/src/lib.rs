//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation: it first prints the paper-style rows (so `cargo bench` output
//! doubles as the data behind `EXPERIMENTS.md`), then measures the simulation
//! cost of the corresponding design points with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use criterion::Criterion;

pub mod codegen_support;
pub mod generated_settle;

/// A Criterion configuration tuned for these benches: the interesting output
/// is the printed experiment table; the timing measurement itself only needs
/// to be stable enough to catch large simulator regressions.
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
        .without_plots()
}

/// Prints a section header for the experiment table emitted by a bench.
pub fn print_experiment_header(id: &str, title: &str) {
    println!("\n==== {id}: {title} ====");
}
