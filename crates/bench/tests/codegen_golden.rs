//! Golden and differential tests for the checked-in generated settle module.
//!
//! `crates/bench/src/generated_settle.rs` is the emitted output of
//! `elastic_sim::codegen::emit_settle_fn` for the paper designs in
//! `elastic_bench::codegen_support`. The golden test pins the file to what
//! the emitter produces today (regenerate with the
//! `regen_generated_settle` example when the emitter or the designs change);
//! the differential tests pin the *compiled* functions to the interpreted
//! event-driven engine — same trace, same sink streams, same speculation
//! statistics, cycle for cycle.

use elastic_bench::codegen_support::module_text;
use elastic_bench::generated_settle;
use elastic_core::library::{fig1a, fig1d, resilient_speculative, Fig1Config, ResilientConfig};
use elastic_core::Netlist;
use elastic_sim::codegen::run_generated;
use elastic_sim::{SimConfig, Simulation};

#[test]
fn the_checked_in_module_matches_the_emitter() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/generated_settle.rs");
    let checked_in = std::fs::read_to_string(path).expect("read generated module");
    assert!(
        checked_in == module_text(),
        "src/generated_settle.rs is stale; regenerate with \
         `cargo run -p elastic-bench --example regen_generated_settle`"
    );
}

/// Runs `cycles` with the generated settle function and with the interpreted
/// event-driven engine and asserts the runs are indistinguishable.
fn assert_generated_matches_reference(
    name: &str,
    netlist: &Netlist,
    cycles: u64,
    settle: fn(&mut [elastic_sim::ChannelState], &[Box<dyn elastic_sim::controller::Controller>]),
) {
    let generated = run_generated(netlist, cycles, settle)
        .unwrap_or_else(|error| panic!("{name}: generated run failed: {error}"));
    let mut reference = Simulation::new(netlist, &SimConfig::default())
        .unwrap_or_else(|error| panic!("{name}: reference build failed: {error}"));
    reference.run(cycles).unwrap_or_else(|error| panic!("{name}: reference run failed: {error}"));

    let (gen_trace, ref_trace) = (generated.trace(), reference.trace());
    if gen_trace != ref_trace {
        for cycle in 0..cycles as usize {
            let gen_states: Option<Vec<_>> = gen_trace.states_at(cycle).map(|s| s.collect());
            let ref_states: Option<Vec<_>> = ref_trace.states_at(cycle).map(|s| s.collect());
            assert!(
                gen_states == ref_states,
                "{name}: traces diverge at cycle {cycle}:\n generated {gen_states:?}\n reference \
                 {ref_states:?}"
            );
        }
        panic!("{name}: traces differ outside per-cycle states");
    }

    let (gen, reference) = (generated.report(), reference.report());
    assert_eq!(gen.sink_streams, reference.sink_streams, "{name}: sink streams");
    assert_eq!(gen.source_kills, reference.source_kills, "{name}: source kills");
    assert_eq!(gen.node_stats, reference.node_stats, "{name}: node stats");
    assert_eq!(gen.shared_stats, reference.shared_stats, "{name}: shared stats");
    assert_eq!(gen.commit_stats, reference.commit_stats, "{name}: commit stats");
}

#[test]
fn generated_fig1a_matches_the_interpreted_engine() {
    let netlist = fig1a(&Fig1Config::default()).netlist;
    assert_generated_matches_reference("fig1a", &netlist, 512, generated_settle::settle_fig1a);
}

#[test]
fn generated_fig1d_matches_the_interpreted_engine() {
    let netlist = fig1d(&Fig1Config::default()).netlist;
    assert_generated_matches_reference("fig1d", &netlist, 512, generated_settle::settle_fig1d);
}

#[test]
fn generated_fig7b_matches_the_interpreted_engine() {
    let netlist = resilient_speculative(&ResilientConfig::default()).netlist;
    assert_generated_matches_reference("fig7b", &netlist, 512, generated_settle::settle_fig7b);
}
