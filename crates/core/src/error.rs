//! Error types shared by the elastic-core crate.

use std::fmt;

use crate::id::{ChannelId, NodeId};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building, validating or transforming elastic netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A node id does not refer to a live node of the netlist.
    UnknownNode(NodeId),
    /// A channel id does not refer to a live channel of the netlist.
    UnknownChannel(ChannelId),
    /// A port index is out of range for the node kind.
    InvalidPort {
        /// Node whose port was addressed.
        node: NodeId,
        /// Offending port index.
        index: usize,
        /// Human readable reason.
        reason: String,
    },
    /// A port that must be connected has no channel attached.
    UnconnectedPort {
        /// Node with the dangling port.
        node: NodeId,
        /// Port index.
        index: usize,
        /// Whether the port is an input or an output.
        is_input: bool,
    },
    /// A port is driven by (or drives) more than one channel.
    MultiplyConnectedPort {
        /// Node with the over-connected port.
        node: NodeId,
        /// Port index.
        index: usize,
        /// Whether the port is an input or an output.
        is_input: bool,
    },
    /// A transformation's structural precondition does not hold.
    Precondition {
        /// Name of the transformation.
        transform: &'static str,
        /// Explanation of the violated precondition.
        reason: String,
    },
    /// A buffer specification violates `capacity >= Lf + Lb`.
    InvalidBufferSpec {
        /// Offending node (if it already exists in a netlist).
        node: Option<NodeId>,
        /// Explanation.
        reason: String,
    },
    /// The exploration shell could not parse or execute a command.
    Shell {
        /// The command line that failed.
        command: String,
        /// Explanation.
        reason: String,
    },
    /// Nothing to undo / redo in the transformation log.
    HistoryEmpty,
    /// Structural validation failed with one or more messages.
    Invalid(Vec<String>),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownNode(id) => write!(f, "unknown node {id}"),
            CoreError::UnknownChannel(id) => write!(f, "unknown channel {id}"),
            CoreError::InvalidPort { node, index, reason } => {
                write!(f, "invalid port {index} on node {node}: {reason}")
            }
            CoreError::UnconnectedPort { node, index, is_input } => write!(
                f,
                "unconnected {} port {index} on node {node}",
                if *is_input { "input" } else { "output" }
            ),
            CoreError::MultiplyConnectedPort { node, index, is_input } => write!(
                f,
                "{} port {index} on node {node} is connected to more than one channel",
                if *is_input { "input" } else { "output" }
            ),
            CoreError::Precondition { transform, reason } => {
                write!(f, "precondition of `{transform}` violated: {reason}")
            }
            CoreError::InvalidBufferSpec { node, reason } => match node {
                Some(node) => write!(f, "invalid buffer specification on {node}: {reason}"),
                None => write!(f, "invalid buffer specification: {reason}"),
            },
            CoreError::Shell { command, reason } => {
                write!(f, "shell command `{command}` failed: {reason}")
            }
            CoreError::HistoryEmpty => write!(f, "transformation history is empty"),
            CoreError::Invalid(messages) => {
                write!(f, "netlist validation failed: {}", messages.join("; "))
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            CoreError::UnknownNode(NodeId::new(3)),
            CoreError::UnknownChannel(ChannelId::new(7)),
            CoreError::InvalidPort {
                node: NodeId::new(1),
                index: 2,
                reason: "mux has only two data inputs".into(),
            },
            CoreError::UnconnectedPort { node: NodeId::new(1), index: 0, is_input: true },
            CoreError::MultiplyConnectedPort { node: NodeId::new(1), index: 0, is_input: false },
            CoreError::Precondition { transform: "speculate", reason: "no select cycle".into() },
            CoreError::InvalidBufferSpec { node: None, reason: "capacity < Lf + Lb".into() },
            CoreError::Shell { command: "frobnicate".into(), reason: "unknown command".into() },
            CoreError::HistoryEmpty,
            CoreError::Invalid(vec!["dangling port".into()]),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty(), "{v:?} produced an empty display");
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CoreError>();
    }
}
