//! Identifiers for netlist entities: nodes, channels and ports.

use std::fmt;

/// Identifier of a node (block, buffer or environment) inside a [`crate::Netlist`].
///
/// Node ids are assigned by the netlist that created them and remain stable
/// across transformations: removing a node leaves a hole, it never renumbers
/// surviving nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw index.
    ///
    /// Mostly useful in tests; ordinarily ids are handed out by
    /// [`crate::Netlist`] construction methods.
    pub fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a channel inside a [`crate::Netlist`].
///
/// Like [`NodeId`], channel ids are stable: transformations that remove a
/// channel leave a hole rather than renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates a channel id from its raw index.
    pub fn new(raw: u32) -> Self {
        ChannelId(raw)
    }

    /// Raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Direction of a port as seen from the node that owns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// The port consumes tokens (and may emit anti-tokens backwards).
    Input,
    /// The port produces tokens (and may receive anti-tokens).
    Output,
}

impl PortDir {
    /// `true` for [`PortDir::Input`].
    pub fn is_input(self) -> bool {
        matches!(self, PortDir::Input)
    }
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Input => write!(f, "in"),
            PortDir::Output => write!(f, "out"),
        }
    }
}

/// A port of a node: the attachment point of a channel.
///
/// Ports are identified by the owning node, a direction and an index that is
/// interpreted according to the node kind (see [`crate::NodeKind`] for the
/// per-kind port conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Port {
    /// Node that owns the port.
    pub node: NodeId,
    /// Whether this is an input or an output of the node.
    pub dir: PortDir,
    /// Index among the ports of the same direction.
    pub index: usize,
}

impl Port {
    /// Input port `index` of `node`.
    pub fn input(node: NodeId, index: usize) -> Self {
        Port { node, dir: PortDir::Input, index }
    }

    /// Output port `index` of `node`.
    pub fn output(node: NodeId, index: usize) -> Self {
        Port { node, dir: PortDir::Output, index }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}{}", self.node, self.dir, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_indices() {
        assert_eq!(NodeId::new(42).index(), 42);
        assert_eq!(ChannelId::new(7).index(), 7);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(ChannelId::new(9).to_string(), "c9");
        assert_eq!(Port::input(NodeId::new(1), 2).to_string(), "n1.in2");
        assert_eq!(Port::output(NodeId::new(1), 0).to_string(), "n1.out0");
    }

    #[test]
    fn ports_compare_structurally() {
        let a = Port::input(NodeId::new(1), 0);
        let b = Port::input(NodeId::new(1), 0);
        let c = Port::output(NodeId::new(1), 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn port_dir_helpers() {
        assert!(PortDir::Input.is_input());
        assert!(!PortDir::Output.is_input());
    }
}
