//! Node kinds of an elastic netlist and their per-kind specifications.
//!
//! The port conventions used throughout the workspace are documented on each
//! kind; [`NodeKind::input_count`] and [`NodeKind::output_count`] derive the
//! port arity from the specification.

use crate::op::Op;

/// Specification of an elastic buffer (EB).
///
/// An EB is characterised by its forward latency `Lf` (cycles for a token to
/// traverse it), its backward latency `Lb` (cycles for stop/anti-token
/// information to traverse it backwards) and its capacity `C`, which must
/// satisfy `C >= Lf + Lb` for tokens not to be lost (Section 3.2 of the
/// paper). The buffer may be initialised with tokens (positive) or
/// anti-tokens (negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferSpec {
    /// Forward latency in clock cycles (`Lf`).
    pub forward_latency: u32,
    /// Backward latency in clock cycles (`Lb`).
    pub backward_latency: u32,
    /// Storage capacity in tokens (`C`).
    pub capacity: u32,
    /// Initial occupancy: positive = tokens, negative = anti-tokens, 0 = bubble.
    pub init_tokens: i32,
    /// Maximum number of anti-tokens the buffer can hold while waiting for
    /// tokens to cancel (the counterflow storage of ref \[7\] in the paper).
    pub anti_capacity: u32,
    /// Data value carried by the initial token(s), when `init_tokens > 0`.
    pub init_value: u64,
}

impl BufferSpec {
    /// The standard latch-based EB of Figure 2(a): `Lf = 1`, `Lb = 1`, `C = 2`.
    pub fn standard(init_tokens: i32) -> Self {
        BufferSpec {
            forward_latency: 1,
            backward_latency: 1,
            capacity: 2,
            init_tokens,
            anti_capacity: 1,
            init_value: 0,
        }
    }

    /// An empty standard EB (a *bubble*).
    pub fn bubble() -> Self {
        Self::standard(0)
    }

    /// The zero-backward-latency EB of Figure 5: `Lf = 1`, `Lb = 0`, `C = 1`.
    ///
    /// Stop and kill information travels combinationally through this buffer,
    /// which removes the anti-token bottleneck on speculation recovery paths
    /// (Section 4.3).
    pub fn zero_backward(init_tokens: i32) -> Self {
        BufferSpec {
            forward_latency: 1,
            backward_latency: 0,
            capacity: 1,
            init_tokens,
            anti_capacity: 1,
            init_value: 0,
        }
    }

    /// Sets the data value carried by the initial token(s).
    pub fn with_init_value(mut self, init_value: u64) -> Self {
        self.init_value = init_value;
        self
    }

    /// `true` when the capacity constraint `C >= Lf + Lb` holds and the
    /// initial occupancy fits in the declared capacities.
    pub fn is_well_formed(&self) -> bool {
        self.capacity >= self.forward_latency + self.backward_latency
            && self.forward_latency >= 1
            && self.init_tokens <= self.capacity as i32
            && -self.init_tokens <= self.anti_capacity as i32
    }
}

impl Default for BufferSpec {
    fn default() -> Self {
        Self::standard(0)
    }
}

/// Specification of a combinational function block.
///
/// A function block with `inputs` input ports behaves as a lazy join: it
/// waits for all inputs to carry valid tokens, computes [`Op`] on the operand
/// tuple and produces one output token. Anti-tokens arriving on the output
/// propagate backwards to every input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionSpec {
    /// Operation computed by the block.
    pub op: Op,
    /// Number of input ports.
    pub inputs: usize,
}

impl FunctionSpec {
    /// Creates a function specification, defaulting the port count to the
    /// operation's natural arity (or 1 when the operation is variadic).
    pub fn new(op: Op) -> Self {
        let inputs = op.arity().unwrap_or(1).max(1);
        FunctionSpec { op, inputs }
    }

    /// Creates a function specification with an explicit number of inputs.
    pub fn with_inputs(op: Op, inputs: usize) -> Self {
        FunctionSpec { op, inputs }
    }
}

/// Specification of a multiplexor.
///
/// Port convention: input port 0 is the **select** channel, input ports
/// `1..=data_inputs` are the data channels, and there is a single output.
/// When `early_eval` is set the multiplexor performs early evaluation: it
/// fires as soon as the select token and the *selected* data token are
/// available and injects an anti-token into every non-selected data channel
/// (Section 3.3 / ref \[7\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MuxSpec {
    /// Number of data inputs (the select value addresses them as `0..data_inputs`).
    pub data_inputs: usize,
    /// Whether the multiplexor uses early evaluation with anti-token injection.
    pub early_eval: bool,
}

impl MuxSpec {
    /// A conventional (lazy) multiplexor that waits for all inputs.
    pub fn lazy(data_inputs: usize) -> Self {
        MuxSpec { data_inputs, early_eval: false }
    }

    /// An early-evaluation multiplexor.
    pub fn early(data_inputs: usize) -> Self {
        MuxSpec { data_inputs, early_eval: true }
    }
}

/// Specification of a fork that replicates tokens to several consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForkSpec {
    /// Number of output branches.
    pub outputs: usize,
    /// Eager forks deliver the token to each ready branch independently and
    /// complete once every branch has received it; lazy forks require all
    /// branches to be ready simultaneously.
    pub eager: bool,
}

impl ForkSpec {
    /// An eager fork with the given number of branches.
    pub fn eager(outputs: usize) -> Self {
        ForkSpec { outputs, eager: true }
    }

    /// A lazy fork with the given number of branches.
    pub fn lazy(outputs: usize) -> Self {
        ForkSpec { outputs, eager: false }
    }
}

/// Built-in scheduler families for speculative shared modules.
///
/// The concrete implementations live in the `elastic-predict` crate; this
/// enum only names the default policy to instantiate when simulating a
/// netlist. Simulation harnesses can override the policy per node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// Always predict the same user channel.
    Static(usize),
    /// Rotate over user channels every cycle (fair, non-speculative sharing).
    RoundRobin,
    /// Predict the channel that was selected by the consumer most recently.
    LastTaken,
    /// Two-bit saturating-counter predictor per channel pair.
    TwoBit,
    /// History-indexed (gshare-style) predictor.
    Correlating {
        /// Number of global-history bits.
        history_bits: u8,
    },
    /// Follow an explicit per-cycle prediction sequence (used by the Table-1
    /// trace reproduction); repeats the last entry when exhausted.
    Sequence(Vec<usize>),
    /// Predict channel 0 until a misprediction is observed, then replay the
    /// other channel for one cycle (the error-driven policy of Sections 5.1
    /// and 5.2).
    ErrorReplay,
    /// Confidence-throttled run-ahead: keep a preferred channel (from
    /// observed select evidence) but *hedge* the next channel once every
    /// `2 + confidence` cycles, where the confidence counter rises on
    /// confirming evidence (saturating at `max_confidence`) and resets — with
    /// an immediate hedge — on contrary evidence. Deep commit lanes stop
    /// paying a recovery penalty on periodic mispredicts because the demanded
    /// result is already parked in the hedged lane (the ROADMAP
    /// "confidence-adaptive commit scheduling" carry-over).
    Confidence {
        /// Ceiling of the confidence counter; the run-ahead window between
        /// hedges is at most `2 + max_confidence` cycles.
        max_confidence: u8,
    },
}

impl Default for SchedulerKind {
    fn default() -> Self {
        SchedulerKind::Static(0)
    }
}

/// Specification of a speculative shared module (Section 4.1, Figure 4).
///
/// The module multiplexes `users` logical channels over a single instance of
/// a combinational operation. Each user owns `inputs_per_user` input ports
/// and exactly one output port. Port convention: input ports are laid out
/// user-major (`user * inputs_per_user + operand`), output port `i` belongs
/// to user `i`.
///
/// A [`SchedulerKind`] names the prediction policy used to pick which user's
/// token is propagated through the shared logic each cycle. The controller
/// stalls the non-predicted users (unless their tokens are killed by
/// anti-tokens coming back from the consumer) and guarantees the mutual
/// exclusion of kill and stop required by the SELF protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SharedSpec {
    /// Number of user channels sharing the module.
    pub users: usize,
    /// Number of operand ports per user.
    pub inputs_per_user: usize,
    /// Operation computed by the shared logic.
    pub op: Op,
    /// Default prediction policy.
    pub scheduler: SchedulerKind,
    /// If set, the controller overrides the scheduler after a user token has
    /// been stalled for this many cycles, guaranteeing the leads-to property
    /// (no starvation) regardless of the scheduler implementation.
    pub starvation_limit: Option<u32>,
}

impl SharedSpec {
    /// Shared module with one operand per user and a default scheduler.
    pub fn new(users: usize, op: Op) -> Self {
        SharedSpec {
            users,
            inputs_per_user: 1,
            op,
            scheduler: SchedulerKind::default(),
            starvation_limit: Some(64),
        }
    }

    /// Sets the number of operand ports per user.
    pub fn with_inputs_per_user(mut self, inputs_per_user: usize) -> Self {
        self.inputs_per_user = inputs_per_user;
        self
    }

    /// Sets the default scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Specification of an in-order commit stage for a speculative shared module
/// (Section 4.2).
///
/// The commit stage sits between the user outputs of a shared module and the
/// data inputs of the early-evaluation multiplexor that resolves the
/// speculation. Each *lane* is a small FIFO (`depth` entries) that parks the
/// speculatively computed result of one user until the consumer either
/// commits it (forward transfer) or squashes it (anti-token). Its outputs are
/// **persistent**: once a lane offers a result, the offer is never retracted
/// when the scheduler's prediction changes — which is what makes the
/// downstream observation order independent of the scheduler. Within a lane,
/// results commit in exactly operand order; across lanes, the resolving
/// multiplexor consumes in select (program) order, so no wrong-path result
/// ever escapes the stage.
///
/// Port convention: input port `i` and output port `i` belong to lane `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommitSpec {
    /// Number of independent result lanes (one per shared-module user).
    pub lanes: usize,
    /// FIFO depth of each lane (how far the scheduler may run ahead of the
    /// resolution point).
    pub depth: u32,
}

impl CommitSpec {
    /// A commit stage with one result slot per lane.
    pub fn new(lanes: usize) -> Self {
        CommitSpec { lanes, depth: 1 }
    }

    /// Sets the per-lane FIFO depth.
    pub fn with_depth(mut self, depth: u32) -> Self {
        self.depth = depth;
        self
    }
}

/// Specification of a variable-latency unit (Figure 6(a), "stalling" style).
///
/// The unit computes `approx` in one cycle; when the error detector reports
/// that the approximation differs from `exact`, the output is stalled for one
/// extra cycle and the exact result is delivered instead. This is the
/// baseline the speculative construction of Figure 6(b) is compared against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarLatencySpec {
    /// Exact operation (always correct, longer critical path).
    pub exact: Op,
    /// Approximate operation (shorter critical path, sometimes wrong).
    pub approx: Op,
    /// Error detector: non-zero output means the approximation failed.
    pub error: Op,
    /// Number of operand input ports.
    pub inputs: usize,
}

/// Token production pattern of a source environment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum SourcePattern {
    /// Offer a token every cycle.
    #[default]
    Always,
    /// Offer a token once every `period` cycles (period >= 1).
    Every(u32),
    /// Explicit per-cycle offer pattern; repeats when exhausted.
    List(Vec<bool>),
    /// Offer a token with the given probability each cycle (deterministic
    /// pseudo-random stream derived from `seed`).
    Random {
        /// Probability of offering a token in a cycle, in `[0, 1]`.
        probability: f64,
        /// Seed of the per-source pseudo-random generator.
        seed: u64,
    },
}

/// Data stream produced by a source environment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum DataStream {
    /// 0, 1, 2, … per produced token.
    #[default]
    Counter,
    /// The same constant for every token.
    Const(u64),
    /// Explicit sequence of values; repeats when exhausted.
    List(Vec<u64>),
    /// Pseudo-random values masked to the channel width.
    Random {
        /// Seed of the per-source pseudo-random generator.
        seed: u64,
    },
}

/// Specification of a source (input environment).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// When the source offers tokens.
    pub pattern: SourcePattern,
    /// The data carried by the offered tokens.
    pub data: DataStream,
    /// Whether an anti-token reaching the source consumes the next stream
    /// value (`true`, the default) or cancels a *phantom* token that is not
    /// part of the listed stream (`false`). The latter models environments —
    /// such as the one behind Table 1 of the paper — that generate a
    /// speculative alternative per decision only on demand, so a cancelled
    /// alternative does not shift the real value stream.
    pub consume_on_kill: bool,
}

impl Default for SourceSpec {
    fn default() -> Self {
        SourceSpec {
            pattern: SourcePattern::default(),
            data: DataStream::default(),
            consume_on_kill: true,
        }
    }
}

impl SourceSpec {
    /// A source that offers a fresh token every cycle with counter data.
    pub fn always() -> Self {
        SourceSpec::default()
    }

    /// A source that offers the given values, one per accepted token.
    pub fn list(values: Vec<u64>) -> Self {
        SourceSpec { data: DataStream::List(values), ..SourceSpec::default() }
    }
}

/// Back-pressure pattern applied by a sink environment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum BackpressurePattern {
    /// Never stall the producer.
    #[default]
    Never,
    /// Stall once every `period` cycles.
    Every(u32),
    /// Explicit per-cycle stall pattern; repeats when exhausted.
    List(Vec<bool>),
    /// Stall with the given probability each cycle.
    Random {
        /// Probability of stalling in a cycle, in `[0, 1]`.
        probability: f64,
        /// Seed of the per-sink pseudo-random generator.
        seed: u64,
    },
}

/// Specification of a sink (output environment).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SinkSpec {
    /// Back-pressure behaviour of the sink.
    pub backpressure: BackpressurePattern,
}

impl SinkSpec {
    /// A sink that always accepts.
    pub fn always_ready() -> Self {
        SinkSpec::default()
    }
}

/// The kind of a netlist node, with its kind-specific configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeKind {
    /// Elastic buffer (sequential storage).
    Buffer(BufferSpec),
    /// Combinational function block with join semantics on its inputs.
    Function(FunctionSpec),
    /// (Early-evaluation) multiplexor.
    Mux(MuxSpec),
    /// Token-replicating fork.
    Fork(ForkSpec),
    /// Speculative shared module with a scheduler.
    Shared(SharedSpec),
    /// In-order commit stage for a speculative shared module.
    Commit(CommitSpec),
    /// Variable-latency unit (stalling implementation, Figure 6(a)).
    VarLatency(VarLatencySpec),
    /// Input environment.
    Source(SourceSpec),
    /// Output environment.
    Sink(SinkSpec),
}

impl NodeKind {
    /// Number of input ports of a node of this kind.
    pub fn input_count(&self) -> usize {
        match self {
            NodeKind::Buffer(_) => 1,
            NodeKind::Function(f) => f.inputs,
            NodeKind::Mux(m) => 1 + m.data_inputs,
            NodeKind::Fork(_) => 1,
            NodeKind::Shared(s) => s.users * s.inputs_per_user,
            NodeKind::Commit(c) => c.lanes,
            NodeKind::VarLatency(v) => v.inputs,
            NodeKind::Source(_) => 0,
            NodeKind::Sink(_) => 1,
        }
    }

    /// Number of output ports of a node of this kind.
    pub fn output_count(&self) -> usize {
        match self {
            NodeKind::Buffer(_) => 1,
            NodeKind::Function(_) => 1,
            NodeKind::Mux(_) => 1,
            NodeKind::Fork(f) => f.outputs,
            NodeKind::Shared(s) => s.users,
            NodeKind::Commit(c) => c.lanes,
            NodeKind::VarLatency(_) => 1,
            NodeKind::Source(_) => 1,
            NodeKind::Sink(_) => 0,
        }
    }

    /// `true` for sequential nodes (nodes that break combinational paths).
    ///
    /// The commit stage qualifies: a lane's output valid is a function of its
    /// FIFO occupancy alone, so the forward valid/retraction wave of its
    /// producer never crosses it (its *backward* stop path is combinational,
    /// like the Figure-5 zero-backward buffer).
    pub fn is_sequential(&self) -> bool {
        matches!(self, NodeKind::Buffer(_) | NodeKind::VarLatency(_) | NodeKind::Commit(_))
    }

    /// `true` for environment nodes (sources and sinks).
    pub fn is_environment(&self) -> bool {
        matches!(self, NodeKind::Source(_) | NodeKind::Sink(_))
    }

    /// `true` for combinational nodes: their control outputs (valids, stops,
    /// kills) re-derive from their inputs within the settle phase, so
    /// retraction waves, stop chains and lazy-rendezvous withholding all
    /// traverse them. The complement of sequential and environment nodes —
    /// kept as one predicate because the transform-side analyses
    /// (retraction domains, rendezvous regions, taint closures) must agree
    /// on exactly this set.
    pub fn is_combinational(&self) -> bool {
        !self.is_sequential() && !self.is_environment()
    }

    /// Short kind name used in reports and emitted HDL.
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Buffer(_) => "buffer",
            NodeKind::Function(_) => "function",
            NodeKind::Mux(_) => "mux",
            NodeKind::Fork(_) => "fork",
            NodeKind::Shared(_) => "shared",
            NodeKind::Commit(_) => "commit",
            NodeKind::VarLatency(_) => "varlatency",
            NodeKind::Source(_) => "source",
            NodeKind::Sink(_) => "sink",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_buffer_satisfies_capacity_constraint() {
        let eb = BufferSpec::standard(1);
        assert!(eb.is_well_formed());
        assert_eq!(eb.capacity, 2);
        assert_eq!(eb.forward_latency + eb.backward_latency, 2);
    }

    #[test]
    fn zero_backward_buffer_has_unit_capacity() {
        let eb = BufferSpec::zero_backward(0);
        assert!(eb.is_well_formed());
        assert_eq!(eb.capacity, 1);
        assert_eq!(eb.backward_latency, 0);
    }

    #[test]
    fn undersized_buffer_is_rejected() {
        let eb = BufferSpec { capacity: 1, ..BufferSpec::standard(0) };
        assert!(!eb.is_well_formed(), "C < Lf + Lb must be rejected (tokens could be lost)");
    }

    #[test]
    fn overfilled_buffer_is_rejected() {
        let eb = BufferSpec { init_tokens: 3, ..BufferSpec::standard(0) };
        assert!(!eb.is_well_formed());
        let eb = BufferSpec { init_tokens: -2, ..BufferSpec::standard(0) };
        assert!(!eb.is_well_formed(), "anti-token occupancy above anti_capacity must be rejected");
    }

    #[test]
    fn port_counts_follow_specs() {
        let mux = NodeKind::Mux(MuxSpec::early(2));
        assert_eq!(mux.input_count(), 3, "select plus two data inputs");
        assert_eq!(mux.output_count(), 1);

        let shared = NodeKind::Shared(SharedSpec::new(2, Op::Add).with_inputs_per_user(2));
        assert_eq!(shared.input_count(), 4);
        assert_eq!(shared.output_count(), 2);

        let fork = NodeKind::Fork(ForkSpec::eager(3));
        assert_eq!(fork.input_count(), 1);
        assert_eq!(fork.output_count(), 3);

        let source = NodeKind::Source(SourceSpec::always());
        assert_eq!(source.input_count(), 0);
        assert_eq!(source.output_count(), 1);
    }

    #[test]
    fn sequential_and_environment_classification() {
        assert!(NodeKind::Buffer(BufferSpec::bubble()).is_sequential());
        assert!(!NodeKind::Function(FunctionSpec::new(Op::Add)).is_sequential());
        assert!(NodeKind::Source(SourceSpec::always()).is_environment());
        assert!(NodeKind::Sink(SinkSpec::always_ready()).is_environment());
        assert!(!NodeKind::Mux(MuxSpec::lazy(2)).is_environment());
    }

    #[test]
    fn function_spec_defaults_inputs_from_arity() {
        assert_eq!(FunctionSpec::new(Op::Sub).inputs, 2);
        assert_eq!(FunctionSpec::new(Op::Identity).inputs, 1);
        assert_eq!(FunctionSpec::new(Op::Alu8).inputs, 3);
    }
}
