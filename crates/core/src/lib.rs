//! # elastic-core
//!
//! Core data model and correct-by-construction transformations for
//! **synchronous elastic (latency-insensitive) systems**, reproducing
//! *"Speculation in Elastic Systems"* (Galceran-Oms, Cortadella, Kishinevsky,
//! DAC 2009).
//!
//! An elastic system is a collection of blocks and FIFOs connected by
//! channels. Each channel carries data together with a tuple of handshake
//! control bits `(V+, S+, V-, S-)` implementing the SELF protocol: tokens
//! travel forward under `V+/S+`, anti-tokens travel backward under `V-/S-`,
//! and a token and an anti-token cancel each other when they meet.
//!
//! This crate provides:
//!
//! * an abstract **netlist** representation ([`Netlist`]) with elastic
//!   buffers, combinational function blocks, (early-evaluation) multiplexors,
//!   forks, speculative shared modules and environment nodes,
//! * the catalogue of **correct-by-construction transformations** from the
//!   paper: bubble insertion/removal, elastic-buffer retiming, early
//!   evaluation, Shannon decomposition (multiplexor retiming), sharing of
//!   duplicated logic behind a speculative shared module, buffer latency
//!   re-parameterisation, and the composite [`transform::speculate`] pass,
//! * the abstract [`scheduler::Scheduler`] interface used by speculative
//!   shared modules,
//! * an [`shell::ExplorationShell`] command interpreter mirroring the
//!   interactive exploration toolkit described in Section 5 of the paper,
//! * a [`library`] of prebuilt netlists for every example the paper
//!   evaluates (Figure 1(a)–(d), Table 1, the variable-latency unit of
//!   Figure 6 and the SECDED resilient adder of Figure 7).
//!
//! Cycle-accurate simulation lives in the `elastic-sim` crate, performance
//! and cost analysis in `elastic-analysis`, verification in `elastic-verify`
//! and HDL emission in `elastic-hdl`.
//!
//! # Quick example
//!
//! ```
//! use elastic_core::library;
//! use elastic_core::transform::{self, SpeculateOptions};
//!
//! // Build the non-speculative loop of Figure 1(a) …
//! let fig1 = library::fig1a(&library::Fig1Config::default());
//! let mut netlist = fig1.netlist.clone();
//! // … and turn it into the speculative design of Figure 1(d).
//! let report = transform::speculate(&mut netlist, fig1.mux, &SpeculateOptions::default())
//!     .expect("speculation applies to the Figure-1 netlist");
//! assert!(netlist.node(report.shared_module).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod id;
pub mod kind;
pub mod library;
pub mod netlist;
pub mod op;
pub mod scheduler;
pub mod shell;
pub mod transform;
pub mod validate;

pub use error::{CoreError, Result};
pub use id::{ChannelId, NodeId, Port, PortDir};
pub use kind::{
    BufferSpec, CommitSpec, ForkSpec, FunctionSpec, MuxSpec, NodeKind, SchedulerKind, SharedSpec,
    SinkSpec, SourceSpec, VarLatencySpec,
};
pub use netlist::{Channel, Netlist, Node};
pub use op::Op;
pub use scheduler::{Scheduler, SharedFeedback};
