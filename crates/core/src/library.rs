//! Prebuilt netlists for every design the paper evaluates.
//!
//! The builders in this module construct the *structural* netlists; they take
//! already-generated data streams as parameters so that this crate stays free
//! of workload-generation concerns (the `elastic-sim` crate combines these
//! builders with the workload generators of `elastic-datapath` into ready-to-
//! run scenarios).
//!
//! | builder | paper artefact |
//! |---|---|
//! | [`fig1a`] | Figure 1(a): non-speculative loop |
//! | [`fig1b`] | Figure 1(b): bubble insertion on the critical path |
//! | [`fig1c`] | Figure 1(c): Shannon decomposition |
//! | [`fig1d`] | Figure 1(d): speculation with a shared module |
//! | [`table1`] | Table 1: the seven-cycle speculation trace |
//! | [`variable_latency_stalling`] | Figure 6(a): stalling variable-latency unit |
//! | [`variable_latency_speculative`] | Figure 6(b): speculative variable-latency unit |
//! | [`resilient_unprotected`] | Section 5.2 baseline: unprotected accumulator |
//! | [`resilient_nonspeculative`] | Figure 7(a): SECDED stage before the adder |
//! | [`resilient_speculative`] | Figure 7(b): speculative SECDED-protected adder |

use crate::id::{NodeId, Port};
use crate::kind::{
    BufferSpec, DataStream, ForkSpec, FunctionSpec, MuxSpec, SchedulerKind, SinkSpec,
    SourcePattern, SourceSpec,
};
use crate::netlist::Netlist;
use crate::op::{opaque, Op};
use crate::transform::{
    enable_early_evaluation, insert_bubble, shannon_decompose, speculate, SpeculateOptions,
};

/// Configuration of the Figure-1 family of netlists.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Config {
    /// Data width of the loop datapath.
    pub width: u8,
    /// Combinational delay (logic levels) of the block `F` after the mux.
    pub f_delay: u32,
    /// Area (gate equivalents) of `F`.
    pub f_area: u32,
    /// Combinational delay (logic levels) of the select-computing block `G`.
    pub g_delay: u32,
    /// Area (gate equivalents) of `G`.
    pub g_area: u32,
    /// Data stream offered on the multiplexor's data input 0.
    pub src0_data: DataStream,
    /// Data stream offered on the multiplexor's data input 1.
    pub src1_data: DataStream,
    /// Initial value stored in the loop's elastic buffer.
    pub initial_value: u64,
    /// Scheduler used when speculation is applied ([`fig1d`]).
    pub scheduler: SchedulerKind,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            width: 8,
            f_delay: 6,
            f_area: 120,
            g_delay: 6,
            g_area: 90,
            src0_data: DataStream::Counter,
            src1_data: DataStream::Counter,
            initial_value: 0,
            scheduler: SchedulerKind::LastTaken,
        }
    }
}

/// Handles into a Figure-1 style netlist.
#[derive(Debug, Clone)]
pub struct Fig1Handles {
    /// The constructed netlist.
    pub netlist: Netlist,
    /// The decision multiplexor.
    pub mux: NodeId,
    /// Source feeding data input 0.
    pub src0: NodeId,
    /// Source feeding data input 1.
    pub src1: NodeId,
    /// The block after the multiplexor (`F`); `None` once it has been retimed
    /// away by Shannon decomposition or speculation.
    pub f: Option<NodeId>,
    /// The select-computing block (`G`).
    pub g: NodeId,
    /// The loop elastic buffer (initially holding one token).
    pub eb: NodeId,
    /// The fork distributing the loop value to `G` and the sink.
    pub fork: NodeId,
    /// The observation sink.
    pub sink: NodeId,
    /// The speculative shared module, when present ([`fig1d`]).
    pub shared: Option<NodeId>,
}

/// Builds the non-speculative loop of Figure 1(a).
///
/// ```text
/// src0 ─► mux ─► F ─► EB(●) ─► fork ─► sink
/// src1 ─►  │                    │
///          └─────── G ◄─────────┘     (G's low bit drives the mux select)
/// ```
///
/// `G` extracts the low bit of the loop value, so the select stream is
/// controlled entirely by the low bits of the data offered by `src0`/`src1`.
pub fn fig1a(config: &Fig1Config) -> Fig1Handles {
    let mut n = Netlist::new("fig1a_nonspeculative");
    let src0 = n.add_source(
        "src0",
        SourceSpec {
            pattern: SourcePattern::Always,
            data: config.src0_data.clone(),
            ..SourceSpec::default()
        },
    );
    let src1 = n.add_source(
        "src1",
        SourceSpec {
            pattern: SourcePattern::Always,
            data: config.src1_data.clone(),
            ..SourceSpec::default()
        },
    );
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let f = n.add_op("f", opaque("F", config.f_delay, config.f_area));
    let eb = n.add_buffer("eb", BufferSpec::standard(1).with_init_value(config.initial_value));
    let fork = n.add_fork("fork", ForkSpec::eager(2));
    // G computes the "branch decision": structurally it is an opaque block in
    // the paper; here it extracts the low bit of the loop value so that the
    // select stream is data-driven and reproducible. Its delay/area budget is
    // taken from the configuration.
    let g = n.add_function(
        "g",
        FunctionSpec::new(Op::Opaque {
            name: "G".into(),
            delay_levels: config.g_delay,
            area_ge: config.g_area,
        }),
    );
    let sink = n.add_sink("sink", SinkSpec::always_ready());

    n.connect_named("in0", Port::output(src0, 0), Port::input(mux, 1), config.width)
        .expect("fig1a wiring");
    n.connect_named("in1", Port::output(src1, 0), Port::input(mux, 2), config.width)
        .expect("fig1a wiring");
    n.connect_named("mux_out", Port::output(mux, 0), Port::input(f, 0), config.width)
        .expect("fig1a wiring");
    n.connect_named("f_out", Port::output(f, 0), Port::input(eb, 0), config.width)
        .expect("fig1a wiring");
    n.connect_named("eb_out", Port::output(eb, 0), Port::input(fork, 0), config.width)
        .expect("fig1a wiring");
    n.connect_named("loop_to_g", Port::output(fork, 0), Port::input(g, 0), config.width)
        .expect("fig1a wiring");
    n.connect_named("observe", Port::output(fork, 1), Port::input(sink, 0), config.width)
        .expect("fig1a wiring");
    n.connect_named("select", Port::output(g, 0), Port::input(mux, 0), 1).expect("fig1a wiring");

    n.validate().expect("fig1a is structurally valid by construction");
    Fig1Handles { netlist: n, mux, src0, src1, f: Some(f), g, eb, fork, sink, shared: None }
}

/// Builds Figure 1(b): the Figure-1(a) loop with a bubble inserted on the
/// critical channel between the multiplexor and `F`.
///
/// The bubble cuts the `G → mux → F` combinational path but the loop now
/// carries one token over two buffers, so the throughput drops to 1/2.
pub fn fig1b(config: &Fig1Config) -> Fig1Handles {
    let mut handles = fig1a(config);
    handles.netlist.set_name("fig1b_bubble_insertion");
    let mux_out = handles
        .netlist
        .channel_from(Port::output(handles.mux, 0))
        .map(|c| c.id)
        .expect("fig1a always wires the mux output");
    insert_bubble(&mut handles.netlist, mux_out).expect("bubble insertion on a live channel");
    handles
}

/// Builds Figure 1(c): Shannon decomposition applied to the Figure-1(a) loop.
///
/// `F` is duplicated onto both multiplexor inputs and the multiplexor gains
/// early evaluation, so `F` and `G` execute in parallel and the throughput
/// stays at 1 token/cycle — at the price of duplicating `F`.
pub fn fig1c(config: &Fig1Config) -> Fig1Handles {
    let mut handles = fig1a(config);
    handles.netlist.set_name("fig1c_shannon");
    shannon_decompose(&mut handles.netlist, handles.mux).expect("fig1a matches the precondition");
    enable_early_evaluation(&mut handles.netlist, handles.mux).expect("mux exists");
    handles.f = None;
    handles
}

/// Builds Figure 1(d): the speculative design, by applying the composite
/// [`speculate`] transformation to the Figure-1(a) loop.
pub fn fig1d(config: &Fig1Config) -> Fig1Handles {
    let mut handles = fig1a(config);
    handles.netlist.set_name("fig1d_speculation");
    let report = speculate(
        &mut handles.netlist,
        handles.mux,
        &SpeculateOptions { scheduler: config.scheduler.clone(), ..SpeculateOptions::default() },
    )
    .expect("fig1a matches the speculation preconditions");
    handles.f = None;
    handles.shared = Some(report.shared_module);
    handles
}

/// Handles into the Table-1 trace netlist.
#[derive(Debug, Clone)]
pub struct Table1Handles {
    /// The constructed netlist (a Figure-1(d) structure with pinned streams).
    pub netlist: Netlist,
    /// The early-evaluation multiplexor.
    pub mux: NodeId,
    /// The speculative shared module (`F`).
    pub shared: NodeId,
    /// The elastic buffer collecting the multiplexor output (`EBin` in Table 1).
    pub eb: NodeId,
    /// Source feeding `Fin0`.
    pub src0: NodeId,
    /// Source feeding `Fin1`.
    pub src1: NodeId,
    /// Source producing the select stream (`Sel` in Table 1).
    pub select: NodeId,
    /// The observation sink.
    pub sink: NodeId,
}

/// Data values used by the Table-1 trace: the letters A…G of the paper mapped
/// to small integers.
pub const TABLE1_VALUES: [(char, u64); 7] =
    [('A', 0xA1), ('B', 0xB2), ('C', 0xC3), ('D', 0xD4), ('E', 0xE5), ('F', 0xF6), ('G', 0x97)];

/// The per-cycle select values of Table 1 (`Sel` row; stalled select tokens
/// repeat their value).
pub const TABLE1_SELECT: [u64; 7] = [0, 1, 1, 1, 0, 0, 0];

/// The select values actually *consumed* by the multiplexor in Table 1, one
/// per firing (cycles 0, 1, 3, 4 and 6).
pub const TABLE1_CONSUMED_SELECT: [u64; 5] = [0, 1, 1, 0, 0];

/// The scheduler prediction stream of Table 1 (`Sched` row).
pub const TABLE1_SCHEDULE: [usize; 7] = [0, 1, 0, 1, 0, 1, 0];

/// Builds the netlist whose simulation reproduces Table 1 of the paper.
///
/// The structure is the Figure-1(d) speculative design, but the select stream
/// and the scheduler predictions are pinned to the sequences printed in the
/// table (in the paper they emerge from `G` and from an unspecified
/// prediction policy; pinning them is the only way to reproduce the exact
/// published trace). Channel `Fin0` receives A, C, E, F and `Fin1` receives
/// B, D, G, matching the table's rows.
pub fn table1() -> Table1Handles {
    let mut n = Netlist::new("table1_trace");
    // Fin0 carries A, C, E, F and Fin1 carries B, D, G, offered on the cycles
    // where Table 1 shows valid data in those rows. Anti-tokens reaching the
    // environments cancel phantom alternatives rather than shifting the value
    // streams (see `SourceSpec::consume_on_kill`).
    let src0 = n.add_source(
        "src0",
        SourceSpec {
            pattern: SourcePattern::List(vec![true, false, true, false, true, true, false]),
            data: DataStream::List(vec![
                TABLE1_VALUES[0].1, // A
                TABLE1_VALUES[2].1, // C
                TABLE1_VALUES[4].1, // E
                TABLE1_VALUES[5].1, // F
            ]),
            consume_on_kill: false,
        },
    );
    let src1 = n.add_source(
        "src1",
        SourceSpec {
            pattern: SourcePattern::List(vec![false, true, true, false, false, true, false]),
            data: DataStream::List(vec![
                TABLE1_VALUES[1].1, // B
                TABLE1_VALUES[3].1, // D
                TABLE1_VALUES[6].1, // G
            ]),
            consume_on_kill: false,
        },
    );
    let select = n.add_source(
        "sel",
        SourceSpec {
            pattern: SourcePattern::Always,
            data: DataStream::List(TABLE1_CONSUMED_SELECT.to_vec()),
            ..SourceSpec::default()
        },
    );
    let shared = n.add_shared(
        "f_shared",
        crate::kind::SharedSpec::new(2, opaque("F", 6, 120))
            .with_scheduler(SchedulerKind::Sequence(TABLE1_SCHEDULE.to_vec())),
    );
    let mux = n.add_mux("mux", MuxSpec::early(2));
    let eb = n.add_buffer("eb", BufferSpec::standard(0));
    let sink = n.add_sink("sink", SinkSpec::always_ready());

    n.connect_named("fin0", Port::output(src0, 0), Port::input(shared, 0), 8).expect("table1");
    n.connect_named("fin1", Port::output(src1, 0), Port::input(shared, 1), 8).expect("table1");
    n.connect_named("fout0", Port::output(shared, 0), Port::input(mux, 1), 8).expect("table1");
    n.connect_named("fout1", Port::output(shared, 1), Port::input(mux, 2), 8).expect("table1");
    n.connect_named("sel", Port::output(select, 0), Port::input(mux, 0), 1).expect("table1");
    n.connect_named("ebin", Port::output(mux, 0), Port::input(eb, 0), 8).expect("table1");
    n.connect_named("observe", Port::output(eb, 0), Port::input(sink, 0), 8).expect("table1");
    n.validate().expect("table1 is structurally valid by construction");

    Table1Handles { netlist: n, mux, shared, eb, src0, src1, select, sink }
}

/// Configuration of the variable-latency experiment (Section 5.1, Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct VarLatencyConfig {
    /// Operand width in bits.
    pub width: u8,
    /// Carry-speculation boundary of the approximate adder.
    pub spec_bits: u8,
    /// Operand stream for the first input.
    pub operands_a: Vec<u64>,
    /// Operand stream for the second input.
    pub operands_b: Vec<u64>,
    /// Delay (logic levels) of the downstream logic `G` that consumes the result.
    pub g_delay: u32,
    /// Area (gate equivalents) of `G`.
    pub g_area: u32,
}

impl Default for VarLatencyConfig {
    fn default() -> Self {
        VarLatencyConfig {
            width: 8,
            spec_bits: 4,
            operands_a: vec![1, 2, 3, 4],
            operands_b: vec![1, 2, 3, 4],
            g_delay: 4,
            g_area: 60,
        }
    }
}

/// Handles into a variable-latency netlist.
#[derive(Debug, Clone)]
pub struct VarLatencyHandles {
    /// The constructed netlist.
    pub netlist: Netlist,
    /// Sink collecting the results.
    pub sink: NodeId,
    /// The early-evaluation multiplexor (speculative variant only).
    pub mux: Option<NodeId>,
    /// The shared module (speculative variant only).
    pub shared: Option<NodeId>,
    /// The monolithic variable-latency unit (stalling variant only).
    pub unit: Option<NodeId>,
}

/// Builds the stalling variable-latency unit of Figure 6(a).
///
/// The unit computes the approximation in one cycle; when the error detector
/// fires it stalls for one extra cycle and delivers the exact result. The
/// error detector feeds the elastic controller directly, which is why the
/// exact adder followed by the controller gates ends up on the critical path
/// of this design (the problem the speculative variant removes).
pub fn variable_latency_stalling(config: &VarLatencyConfig) -> VarLatencyHandles {
    let mut n = Netlist::new("fig6a_stalling_varlatency");
    let src_a = n.add_source("src_a", SourceSpec::list(config.operands_a.clone()));
    let src_b = n.add_source("src_b", SourceSpec::list(config.operands_b.clone()));
    let unit = n.add_var_latency(
        "alu",
        crate::kind::VarLatencySpec {
            exact: Op::RippleAdd { width: config.width },
            approx: Op::ApproxAdd { width: config.width, spec_bits: config.spec_bits },
            error: Op::ApproxAddErr { width: config.width, spec_bits: config.spec_bits },
            inputs: 2,
        },
    );
    let g = n.add_op("g", opaque("G", config.g_delay, config.g_area));
    let eb = n.add_buffer("eb_out", BufferSpec::standard(0));
    let sink = n.add_sink("sink", SinkSpec::always_ready());
    n.connect_named("a", Port::output(src_a, 0), Port::input(unit, 0), config.width)
        .expect("fig6a");
    n.connect_named("b", Port::output(src_b, 0), Port::input(unit, 1), config.width)
        .expect("fig6a");
    n.connect_named("alu_out", Port::output(unit, 0), Port::input(g, 0), config.width + 1)
        .expect("fig6a");
    n.connect_named("g_out", Port::output(g, 0), Port::input(eb, 0), config.width + 1)
        .expect("fig6a");
    n.connect_named("observe", Port::output(eb, 0), Port::input(sink, 0), config.width + 1)
        .expect("fig6a");
    n.validate().expect("fig6a is structurally valid by construction");
    VarLatencyHandles { netlist: n, sink, mux: None, shared: None, unit: Some(unit) }
}

/// Builds the speculative variable-latency unit of Figure 6(b).
///
/// The approximate and exact adders run in parallel; the downstream logic `G`
/// is shared between the approximate-result channel and the exact-result
/// channel (the latter buffered in an initially-empty, zero-backward-latency
/// EB). The controller always predicts the approximate channel; when the
/// error detector fires, the early-evaluation multiplexor stalls and the next
/// cycle replays `G` on the exact result stored in the bubble.
pub fn variable_latency_speculative(config: &VarLatencyConfig) -> VarLatencyHandles {
    let width = config.width;
    let sum_width = width + 1;
    let mut n = Netlist::new("fig6b_speculative_varlatency");
    let src_a = n.add_source("src_a", SourceSpec::list(config.operands_a.clone()));
    let src_b = n.add_source("src_b", SourceSpec::list(config.operands_b.clone()));
    let fork_a = n.add_fork("fork_a", ForkSpec::eager(3));
    let fork_b = n.add_fork("fork_b", ForkSpec::eager(3));
    let approx = n.add_function(
        "f_approx",
        FunctionSpec::with_inputs(Op::ApproxAdd { width, spec_bits: config.spec_bits }, 2),
    );
    let exact = n.add_function("f_exact", FunctionSpec::with_inputs(Op::RippleAdd { width }, 2));
    let err = n.add_function(
        "f_err",
        FunctionSpec::with_inputs(Op::ApproxAddErr { width, spec_bits: config.spec_bits }, 2),
    );
    let exact_eb = n.add_buffer("exact_eb", BufferSpec::zero_backward(0));
    let shared = n.add_shared(
        "g_shared",
        crate::kind::SharedSpec::new(2, opaque("G", config.g_delay, config.g_area))
            .with_scheduler(SchedulerKind::ErrorReplay),
    );
    let mux = n.add_mux("mux", MuxSpec::early(2));
    let eb_out = n.add_buffer("eb_out", BufferSpec::standard(0));
    let sink = n.add_sink("sink", SinkSpec::always_ready());

    n.connect_named("a", Port::output(src_a, 0), Port::input(fork_a, 0), width).expect("fig6b");
    n.connect_named("b", Port::output(src_b, 0), Port::input(fork_b, 0), width).expect("fig6b");
    n.connect(Port::output(fork_a, 0), Port::input(approx, 0), width).expect("fig6b");
    n.connect(Port::output(fork_a, 1), Port::input(exact, 0), width).expect("fig6b");
    n.connect(Port::output(fork_a, 2), Port::input(err, 0), width).expect("fig6b");
    n.connect(Port::output(fork_b, 0), Port::input(approx, 1), width).expect("fig6b");
    n.connect(Port::output(fork_b, 1), Port::input(exact, 1), width).expect("fig6b");
    n.connect(Port::output(fork_b, 2), Port::input(err, 1), width).expect("fig6b");
    n.connect_named("approx_sum", Port::output(approx, 0), Port::input(shared, 0), sum_width)
        .expect("fig6b");
    n.connect_named("exact_sum", Port::output(exact, 0), Port::input(exact_eb, 0), sum_width)
        .expect("fig6b");
    n.connect_named("exact_buffered", Port::output(exact_eb, 0), Port::input(shared, 1), sum_width)
        .expect("fig6b");
    n.connect_named("g_out0", Port::output(shared, 0), Port::input(mux, 1), sum_width)
        .expect("fig6b");
    n.connect_named("g_out1", Port::output(shared, 1), Port::input(mux, 2), sum_width)
        .expect("fig6b");
    n.connect_named("ferr", Port::output(err, 0), Port::input(mux, 0), 1).expect("fig6b");
    n.connect_named("result", Port::output(mux, 0), Port::input(eb_out, 0), sum_width)
        .expect("fig6b");
    n.connect_named("observe", Port::output(eb_out, 0), Port::input(sink, 0), sum_width)
        .expect("fig6b");
    n.validate().expect("fig6b is structurally valid by construction");
    VarLatencyHandles { netlist: n, sink, mux: Some(mux), shared: Some(shared), unit: None }
}

/// Configuration of the resilient-adder experiment (Section 5.2, Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientConfig {
    /// Number of protected data bits (at most 57 so the codeword fits a channel).
    pub data_width: u8,
    /// External operand stream added to the accumulator each cycle.
    pub operands: Vec<u64>,
    /// Per-cycle soft-error masks XORed into the stored codeword (one entry
    /// per cycle, `0` = no upset; typically produced by
    /// `elastic_datapath::workload::soft_error_masks`).
    pub error_masks: Vec<u64>,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig { data_width: 32, operands: vec![1, 2, 3, 4], error_masks: vec![0] }
    }
}

/// Handles into a resilient-accumulator netlist.
#[derive(Debug, Clone)]
pub struct ResilientHandles {
    /// The constructed netlist.
    pub netlist: Netlist,
    /// The accumulator state buffer (holds the encoded running sum).
    pub state: NodeId,
    /// Sink observing the running sum.
    pub sink: NodeId,
    /// The decision multiplexor (protected variants only).
    pub mux: Option<NodeId>,
    /// The speculative shared module (speculative variant only).
    pub shared: Option<NodeId>,
}

fn resilient_common(
    name: &str,
    config: &ResilientConfig,
) -> (Netlist, NodeId, NodeId, NodeId, NodeId, NodeId) {
    let mut n = Netlist::new(name);
    let codeword_width = crate::op::secded_codeword_width(config.data_width);
    let state = n.add_buffer("state", BufferSpec::standard(1));
    let fault = n.add_function("inject_fault", FunctionSpec::with_inputs(Op::Xor, 2));
    let fault_src = n.add_source(
        "fault_src",
        SourceSpec {
            pattern: SourcePattern::Always,
            data: DataStream::List(if config.error_masks.is_empty() {
                vec![0]
            } else {
                config.error_masks.clone()
            }),
            ..SourceSpec::default()
        },
    );
    let operand_src = n.add_source("operand_src", SourceSpec::list(config.operands.clone()));
    let sink = n.add_sink("sink", SinkSpec::always_ready());
    n.connect_named("stored", Port::output(state, 0), Port::input(fault, 0), codeword_width)
        .expect("resilient");
    n.connect_named("upset", Port::output(fault_src, 0), Port::input(fault, 1), codeword_width)
        .expect("resilient");
    (n, state, fault, operand_src, sink, fault_src)
}

/// Builds the unprotected accumulator baseline for Section 5.2: the adder
/// updates the stored value every cycle with no error checking at all.
pub fn resilient_unprotected(config: &ResilientConfig) -> ResilientHandles {
    let width = config.data_width;
    let mut n = Netlist::new("fig7_baseline_unprotected");
    let state = n.add_buffer("state", BufferSpec::standard(1));
    let adder = n.add_function("adder", FunctionSpec::with_inputs(Op::KoggeStoneAdd { width }, 2));
    let mask = n.add_op("wrap", Op::Mask { width });
    let operand_src = n.add_source("operand_src", SourceSpec::list(config.operands.clone()));
    let fork = n.add_fork("fork", ForkSpec::eager(2));
    let sink = n.add_sink("sink", SinkSpec::always_ready());
    n.connect_named("stored", Port::output(state, 0), Port::input(adder, 0), width)
        .expect("fig7 baseline");
    n.connect_named("operand", Port::output(operand_src, 0), Port::input(adder, 1), width)
        .expect("fig7 baseline");
    n.connect_named("sum", Port::output(adder, 0), Port::input(mask, 0), width)
        .expect("fig7 baseline");
    n.connect_named("wrapped", Port::output(mask, 0), Port::input(fork, 0), width)
        .expect("fig7 baseline");
    n.connect_named("writeback", Port::output(fork, 0), Port::input(state, 0), width)
        .expect("fig7 baseline");
    n.connect_named("observe", Port::output(fork, 1), Port::input(sink, 0), width)
        .expect("fig7 baseline");
    n.validate().expect("fig7 baseline is structurally valid by construction");
    ResilientHandles { netlist: n, state, sink, mux: None, shared: None }
}

/// Builds the non-speculative resilient accumulator of Figure 7(a).
///
/// The stored codeword (possibly hit by a soft error) is checked by SECDED;
/// the multiplexor waits for both the raw and the corrected value before the
/// adder may proceed, and the SECDED logic occupies a full pipeline stage
/// (bubbles on the raw/corrected/decision channels). The accumulator loop
/// therefore spans two buffers with a single token: the design pays for
/// resilience with half the throughput of the unprotected baseline.
pub fn resilient_nonspeculative(config: &ResilientConfig) -> ResilientHandles {
    let data_width = config.data_width;
    let codeword_width = crate::op::secded_codeword_width(data_width);
    let (mut n, state, fault, operand_src, sink, _fault_src) =
        resilient_common("fig7a_nonspeculative", config);

    let fork = n.add_fork("check_fork", ForkSpec::eager(3));
    let raw = n.add_op("raw_extract", Op::Mask { width: data_width });
    let corrected = n.add_op("secded_correct", Op::SecdedCorrect { data_width });
    let syndrome = n.add_op("secded_syndrome", Op::SecdedSyndrome { data_width });
    let decision = n.add_op("error_decision", Op::Lut(vec![0, 1, 1]));
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let adder = n.add_function(
        "adder",
        FunctionSpec::with_inputs(Op::KoggeStoneAdd { width: data_width }, 2),
    );
    let mask = n.add_op("wrap", Op::Mask { width: data_width });
    let encode = n.add_op("secded_encode", Op::SecdedEncode { data_width });
    let out_fork = n.add_fork("out_fork", ForkSpec::eager(2));

    n.connect_named("checked", Port::output(fault, 0), Port::input(fork, 0), codeword_width)
        .expect("fig7a");
    n.connect(Port::output(fork, 0), Port::input(raw, 0), codeword_width).expect("fig7a");
    n.connect(Port::output(fork, 1), Port::input(corrected, 0), codeword_width).expect("fig7a");
    n.connect(Port::output(fork, 2), Port::input(syndrome, 0), codeword_width).expect("fig7a");
    let raw_ch = n
        .connect_named("raw_data", Port::output(raw, 0), Port::input(mux, 1), data_width)
        .expect("fig7a");
    let cor_ch = n
        .connect_named(
            "corrected_data",
            Port::output(corrected, 0),
            Port::input(mux, 2),
            data_width,
        )
        .expect("fig7a");
    n.connect_named("syndrome", Port::output(syndrome, 0), Port::input(decision, 0), 2)
        .expect("fig7a");
    let dec_ch = n
        .connect_named("decision", Port::output(decision, 0), Port::input(mux, 0), 1)
        .expect("fig7a");
    n.connect_named("operand_in", Port::output(mux, 0), Port::input(adder, 0), data_width)
        .expect("fig7a");
    n.connect_named("operand", Port::output(operand_src, 0), Port::input(adder, 1), data_width)
        .expect("fig7a");
    n.connect_named("sum", Port::output(adder, 0), Port::input(mask, 0), data_width)
        .expect("fig7a");
    n.connect_named("wrapped", Port::output(mask, 0), Port::input(encode, 0), data_width)
        .expect("fig7a");
    n.connect_named("encoded", Port::output(encode, 0), Port::input(out_fork, 0), codeword_width)
        .expect("fig7a");
    n.connect_named("writeback", Port::output(out_fork, 0), Port::input(state, 0), codeword_width)
        .expect("fig7a");
    n.connect_named("observe", Port::output(out_fork, 1), Port::input(sink, 0), codeword_width)
        .expect("fig7a");

    // The SECDED check occupies a full pipeline stage: bubbles on the three
    // channels entering the multiplexor.
    insert_bubble(&mut n, raw_ch).expect("fig7a");
    insert_bubble(&mut n, cor_ch).expect("fig7a");
    insert_bubble(&mut n, dec_ch).expect("fig7a");

    n.validate().expect("fig7a is structurally valid by construction");
    ResilientHandles { netlist: n, state, sink, mux: Some(mux), shared: None }
}

/// Builds the speculative resilient accumulator of Figure 7(b) by applying
/// the composite [`speculate`] transformation to the single-stage version of
/// Figure 7(a): the adder is retimed through the multiplexor and shared
/// between the raw-data channel (always predicted) and the SECDED-corrected
/// channel, so the addition starts without waiting for the error check.
pub fn resilient_speculative(config: &ResilientConfig) -> ResilientHandles {
    let data_width = config.data_width;
    let codeword_width = crate::op::secded_codeword_width(data_width);
    let (mut n, state, fault, operand_src, sink, _fault_src) =
        resilient_common("fig7b_speculative", config);

    let fork = n.add_fork("check_fork", ForkSpec::eager(3));
    let raw = n.add_op("raw_extract", Op::Mask { width: data_width });
    let corrected = n.add_op("secded_correct", Op::SecdedCorrect { data_width });
    let syndrome = n.add_op("secded_syndrome", Op::SecdedSyndrome { data_width });
    let decision = n.add_op("error_decision", Op::Lut(vec![0, 1, 1]));
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let adder = n.add_function(
        "adder",
        FunctionSpec::with_inputs(Op::KoggeStoneAdd { width: data_width }, 2),
    );
    let mask = n.add_op("wrap", Op::Mask { width: data_width });
    let encode = n.add_op("secded_encode", Op::SecdedEncode { data_width });
    let out_fork = n.add_fork("out_fork", ForkSpec::eager(2));

    n.connect_named("checked", Port::output(fault, 0), Port::input(fork, 0), codeword_width)
        .expect("fig7b");
    n.connect(Port::output(fork, 0), Port::input(raw, 0), codeword_width).expect("fig7b");
    n.connect(Port::output(fork, 1), Port::input(corrected, 0), codeword_width).expect("fig7b");
    n.connect(Port::output(fork, 2), Port::input(syndrome, 0), codeword_width).expect("fig7b");
    n.connect_named("raw_data", Port::output(raw, 0), Port::input(mux, 1), data_width)
        .expect("fig7b");
    n.connect_named("corrected_data", Port::output(corrected, 0), Port::input(mux, 2), data_width)
        .expect("fig7b");
    n.connect_named("syndrome", Port::output(syndrome, 0), Port::input(decision, 0), 2)
        .expect("fig7b");
    n.connect_named("decision", Port::output(decision, 0), Port::input(mux, 0), 1).expect("fig7b");
    n.connect_named("operand_in", Port::output(mux, 0), Port::input(adder, 0), data_width)
        .expect("fig7b");
    n.connect_named("operand", Port::output(operand_src, 0), Port::input(adder, 1), data_width)
        .expect("fig7b");
    n.connect_named("sum", Port::output(adder, 0), Port::input(mask, 0), data_width)
        .expect("fig7b");
    n.connect_named("wrapped", Port::output(mask, 0), Port::input(encode, 0), data_width)
        .expect("fig7b");
    n.connect_named("encoded", Port::output(encode, 0), Port::input(out_fork, 0), codeword_width)
        .expect("fig7b");
    n.connect_named("writeback", Port::output(out_fork, 0), Port::input(state, 0), codeword_width)
        .expect("fig7b");
    n.connect_named("observe", Port::output(out_fork, 1), Port::input(sink, 0), codeword_width)
        .expect("fig7b");
    n.validate().expect("fig7b pre-speculation structure is valid");

    let report = speculate(
        &mut n,
        mux,
        &SpeculateOptions { scheduler: SchedulerKind::ErrorReplay, ..SpeculateOptions::default() },
    )
    .expect("the fig7 accumulator has a select cycle through the syndrome logic");

    ResilientHandles { netlist: n, state, sink, mux: Some(mux), shared: Some(report.shared_module) }
}

/// Builds a deep synthetic pipeline: `src → (inc → buffer) × stages → sink`.
///
/// Not a paper design — the scaling workload of the simulator benchmarks and
/// engine-equivalence tests. With [`BufferSpec::standard`] buffers every
/// stage is registered and the control network settles in one pass; with
/// [`BufferSpec::zero_backward`] buffers and a stalling `backpressure`
/// pattern, stop/kill waves traverse the whole chain combinationally each
/// cycle — the worst case for a naive settle loop.
pub fn deep_pipeline(
    stages: usize,
    buffer: BufferSpec,
    backpressure: crate::kind::BackpressurePattern,
) -> Netlist {
    let mut n = Netlist::new("deep-pipeline");
    let src = n.add_source("src", SourceSpec::always());
    let mut from = Port::output(src, 0);
    for stage in 0..stages {
        let inc = n.add_op(format!("inc{stage}"), Op::Inc);
        let eb = n.add_buffer(format!("eb{stage}"), buffer);
        n.connect(from, Port::input(inc, 0), 8).unwrap();
        n.connect(Port::output(inc, 0), Port::input(eb, 0), 8).unwrap();
        from = Port::output(eb, 0);
    }
    let sink = n.add_sink("sink", SinkSpec { backpressure });
    n.connect(from, Port::input(sink, 0), 8).unwrap();
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_family_builds_and_validates() {
        let config = Fig1Config::default();
        for (handles, buffers, functions) in
            [(fig1a(&config), 1usize, 2usize), (fig1b(&config), 2, 2), (fig1c(&config), 1, 3)]
        {
            handles.netlist.validate().unwrap();
            let histogram = handles.netlist.kind_histogram();
            assert_eq!(histogram.get("buffer"), Some(&buffers), "{}", handles.netlist.name());
            assert_eq!(histogram.get("function"), Some(&functions), "{}", handles.netlist.name());
        }
    }

    #[test]
    fn fig1d_contains_exactly_one_shared_module() {
        let handles = fig1d(&Fig1Config::default());
        handles.netlist.validate().unwrap();
        assert!(handles.shared.is_some());
        assert_eq!(handles.netlist.kind_histogram().get("shared"), Some(&1));
        assert!(handles.netlist.node(handles.mux).unwrap().as_mux().unwrap().early_eval);
    }

    #[test]
    fn paper_loop_speculations_stay_isolation_free() {
        // The retraction-domain analysis must leave both paper loops alone:
        // Figure 1(d)'s cone is cut by the loop EB and Figure 7(b)'s cone
        // cannot stall (one loop token against capacity 2, always-ready
        // observer), so neither design receives an isolation bubble or a
        // commit stage — their cycle ratios are exactly the paper's.
        for netlist in [
            fig1d(&Fig1Config::default()).netlist,
            resilient_speculative(&ResilientConfig::default()).netlist,
        ] {
            let histogram = netlist.kind_histogram();
            assert_eq!(
                histogram.get("commit"),
                None,
                "{}: cyclic speculation must not insert a commit stage",
                netlist.name()
            );
            assert!(
                netlist.live_nodes().all(|n| !n.name.starts_with("eb_on_")),
                "{}: no isolation bubble may be placed",
                netlist.name()
            );
        }
    }

    #[test]
    fn table1_netlist_matches_the_published_streams() {
        let handles = table1();
        handles.netlist.validate().unwrap();
        let shared = handles.netlist.node(handles.shared).unwrap().as_shared().unwrap().clone();
        assert_eq!(shared.users, 2);
        assert_eq!(shared.scheduler, SchedulerKind::Sequence(TABLE1_SCHEDULE.to_vec()));
        assert_eq!(TABLE1_SELECT.len(), 7);
        assert_eq!(TABLE1_VALUES.len(), 7);
    }

    #[test]
    fn variable_latency_variants_build_and_validate() {
        let config = VarLatencyConfig::default();
        let stalling = variable_latency_stalling(&config);
        stalling.netlist.validate().unwrap();
        assert!(stalling.unit.is_some());

        let speculative = variable_latency_speculative(&config);
        speculative.netlist.validate().unwrap();
        assert!(speculative.shared.is_some());
        assert_eq!(speculative.netlist.kind_histogram().get("shared"), Some(&1));
    }

    #[test]
    fn resilient_variants_build_and_validate() {
        let config = ResilientConfig::default();
        let unprotected = resilient_unprotected(&config);
        unprotected.netlist.validate().unwrap();

        let nonspec = resilient_nonspeculative(&config);
        nonspec.netlist.validate().unwrap();
        // The SECDED stage adds three bubbles on top of the state buffer.
        assert_eq!(nonspec.netlist.kind_histogram().get("buffer"), Some(&4));

        let speculative = resilient_speculative(&config);
        speculative.netlist.validate().unwrap();
        assert_eq!(speculative.netlist.kind_histogram().get("shared"), Some(&1));
        assert!(
            speculative
                .netlist
                .node(speculative.mux.unwrap())
                .unwrap()
                .as_mux()
                .unwrap()
                .early_eval
        );
    }

    #[test]
    fn speculative_resilient_design_has_a_select_cycle() {
        // The select cycle is the structural justification for speculation
        // (step 1 of Section 4): syndrome -> decision -> mux -> ... -> state -> syndrome.
        let n = resilient_nonspeculative(&ResilientConfig::default()).netlist;
        let mux = n.find_node("mux").unwrap().id;
        let cycles = crate::transform::find_select_cycles(&n, mux).unwrap();
        assert!(!cycles.is_empty());
    }
}
