//! The elastic netlist: nodes connected by elastic channels.
//!
//! A [`Netlist`] is a directed graph. Nodes are blocks, buffers or
//! environments ([`crate::NodeKind`]); channels connect exactly one output
//! port to exactly one input port and carry both the data word and the SELF
//! handshake `(V+, S+, V-, S-)` — the handshake itself is materialised by the
//! simulator, the netlist only records the structure.

use std::collections::BTreeMap;

use crate::error::{CoreError, Result};
use crate::id::{ChannelId, NodeId, Port, PortDir};
use crate::kind::{
    BufferSpec, CommitSpec, ForkSpec, FunctionSpec, MuxSpec, NodeKind, SharedSpec, SinkSpec,
    SourceSpec, VarLatencySpec,
};
use crate::op::Op;

/// A node of the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Stable identifier of the node.
    pub id: NodeId,
    /// Human-readable instance name (unique within the netlist by construction).
    pub name: String,
    /// Kind and kind-specific configuration.
    pub kind: NodeKind,
}

impl Node {
    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.kind.input_count()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.kind.output_count()
    }

    /// Returns the buffer specification when the node is an elastic buffer.
    pub fn as_buffer(&self) -> Option<&BufferSpec> {
        match &self.kind {
            NodeKind::Buffer(spec) => Some(spec),
            _ => None,
        }
    }

    /// Returns the function specification when the node is a function block.
    pub fn as_function(&self) -> Option<&FunctionSpec> {
        match &self.kind {
            NodeKind::Function(spec) => Some(spec),
            _ => None,
        }
    }

    /// Returns the multiplexor specification when the node is a multiplexor.
    pub fn as_mux(&self) -> Option<&MuxSpec> {
        match &self.kind {
            NodeKind::Mux(spec) => Some(spec),
            _ => None,
        }
    }

    /// Returns the shared-module specification when the node is a shared module.
    pub fn as_shared(&self) -> Option<&SharedSpec> {
        match &self.kind {
            NodeKind::Shared(spec) => Some(spec),
            _ => None,
        }
    }
}

/// A point-to-point elastic channel between an output port and an input port.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Stable identifier of the channel.
    pub id: ChannelId,
    /// Human-readable name (derived from the endpoints unless overridden).
    pub name: String,
    /// Data width in bits (1..=64).
    pub width: u8,
    /// Producing endpoint (always an output port).
    pub from: Port,
    /// Consuming endpoint (always an input port).
    pub to: Port,
}

/// An elastic netlist: a collection of blocks and buffers connected by
/// elastic channels.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Option<Node>>,
    channels: Vec<Option<Channel>>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), nodes: Vec::new(), channels: Vec::new() }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Node management
    // ------------------------------------------------------------------

    /// Adds a node of arbitrary kind and returns its id.
    ///
    /// Instance names are made unique by appending a numeric suffix when a
    /// node with the same name already exists.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        let name = self.unique_name(name.into());
        self.nodes.push(Some(Node { id, name, kind }));
        id
    }

    fn unique_name(&self, base: String) -> String {
        if !self.live_nodes().any(|n| n.name == base) {
            return base;
        }
        let mut suffix = 1usize;
        loop {
            let candidate = format!("{base}_{suffix}");
            if !self.live_nodes().any(|n| n.name == candidate) {
                return candidate;
            }
            suffix += 1;
        }
    }

    /// Adds an elastic buffer.
    pub fn add_buffer(&mut self, name: impl Into<String>, spec: BufferSpec) -> NodeId {
        self.add_node(name, NodeKind::Buffer(spec))
    }

    /// Adds a combinational function block.
    pub fn add_function(&mut self, name: impl Into<String>, spec: FunctionSpec) -> NodeId {
        self.add_node(name, NodeKind::Function(spec))
    }

    /// Adds a function block computing `op` with its natural arity.
    pub fn add_op(&mut self, name: impl Into<String>, op: Op) -> NodeId {
        self.add_function(name, FunctionSpec::new(op))
    }

    /// Adds a multiplexor.
    pub fn add_mux(&mut self, name: impl Into<String>, spec: MuxSpec) -> NodeId {
        self.add_node(name, NodeKind::Mux(spec))
    }

    /// Adds a fork.
    pub fn add_fork(&mut self, name: impl Into<String>, spec: ForkSpec) -> NodeId {
        self.add_node(name, NodeKind::Fork(spec))
    }

    /// Adds a speculative shared module.
    pub fn add_shared(&mut self, name: impl Into<String>, spec: SharedSpec) -> NodeId {
        self.add_node(name, NodeKind::Shared(spec))
    }

    /// Adds an in-order commit stage for a speculative shared module.
    pub fn add_commit(&mut self, name: impl Into<String>, spec: CommitSpec) -> NodeId {
        self.add_node(name, NodeKind::Commit(spec))
    }

    /// Adds a variable-latency unit (stalling implementation).
    pub fn add_var_latency(&mut self, name: impl Into<String>, spec: VarLatencySpec) -> NodeId {
        self.add_node(name, NodeKind::VarLatency(spec))
    }

    /// Adds a source environment.
    pub fn add_source(&mut self, name: impl Into<String>, spec: SourceSpec) -> NodeId {
        self.add_node(name, NodeKind::Source(spec))
    }

    /// Adds a sink environment.
    pub fn add_sink(&mut self, name: impl Into<String>, spec: SinkSpec) -> NodeId {
        self.add_node(name, NodeKind::Sink(spec))
    }

    /// Removes a node. The node must have no incident channels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] when the node does not exist and a
    /// [`CoreError::Precondition`] when channels are still attached.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Node> {
        self.require_node(id)?;
        let attached = self
            .live_channels()
            .filter(|c| c.from.node == id || c.to.node == id)
            .map(|c| c.id.to_string())
            .collect::<Vec<_>>();
        if !attached.is_empty() {
            return Err(CoreError::Precondition {
                transform: "remove_node",
                reason: format!("node {id} still has attached channels: {}", attached.join(", ")),
            });
        }
        Ok(self.nodes[id.index()].take().expect("checked above"))
    }

    /// Looks a node up by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).and_then(|slot| slot.as_ref())
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id.index()).and_then(|slot| slot.as_mut())
    }

    /// Looks a node up by id, failing with [`CoreError::UnknownNode`].
    pub fn require_node(&self, id: NodeId) -> Result<&Node> {
        self.node(id).ok_or(CoreError::UnknownNode(id))
    }

    /// Finds a node by its instance name.
    pub fn find_node(&self, name: &str) -> Option<&Node> {
        self.live_nodes().find(|n| n.name == name)
    }

    /// Iterator over live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter_map(|slot| slot.as_ref())
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes().count()
    }

    // ------------------------------------------------------------------
    // Channel management
    // ------------------------------------------------------------------

    /// Connects an output port to an input port with the given data width.
    ///
    /// # Errors
    ///
    /// Fails when an endpoint node does not exist, a port index is out of
    /// range, the directions are wrong, or either port is already connected.
    pub fn connect(&mut self, from: Port, to: Port, width: u8) -> Result<ChannelId> {
        let name = format!("{from}->{to}");
        self.connect_named(name, from, to, width)
    }

    /// Connects two ports with an explicit channel name.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::connect`].
    pub fn connect_named(
        &mut self,
        name: impl Into<String>,
        from: Port,
        to: Port,
        width: u8,
    ) -> Result<ChannelId> {
        self.check_port(from, PortDir::Output)?;
        self.check_port(to, PortDir::Input)?;
        if self.channel_from(from).is_some() {
            return Err(CoreError::MultiplyConnectedPort {
                node: from.node,
                index: from.index,
                is_input: false,
            });
        }
        if self.channel_into(to).is_some() {
            return Err(CoreError::MultiplyConnectedPort {
                node: to.node,
                index: to.index,
                is_input: true,
            });
        }
        let id = ChannelId::new(self.channels.len() as u32);
        self.channels.push(Some(Channel { id, name: name.into(), width, from, to }));
        Ok(id)
    }

    fn check_port(&self, port: Port, expected: PortDir) -> Result<()> {
        let node = self.require_node(port.node)?;
        if port.dir != expected {
            return Err(CoreError::InvalidPort {
                node: port.node,
                index: port.index,
                reason: format!("expected an {expected} port"),
            });
        }
        let limit = match expected {
            PortDir::Input => node.input_count(),
            PortDir::Output => node.output_count(),
        };
        if port.index >= limit {
            return Err(CoreError::InvalidPort {
                node: port.node,
                index: port.index,
                reason: format!("{} has only {limit} {expected} port(s)", node.kind.kind_name()),
            });
        }
        Ok(())
    }

    /// Removes a channel and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] when the channel does not exist.
    pub fn remove_channel(&mut self, id: ChannelId) -> Result<Channel> {
        match self.channels.get_mut(id.index()).and_then(|slot| slot.take()) {
            Some(channel) => Ok(channel),
            None => Err(CoreError::UnknownChannel(id)),
        }
    }

    /// Looks a channel up by id.
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(id.index()).and_then(|slot| slot.as_ref())
    }

    /// Looks a channel up by id, failing with [`CoreError::UnknownChannel`].
    pub fn require_channel(&self, id: ChannelId) -> Result<&Channel> {
        self.channel(id).ok_or(CoreError::UnknownChannel(id))
    }

    /// Mutable access to a channel.
    pub fn channel_mut(&mut self, id: ChannelId) -> Option<&mut Channel> {
        self.channels.get_mut(id.index()).and_then(|slot| slot.as_mut())
    }

    /// Iterator over live channels.
    pub fn live_channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter().filter_map(|slot| slot.as_ref())
    }

    /// Number of live channels.
    pub fn channel_count(&self) -> usize {
        self.live_channels().count()
    }

    /// The channel driven by an output port, if any.
    pub fn channel_from(&self, port: Port) -> Option<&Channel> {
        self.live_channels().find(|c| c.from == port)
    }

    /// The channel feeding an input port, if any.
    pub fn channel_into(&self, port: Port) -> Option<&Channel> {
        self.live_channels().find(|c| c.to == port)
    }

    /// The channels leaving a node, ordered by output port index.
    pub fn output_channels(&self, node: NodeId) -> Vec<&Channel> {
        let mut out: Vec<&Channel> = self.live_channels().filter(|c| c.from.node == node).collect();
        out.sort_by_key(|c| c.from.index);
        out
    }

    /// The channels entering a node, ordered by input port index.
    pub fn input_channels(&self, node: NodeId) -> Vec<&Channel> {
        let mut inp: Vec<&Channel> = self.live_channels().filter(|c| c.to.node == node).collect();
        inp.sort_by_key(|c| c.to.index);
        inp
    }

    /// Redirects the producing endpoint of an existing channel.
    ///
    /// # Errors
    ///
    /// Fails when the channel or new port is invalid or the new port already
    /// drives another channel.
    pub fn set_channel_source(&mut self, id: ChannelId, from: Port) -> Result<()> {
        self.require_channel(id)?;
        self.check_port(from, PortDir::Output)?;
        if let Some(existing) = self.channel_from(from) {
            if existing.id != id {
                return Err(CoreError::MultiplyConnectedPort {
                    node: from.node,
                    index: from.index,
                    is_input: false,
                });
            }
        }
        let channel = self.channel_mut(id).expect("checked above");
        channel.from = from;
        Ok(())
    }

    /// Redirects the consuming endpoint of an existing channel.
    ///
    /// # Errors
    ///
    /// Fails when the channel or new port is invalid or the new port is
    /// already fed by another channel.
    pub fn set_channel_target(&mut self, id: ChannelId, to: Port) -> Result<()> {
        self.require_channel(id)?;
        self.check_port(to, PortDir::Input)?;
        if let Some(existing) = self.channel_into(to) {
            if existing.id != id {
                return Err(CoreError::MultiplyConnectedPort {
                    node: to.node,
                    index: to.index,
                    is_input: true,
                });
            }
        }
        let channel = self.channel_mut(id).expect("checked above");
        channel.to = to;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Graph queries
    // ------------------------------------------------------------------

    /// Ids of the nodes reachable in one hop downstream of `node`.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        let mut succ: Vec<NodeId> =
            self.live_channels().filter(|c| c.from.node == node).map(|c| c.to.node).collect();
        succ.sort();
        succ.dedup();
        succ
    }

    /// Ids of the nodes reachable in one hop upstream of `node`.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut pred: Vec<NodeId> =
            self.live_channels().filter(|c| c.to.node == node).map(|c| c.from.node).collect();
        pred.sort();
        pred.dedup();
        pred
    }

    /// Number of live nodes per kind name, for quick reports.
    pub fn kind_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut histogram = BTreeMap::new();
        for node in self.live_nodes() {
            *histogram.entry(node.kind.kind_name()).or_insert(0) += 1;
        }
        histogram
    }

    /// Total number of initial tokens stored in the netlist's buffers
    /// (anti-tokens count negatively).
    pub fn total_initial_tokens(&self) -> i64 {
        self.live_nodes()
            .filter_map(|n| n.as_buffer())
            .map(|spec| i64::from(spec.init_tokens))
            .sum()
    }

    /// Runs structural validation, returning all problems found.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] describing every violation (dangling
    /// ports, arity mismatches, malformed buffer specifications, …).
    pub fn validate(&self) -> Result<()> {
        crate::validate::validate(self)
    }

    /// One-line structural summary used by the exploration shell.
    pub fn summary(&self) -> String {
        let histogram = self
            .kind_histogram()
            .into_iter()
            .map(|(kind, count)| format!("{count} {kind}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{}: {} nodes ({histogram}), {} channels, {} initial token(s)",
            self.name,
            self.node_count(),
            self.channel_count(),
            self.total_initial_tokens()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::MuxSpec;

    fn small_netlist() -> (Netlist, NodeId, NodeId, NodeId) {
        let mut n = Netlist::new("unit");
        let src = n.add_source("src", SourceSpec::always());
        let f = n.add_op("f", Op::Inc);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
        (n, src, f, sink)
    }

    #[test]
    fn adding_nodes_assigns_fresh_ids_and_unique_names() {
        let mut n = Netlist::new("t");
        let a = n.add_op("f", Op::Identity);
        let b = n.add_op("f", Op::Identity);
        assert_ne!(a, b);
        let names: Vec<_> = n.live_nodes().map(|x| x.name.clone()).collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn connect_rejects_bad_ports() {
        let mut n = Netlist::new("t");
        let src = n.add_source("src", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        // Wrong direction.
        assert!(n.connect(Port::input(sink, 0), Port::output(src, 0), 8).is_err());
        // Out-of-range index.
        assert!(n.connect(Port::output(src, 1), Port::input(sink, 0), 8).is_err());
        // Good connection.
        assert!(n.connect(Port::output(src, 0), Port::input(sink, 0), 8).is_ok());
        // Ports cannot be connected twice.
        let src2 = n.add_source("src2", SourceSpec::always());
        assert!(matches!(
            n.connect(Port::output(src2, 0), Port::input(sink, 0), 8),
            Err(CoreError::MultiplyConnectedPort { .. })
        ));
    }

    #[test]
    fn channel_lookup_by_port_works() {
        let (n, src, f, _sink) = small_netlist();
        let ch = n.channel_from(Port::output(src, 0)).expect("channel exists");
        assert_eq!(ch.to, Port::input(f, 0));
        assert_eq!(n.input_channels(f).len(), 1);
        assert_eq!(n.output_channels(f).len(), 1);
    }

    #[test]
    fn successors_and_predecessors_are_deduplicated() {
        let (n, src, f, sink) = small_netlist();
        assert_eq!(n.successors(src), vec![f]);
        assert_eq!(n.predecessors(sink), vec![f]);
        assert!(n.predecessors(src).is_empty());
    }

    #[test]
    fn remove_node_requires_detached_channels() {
        let (mut n, _src, f, _sink) = small_netlist();
        assert!(n.remove_node(f).is_err());
        let input: Vec<ChannelId> = n.input_channels(f).iter().map(|c| c.id).collect();
        let output: Vec<ChannelId> = n.output_channels(f).iter().map(|c| c.id).collect();
        for id in input.into_iter().chain(output) {
            n.remove_channel(id).unwrap();
        }
        assert!(n.remove_node(f).is_ok());
        assert!(n.node(f).is_none());
    }

    #[test]
    fn rewiring_channels_checks_occupancy() {
        let mut n = Netlist::new("t");
        let src = n.add_source("src", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let sel = n.add_source("sel", SourceSpec::always());
        let ch = n.connect(Port::output(src, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        // Move the data channel to the second data input.
        n.set_channel_target(ch, Port::input(mux, 2)).unwrap();
        assert_eq!(n.channel(ch).unwrap().to, Port::input(mux, 2));
        // Moving it onto the (occupied) select port must fail.
        assert!(n.set_channel_target(ch, Port::input(mux, 0)).is_err());
    }

    #[test]
    fn histogram_and_summary_report_structure() {
        let (n, ..) = small_netlist();
        let histogram = n.kind_histogram();
        assert_eq!(histogram.get("source"), Some(&1));
        assert_eq!(histogram.get("function"), Some(&1));
        assert_eq!(histogram.get("sink"), Some(&1));
        let summary = n.summary();
        assert!(summary.contains("3 nodes"));
        assert!(summary.contains("2 channels"));
    }

    #[test]
    fn total_initial_tokens_counts_anti_tokens_negatively() {
        let mut n = Netlist::new("t");
        n.add_buffer("eb1", BufferSpec::standard(1));
        n.add_buffer("eb2", BufferSpec::standard(-1));
        n.add_buffer("eb3", BufferSpec::bubble());
        assert_eq!(n.total_initial_tokens(), 0);
    }
}
