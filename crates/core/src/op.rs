//! Combinational operations performed by function blocks and shared modules.
//!
//! The netlist model is independent of *how* an operation is evaluated; the
//! `elastic-datapath` crate provides bit-accurate evaluation and the
//! `elastic-analysis` crate provides gate-equivalent area and logic-level
//! delay figures. Here an [`Op`] is only a description.

/// A combinational operation computed by a function block.
///
/// Data on elastic channels is modelled as `u64` words; operations narrower
/// than 64 bits mask their result to the channel width. Multi-operand
/// datapaths (for example the SECDED-protected adder of the paper's Section
/// 5.2) use function blocks with several input ports whose port order matches
/// the operand order documented on each variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[derive(Default)]
pub enum Op {
    /// Pass the single input through unchanged.
    #[default]
    Identity,
    /// Ignore all inputs and produce a constant.
    Const(u64),
    /// Bitwise complement of the single input.
    Not,
    /// Two's-complement negation of the single input.
    Neg,
    /// Sum of all inputs (wrapping).
    Add,
    /// `input0 - input1` (wrapping).
    Sub,
    /// Bitwise AND of all inputs.
    And,
    /// Bitwise OR of all inputs.
    Or,
    /// Bitwise XOR of all inputs.
    Xor,
    /// `input0 << (input1 & 63)`.
    Shl,
    /// `input0 >> (input1 & 63)`.
    Shr,
    /// `input0 + 1` (wrapping).
    Inc,
    /// `input0 - 1` (wrapping).
    Dec,
    /// `1` if `input0 == input1`, else `0`.
    Eq,
    /// `1` if `input0 != input1`, else `0`.
    Ne,
    /// `1` if `input0 < input1` (unsigned), else `0`.
    Lt,
    /// The 8-bit ALU used by the variable-latency experiment (Section 5.1).
    ///
    /// `input0` is the opcode (see `elastic_datapath::alu::AluOpcode`),
    /// `input1` and `input2` are the 8-bit operands.
    Alu8,
    /// Exact ripple-carry adder of the given width: `input0 + input1`.
    RippleAdd {
        /// Operand width in bits.
        width: u8,
    },
    /// Exact Kogge-Stone prefix adder of the given width: `input0 + input1`.
    ///
    /// Functionally identical to [`Op::RippleAdd`]; the two differ only in
    /// the delay/area figures used by the cost model, mirroring the 64-bit
    /// prefix adder of the paper's Section 5.2.
    KoggeStoneAdd {
        /// Operand width in bits.
        width: u8,
    },
    /// Approximate adder that speculates the carry across a boundary.
    ///
    /// The adder splits the operands at bit `spec_bits` and assumes the carry
    /// into the upper part is zero, shortening the critical path. It is the
    /// `F_approx` block of the variable-latency unit (Figure 6).
    ApproxAdd {
        /// Operand width in bits.
        width: u8,
        /// Carry-speculation boundary (bits below it are added exactly).
        spec_bits: u8,
    },
    /// Error detector paired with [`Op::ApproxAdd`]: produces `1` when the
    /// approximate result differs from the exact sum (the `F_err` block of
    /// Figure 6).
    ApproxAddErr {
        /// Operand width in bits.
        width: u8,
        /// Carry-speculation boundary used by the paired approximate adder.
        spec_bits: u8,
    },
    /// Hamming SECDED encoder: `data_width` data bits in, codeword out.
    ///
    /// The paper uses the classic (72,64) code; because elastic channels in
    /// this model carry `u64` words, netlists use data widths up to 57 bits
    /// (57 data + 6 Hamming + 1 overall parity = 64-bit codeword). The full
    /// (72,64) code is implemented and tested in `elastic-datapath`.
    SecdedEncode {
        /// Number of protected data bits (at most 57).
        data_width: u8,
    },
    /// Hamming SECDED decoder/corrector: codeword in, corrected data out
    /// (double errors are reported by [`Op::SecdedSyndrome`]).
    SecdedCorrect {
        /// Number of protected data bits (at most 57).
        data_width: u8,
    },
    /// SECDED syndrome classifier: codeword in, `0` = no error,
    /// `1` = corrected single error, `2` = detected double error.
    SecdedSyndrome {
        /// Number of protected data bits (at most 57).
        data_width: u8,
    },
    /// Select a single bit of the input: `(input0 >> bit) & 1`.
    BitSelect {
        /// Bit position to extract.
        bit: u8,
    },
    /// Mask the input to the lowest `width` bits.
    Mask {
        /// Number of low-order bits to keep.
        width: u8,
    },
    /// Table lookup: `table[input0 % table.len()]`.
    Lut(Vec<u64>),
    /// An opaque block with externally supplied timing/area figures.
    ///
    /// Opaque blocks evaluate as the identity on their first input; they
    /// exist so that exploration can reason about blocks whose function is
    /// irrelevant to the control experiments (the paper's `F` and `G`).
    Opaque {
        /// Human-readable block name.
        name: String,
        /// Combinational delay in logic levels (unit-delay model).
        delay_levels: u32,
        /// Area in gate equivalents.
        area_ge: u32,
    },
}

impl Op {
    /// Short lower-case mnemonic used in reports, traces and emitted HDL.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Identity => "id".into(),
            Op::Const(value) => format!("const{value}"),
            Op::Not => "not".into(),
            Op::Neg => "neg".into(),
            Op::Add => "add".into(),
            Op::Sub => "sub".into(),
            Op::And => "and".into(),
            Op::Or => "or".into(),
            Op::Xor => "xor".into(),
            Op::Shl => "shl".into(),
            Op::Shr => "shr".into(),
            Op::Inc => "inc".into(),
            Op::Dec => "dec".into(),
            Op::Eq => "eq".into(),
            Op::Ne => "ne".into(),
            Op::Lt => "lt".into(),
            Op::Alu8 => "alu8".into(),
            Op::RippleAdd { width } => format!("rca{width}"),
            Op::KoggeStoneAdd { width } => format!("ksa{width}"),
            Op::ApproxAdd { width, spec_bits } => format!("axa{width}_{spec_bits}"),
            Op::ApproxAddErr { width, spec_bits } => format!("axe{width}_{spec_bits}"),
            Op::SecdedEncode { data_width } => format!("secded_enc{data_width}"),
            Op::SecdedCorrect { data_width } => format!("secded_cor{data_width}"),
            Op::SecdedSyndrome { data_width } => format!("secded_syn{data_width}"),
            Op::BitSelect { bit } => format!("bit{bit}"),
            Op::Mask { width } => format!("mask{width}"),
            Op::Lut(_) => "lut".into(),
            Op::Opaque { name, .. } => name.to_ascii_lowercase(),
        }
    }

    /// Number of input operands the operation expects, or `None` when any
    /// positive arity is acceptable (e.g. [`Op::Add`] sums all its inputs).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Identity | Op::Not | Op::Neg | Op::Inc | Op::Dec => Some(1),
            Op::Const(_) => None,
            Op::Add | Op::And | Op::Or | Op::Xor => None,
            Op::Sub | Op::Shl | Op::Shr | Op::Eq | Op::Ne | Op::Lt => Some(2),
            Op::Alu8 => Some(3),
            Op::RippleAdd { .. }
            | Op::KoggeStoneAdd { .. }
            | Op::ApproxAdd { .. }
            | Op::ApproxAddErr { .. } => Some(2),
            Op::SecdedEncode { .. } | Op::SecdedCorrect { .. } | Op::SecdedSyndrome { .. } => {
                Some(1)
            }
            Op::BitSelect { .. } | Op::Mask { .. } | Op::Lut(_) => Some(1),
            Op::Opaque { .. } => None,
        }
    }

    /// Natural output width of the operation in bits, when it has one.
    ///
    /// `None` means the output width follows the widest input / channel
    /// declaration (e.g. [`Op::Identity`]).
    pub fn output_width(&self) -> Option<u8> {
        match self {
            Op::Eq | Op::Ne | Op::Lt | Op::BitSelect { .. } | Op::ApproxAddErr { .. } => Some(1),
            Op::Alu8 => Some(8),
            Op::RippleAdd { width } | Op::KoggeStoneAdd { width } | Op::ApproxAdd { width, .. } => {
                Some(width.saturating_add(1).min(64))
            }
            Op::SecdedEncode { data_width } => Some(secded_codeword_width(*data_width)),
            Op::SecdedCorrect { data_width } => Some(*data_width),
            Op::SecdedSyndrome { .. } => Some(2),
            Op::Mask { width } => Some(*width),
            _ => None,
        }
    }

    /// `true` when the operation is a pure identity on its first input and
    /// therefore transparent to datapath equivalence checks.
    pub fn is_identity_like(&self) -> bool {
        matches!(self, Op::Identity | Op::Opaque { .. })
    }

    /// `true` when all-zero operands provably produce a zero result.
    ///
    /// This is the static side condition that makes elastic-buffer retiming
    /// sound for buffers holding *data-carrying* initial tokens: moving a
    /// buffer across a block replaces `op(init_value, …)` in the output
    /// stream by the raw `init_value`, which only preserves transfer
    /// equivalence when the two coincide. The transform layer restricts
    /// token-carrying retiming to `init_value == 0` and zero-preserving
    /// blocks (found by the `elastic-gen` differential fuzzer, which caught
    /// `retime_forward` emitting a buffer's raw init value through an
    /// arbitrary block). The classification is conservative: operations
    /// whose zero behaviour is not locally obvious answer `false`.
    pub fn preserves_zero(&self) -> bool {
        match self {
            Op::Identity
            | Op::Neg
            | Op::Add
            | Op::Sub
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::Ne
            | Op::Lt
            | Op::RippleAdd { .. }
            | Op::KoggeStoneAdd { .. }
            | Op::ApproxAdd { .. }
            | Op::ApproxAddErr { .. }
            | Op::BitSelect { .. }
            | Op::Mask { .. }
            | Op::Opaque { .. } => true,
            Op::Const(value) => *value == 0,
            Op::Lut(table) => table.first().copied() == Some(0),
            // Not(0) = !0, Inc(0) = 1, Dec(0) wraps, Eq(0,0) = 1; SECDED and
            // ALU zero behaviour is not locally obvious — stay conservative.
            _ => false,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Width in bits of a Hamming SECDED codeword protecting `data_width` data
/// bits (Hamming parity bits plus one overall parity bit).
///
/// ```
/// assert_eq!(elastic_core::op::secded_codeword_width(57), 64);
/// assert_eq!(elastic_core::op::secded_codeword_width(32), 39);
/// ```
pub fn secded_codeword_width(data_width: u8) -> u8 {
    let mut parity = 0u8;
    while (1u64 << parity) < u64::from(data_width) + u64::from(parity) + 1 {
        parity += 1;
    }
    data_width + parity + 1
}

/// Convenience constructor for opaque blocks with a delay/area budget.
///
/// ```
/// use elastic_core::op::{opaque, Op};
/// let f = opaque("F", 8, 120);
/// assert_eq!(f.mnemonic(), "f");
/// assert!(matches!(f, Op::Opaque { delay_levels: 8, .. }));
/// ```
pub fn opaque(name: &str, delay_levels: u32, area_ge: u32) -> Op {
    Op::Opaque { name: name.to_string(), delay_levels, area_ge }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_lowercase_and_nonempty() {
        let ops = vec![
            Op::Identity,
            Op::Const(5),
            Op::Add,
            Op::Alu8,
            Op::RippleAdd { width: 8 },
            Op::KoggeStoneAdd { width: 64 },
            Op::ApproxAdd { width: 8, spec_bits: 4 },
            Op::ApproxAddErr { width: 8, spec_bits: 4 },
            Op::SecdedEncode { data_width: 57 },
            Op::SecdedCorrect { data_width: 57 },
            Op::SecdedSyndrome { data_width: 32 },
            Op::Lut(vec![1, 2, 3]),
            opaque("G", 4, 40),
        ];
        for op in ops {
            let m = op.mnemonic();
            assert!(!m.is_empty());
            assert_eq!(m, m.to_ascii_lowercase());
        }
    }

    #[test]
    fn arity_matches_documented_operand_counts() {
        assert_eq!(Op::Identity.arity(), Some(1));
        assert_eq!(Op::Sub.arity(), Some(2));
        assert_eq!(Op::Alu8.arity(), Some(3));
        assert_eq!(Op::Add.arity(), None);
        assert_eq!(Op::SecdedCorrect { data_width: 57 }.arity(), Some(1));
    }

    #[test]
    fn secded_codeword_widths_match_hamming_bounds() {
        assert_eq!(secded_codeword_width(4), 8);
        assert_eq!(secded_codeword_width(8), 13);
        assert_eq!(secded_codeword_width(32), 39);
        assert_eq!(secded_codeword_width(57), 64);
    }

    #[test]
    fn comparison_ops_are_single_bit() {
        assert_eq!(Op::Eq.output_width(), Some(1));
        assert_eq!(Op::Ne.output_width(), Some(1));
        assert_eq!(Op::ApproxAddErr { width: 8, spec_bits: 4 }.output_width(), Some(1));
    }

    #[test]
    fn opaque_blocks_are_identity_like() {
        assert!(opaque("F", 3, 10).is_identity_like());
        assert!(Op::Identity.is_identity_like());
        assert!(!Op::Add.is_identity_like());
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Op::default(), Op::Identity);
    }
}
