//! Abstract scheduler interface for speculative shared modules.
//!
//! A scheduler predicts, at every clock cycle, which user channel may use the
//! shared resource (Section 4.1.1 of the paper). The prediction is a
//! registered value: the decision visible during cycle `t` was computed from
//! information available up to the end of cycle `t - 1`. For correctness a
//! scheduler must detect and correct all mispredictions and must not starve
//! any channel — formalised as the *leads-to* property
//! `G (V+_in_i  =>  F (V-_out_i  \/  (sel = i /\ S+_out_i)))`.
//!
//! Concrete prediction policies live in the `elastic-predict` crate; the
//! simulator additionally enforces the leads-to property through the
//! `starvation_limit` of [`crate::SharedSpec`], so even an adversarial
//! scheduler cannot deadlock a well-formed netlist.

use std::fmt;

/// End-of-cycle observation handed to a [`Scheduler`] so it can update its
/// prediction for the next cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SharedFeedback {
    /// Clock cycle that just completed.
    pub cycle: u64,
    /// The prediction that was in force during this cycle.
    pub predicted: usize,
    /// `V+` of each user's (first) input channel during the cycle: the users
    /// that had a token waiting to be served.
    pub input_valid: Vec<bool>,
    /// `true` for users whose waiting token was cancelled by an anti-token
    /// during the cycle (the consumer did not need it).
    pub input_killed: Vec<bool>,
    /// `true` for users whose output channel completed a forward transfer
    /// during the cycle (the consumer accepted the speculated result).
    pub output_transfer: Vec<bool>,
    /// `true` for users whose output channel carried a valid token that the
    /// consumer *stopped* (a retry — for the predicted user this signals a
    /// misprediction, Section 4).
    pub output_retry: Vec<bool>,
    /// `true` for users whose output channel received an anti-token from the
    /// consumer during the cycle (their pending result is not needed).
    pub output_killed: Vec<bool>,
    /// The user channel the consumer actually required, when that is
    /// observable (i.e. when some output channel transferred this cycle).
    pub resolved: Option<usize>,
}

impl SharedFeedback {
    /// Creates an empty feedback record for a module with `users` channels.
    pub fn new(users: usize) -> Self {
        SharedFeedback {
            cycle: 0,
            predicted: 0,
            input_valid: vec![false; users],
            input_killed: vec![false; users],
            output_transfer: vec![false; users],
            output_retry: vec![false; users],
            output_killed: vec![false; users],
            resolved: None,
        }
    }

    /// Number of user channels described by this feedback record.
    pub fn users(&self) -> usize {
        self.input_valid.len()
    }

    /// `true` when the prediction in force during the cycle turned out wrong:
    /// the predicted output was stopped by the consumer or its token was
    /// killed while another user was required.
    pub fn mispredicted(&self) -> bool {
        if self.output_retry.get(self.predicted).copied().unwrap_or(false) {
            return true;
        }
        match self.resolved {
            Some(resolved) => resolved != self.predicted,
            None => self.output_killed.get(self.predicted).copied().unwrap_or(false),
        }
    }
}

/// A prediction policy for a speculative shared module.
///
/// Implementations must be deterministic given the feedback sequence so that
/// simulations are reproducible. The contract is:
///
/// * [`Scheduler::prediction`] returns the user channel allowed to use the
///   shared unit during the *current* cycle and must stay constant within a
///   cycle;
/// * [`Scheduler::tick`] is called exactly once per simulated cycle, after
///   the combinational phase has settled, with the observations of that
///   cycle; the next call to `prediction` reflects the update;
/// * [`Scheduler::reset`] restores the initial state.
pub trait Scheduler: fmt::Debug + Send {
    /// The user channel predicted to use the shared unit this cycle.
    fn prediction(&self) -> usize;

    /// Consumes the end-of-cycle feedback and updates the internal state.
    fn tick(&mut self, feedback: &SharedFeedback);

    /// Restores the scheduler to its initial state.
    fn reset(&mut self);

    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// The trivial scheduler: always predict the same user channel.
///
/// This is sufficient for the "always predict no error" policies of the
/// variable-latency (Section 5.1) and SECDED (Section 5.2) experiments when
/// combined with the controller's built-in misprediction recovery; richer
/// policies live in `elastic-predict`.
#[derive(Debug, Clone, Default)]
pub struct StaticScheduler {
    channel: usize,
}

impl StaticScheduler {
    /// Always predict `channel`.
    pub fn new(channel: usize) -> Self {
        StaticScheduler { channel }
    }
}

impl Scheduler for StaticScheduler {
    fn prediction(&self) -> usize {
        self.channel
    }

    fn tick(&mut self, _feedback: &SharedFeedback) {}

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_scheduler_never_changes_its_mind() {
        let mut s = StaticScheduler::new(1);
        assert_eq!(s.prediction(), 1);
        let mut fb = SharedFeedback::new(2);
        fb.output_retry[1] = true;
        s.tick(&fb);
        assert_eq!(s.prediction(), 1);
        s.reset();
        assert_eq!(s.prediction(), 1);
    }

    #[test]
    fn feedback_detects_retry_misprediction() {
        let mut fb = SharedFeedback::new(2);
        fb.predicted = 0;
        fb.output_retry[0] = true;
        assert!(fb.mispredicted());
    }

    #[test]
    fn feedback_detects_resolved_misprediction() {
        let mut fb = SharedFeedback::new(2);
        fb.predicted = 0;
        fb.resolved = Some(1);
        assert!(fb.mispredicted());
        fb.resolved = Some(0);
        assert!(!fb.mispredicted());
    }

    #[test]
    fn feedback_without_signals_is_not_a_misprediction() {
        let fb = SharedFeedback::new(2);
        assert!(!fb.mispredicted());
    }

    #[test]
    fn feedback_kill_of_predicted_counts_as_misprediction_when_unresolved() {
        let mut fb = SharedFeedback::new(2);
        fb.predicted = 1;
        fb.output_killed[1] = true;
        assert!(fb.mispredicted());
    }
}
