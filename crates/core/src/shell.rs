//! A scriptable exploration shell over the transformation engine.
//!
//! Section 5 of the paper describes an interactive framework in which the
//! user applies correct-by-construction transformations "in the form of
//! command scripts within an interactive shell", visualises the result and
//! can undo/redo at any point. [`ExplorationShell`] reproduces that workflow:
//! it wraps a [`Transformer`] and executes small textual commands, one per
//! line, returning a human-readable response for each.
//!
//! ```
//! use elastic_core::library::{fig1a, Fig1Config};
//! use elastic_core::shell::ExplorationShell;
//!
//! let mut shell = ExplorationShell::new(fig1a(&Fig1Config::default()).netlist);
//! // Turn Figure 1(a) into Figure 1(d), then print a structural summary.
//! let transcript = shell.run_script("
//!     speculate mux
//!     summary
//! ").unwrap();
//! assert!(transcript.iter().any(|line| line.contains("shared")));
//! ```

use crate::error::{CoreError, Result};
use crate::id::NodeId;
use crate::kind::SchedulerKind;
use crate::netlist::Netlist;
use crate::transform::{self, ShareOptions, SpeculateOptions, Transformer};

/// An interactive/scriptable session applying transformations to a netlist.
#[derive(Debug, Clone)]
pub struct ExplorationShell {
    transformer: Transformer,
}

impl ExplorationShell {
    /// Starts a session on the given netlist.
    pub fn new(netlist: Netlist) -> Self {
        ExplorationShell { transformer: Transformer::new(netlist) }
    }

    /// The current state of the design.
    pub fn netlist(&self) -> &Netlist {
        self.transformer.netlist()
    }

    /// Consumes the shell and returns the current design.
    pub fn into_netlist(self) -> Netlist {
        self.transformer.into_netlist()
    }

    /// Executes a multi-line script. Empty lines and lines starting with `#`
    /// are ignored. Returns one response line per executed command.
    ///
    /// # Errors
    ///
    /// Stops at the first failing command and returns its error; commands
    /// executed before the failure remain applied (mirroring an interactive
    /// session — use `undo` to roll back).
    pub fn run_script(&mut self, script: &str) -> Result<Vec<String>> {
        let mut responses = Vec::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            responses.push(self.run_command(line)?);
        }
        Ok(responses)
    }

    /// Executes a single command and returns its response line.
    ///
    /// Supported commands:
    ///
    /// | command | effect |
    /// |---|---|
    /// | `summary` | one-line structural summary |
    /// | `nodes` | list nodes with kinds |
    /// | `channels` | list channels with endpoints |
    /// | `validate` | run structural validation |
    /// | `history` | list applied transformations |
    /// | `insert-bubble <channel>` | bubble insertion on a named channel |
    /// | `remove-buffer <node>` | remove an empty buffer |
    /// | `split-buffer <node>` | apply the `0 = 1 − 1` identity |
    /// | `retime-forward <node>` / `retime-backward <node>` | EB retiming |
    /// | `early-eval <mux>` | enable early evaluation |
    /// | `shannon <mux>` | Shannon decomposition |
    /// | `share <mux> [scheduler]` | share the duplicated blocks |
    /// | `speculate <mux> [scheduler]` | the composite speculation pass |
    /// | `zero-backward <buffer>` | convert to the `Lb = 0` buffer of Fig. 5 |
    /// | `undo` / `redo` | history navigation |
    ///
    /// Scheduler names: `static0`, `static1`, `round-robin`, `last-taken`,
    /// `two-bit`, `error-replay`, `confidence`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shell`] for unknown commands or bad arguments and
    /// propagates transformation errors unchanged.
    pub fn run_command(&mut self, command: &str) -> Result<String> {
        let mut parts = command.split_whitespace();
        let verb = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        match verb {
            "summary" => Ok(self.transformer.netlist().summary()),
            "nodes" => {
                let mut lines: Vec<String> = self
                    .transformer
                    .netlist()
                    .live_nodes()
                    .map(|n| format!("{} {} [{}]", n.id, n.name, n.kind.kind_name()))
                    .collect();
                lines.sort();
                Ok(lines.join("\n"))
            }
            "channels" => {
                let mut lines: Vec<String> = self
                    .transformer
                    .netlist()
                    .live_channels()
                    .map(|c| {
                        format!("{} {} {} -> {} ({} bits)", c.id, c.name, c.from, c.to, c.width)
                    })
                    .collect();
                lines.sort();
                Ok(lines.join("\n"))
            }
            "validate" => match self.transformer.netlist().validate() {
                Ok(()) => Ok("netlist is structurally valid".to_string()),
                Err(error) => Ok(format!("validation failed: {error}")),
            },
            "history" => {
                if self.transformer.history().is_empty() {
                    Ok("(no transformations applied)".to_string())
                } else {
                    Ok(self
                        .transformer
                        .history()
                        .iter()
                        .enumerate()
                        .map(|(i, entry)| format!("{:>3}. {}", i + 1, entry.description))
                        .collect::<Vec<_>>()
                        .join("\n"))
                }
            }
            "undo" => {
                let entry = self.transformer.undo()?;
                Ok(format!("undone: {}", entry.description))
            }
            "redo" => {
                let entry = self.transformer.redo()?;
                Ok(format!("redone: {}", entry.description))
            }
            "insert-bubble" => {
                let channel = self.channel_by_name(command, args.first().copied())?;
                let buffer = self.transformer.apply(format!("insert-bubble {}", args[0]), |n| {
                    transform::insert_bubble(n, channel)
                })?;
                Ok(format!("inserted bubble {buffer}"))
            }
            "remove-buffer" => {
                let node = self.node_by_name(command, args.first().copied())?;
                self.transformer.apply(format!("remove-buffer {}", args[0]), |n| {
                    transform::remove_buffer(n, node)
                })?;
                Ok(format!("removed buffer {node}"))
            }
            "split-buffer" => {
                let node = self.node_by_name(command, args.first().copied())?;
                let (token, anti) =
                    self.transformer.apply(format!("split-buffer {}", args[0]), |n| {
                        transform::split_empty_buffer(n, node)
                    })?;
                Ok(format!("split into token buffer {token} and anti-token buffer {anti}"))
            }
            "retime-forward" => {
                let node = self.node_by_name(command, args.first().copied())?;
                let buffer =
                    self.transformer.apply(format!("retime-forward {}", args[0]), |n| {
                        transform::retime_forward(n, node)
                    })?;
                Ok(format!("retimed buffers forward into {buffer}"))
            }
            "retime-backward" => {
                let node = self.node_by_name(command, args.first().copied())?;
                let buffers =
                    self.transformer.apply(format!("retime-backward {}", args[0]), |n| {
                        transform::retime_backward(n, node)
                    })?;
                Ok(format!("retimed buffer backward into {} input buffer(s)", buffers.len()))
            }
            "early-eval" => {
                let node = self.node_by_name(command, args.first().copied())?;
                self.transformer.apply(format!("early-eval {}", args[0]), |n| {
                    transform::enable_early_evaluation(n, node)
                })?;
                Ok(format!("enabled early evaluation on {node}"))
            }
            "shannon" => {
                let node = self.node_by_name(command, args.first().copied())?;
                let report = self.transformer.apply(format!("shannon {}", args[0]), |n| {
                    transform::shannon_decompose(n, node)
                })?;
                Ok(format!("duplicated block onto {} mux input(s)", report.copies.len()))
            }
            "share" => {
                let node = self.node_by_name(command, args.first().copied())?;
                let scheduler = parse_scheduler(command, args.get(1).copied())?;
                let options = ShareOptions { scheduler, ..ShareOptions::default() };
                let report = self.transformer.apply(format!("share {}", args[0]), |n| {
                    transform::share_mux_inputs(n, node, &options)
                })?;
                Ok(format!("created shared module {}", report.shared))
            }
            "speculate" => {
                let node = self.node_by_name(command, args.first().copied())?;
                let scheduler = parse_scheduler(command, args.get(1).copied())?;
                let options = SpeculateOptions { scheduler, ..SpeculateOptions::default() };
                let report = self.transformer.apply(format!("speculate {}", args[0]), |n| {
                    transform::speculate(n, node, &options)
                })?;
                Ok(format!(
                    "speculation applied: shared module {} feeds mux {}",
                    report.shared_module, report.mux
                ))
            }
            "zero-backward" => {
                let node = self.node_by_name(command, args.first().copied())?;
                self.transformer.apply(format!("zero-backward {}", args[0]), |n| {
                    transform::make_zero_backward(n, node).map(|_| ())
                })?;
                Ok(format!("converted {node} to the Lb=0 buffer"))
            }
            other => Err(CoreError::Shell {
                command: command.to_string(),
                reason: format!("unknown command `{other}`"),
            }),
        }
    }

    fn node_by_name(&self, command: &str, name: Option<&str>) -> Result<NodeId> {
        let name = name.ok_or_else(|| CoreError::Shell {
            command: command.to_string(),
            reason: "missing node name argument".into(),
        })?;
        self.transformer.netlist().find_node(name).map(|node| node.id).ok_or_else(|| {
            CoreError::Shell {
                command: command.to_string(),
                reason: format!("no node named `{name}`"),
            }
        })
    }

    fn channel_by_name(&self, command: &str, name: Option<&str>) -> Result<crate::ChannelId> {
        let name = name.ok_or_else(|| CoreError::Shell {
            command: command.to_string(),
            reason: "missing channel name argument".into(),
        })?;
        self.transformer
            .netlist()
            .live_channels()
            .find(|c| c.name == name)
            .map(|c| c.id)
            .ok_or_else(|| CoreError::Shell {
                command: command.to_string(),
                reason: format!("no channel named `{name}`"),
            })
    }
}

fn parse_scheduler(command: &str, name: Option<&str>) -> Result<SchedulerKind> {
    match name {
        None => Ok(SchedulerKind::default()),
        Some("static0") => Ok(SchedulerKind::Static(0)),
        Some("static1") => Ok(SchedulerKind::Static(1)),
        Some("round-robin") => Ok(SchedulerKind::RoundRobin),
        Some("last-taken") => Ok(SchedulerKind::LastTaken),
        Some("two-bit") => Ok(SchedulerKind::TwoBit),
        Some("error-replay") => Ok(SchedulerKind::ErrorReplay),
        Some("confidence") => Ok(SchedulerKind::Confidence { max_confidence: 2 }),
        Some(other) => Err(CoreError::Shell {
            command: command.to_string(),
            reason: format!("unknown scheduler `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{fig1a, Fig1Config};

    fn shell() -> ExplorationShell {
        ExplorationShell::new(fig1a(&Fig1Config::default()).netlist)
    }

    #[test]
    fn summary_nodes_channels_and_validate_report() {
        let mut shell = shell();
        assert!(shell.run_command("summary").unwrap().contains("nodes"));
        assert!(shell.run_command("nodes").unwrap().contains("mux"));
        assert!(shell.run_command("channels").unwrap().contains("select"));
        assert!(shell.run_command("validate").unwrap().contains("valid"));
    }

    #[test]
    fn speculate_command_reproduces_fig1d() {
        let mut shell = shell();
        let response = shell.run_command("speculate mux last-taken").unwrap();
        assert!(response.contains("shared module"));
        assert_eq!(shell.netlist().kind_histogram().get("shared"), Some(&1));
    }

    #[test]
    fn step_by_step_script_matches_composite_speculation() {
        let mut step_by_step = shell();
        step_by_step
            .run_script(
                "
                # the paper's four-step recipe
                shannon mux
                early-eval mux
                share mux last-taken
                ",
            )
            .unwrap();
        let mut composite = shell();
        composite.run_command("speculate mux last-taken").unwrap();
        assert_eq!(step_by_step.netlist().kind_histogram(), composite.netlist().kind_histogram());
    }

    #[test]
    fn undo_and_redo_commands_work() {
        let mut shell = shell();
        let before = shell.netlist().clone();
        shell.run_command("insert-bubble mux_out").unwrap();
        assert_ne!(shell.netlist(), &before);
        shell.run_command("undo").unwrap();
        assert_eq!(shell.netlist(), &before);
        shell.run_command("redo").unwrap();
        assert_ne!(shell.netlist(), &before);
        assert!(shell.run_command("history").unwrap().contains("insert-bubble"));
    }

    #[test]
    fn unknown_commands_and_bad_arguments_are_rejected() {
        let mut shell = shell();
        assert!(matches!(shell.run_command("frobnicate"), Err(CoreError::Shell { .. })));
        assert!(matches!(shell.run_command("speculate"), Err(CoreError::Shell { .. })));
        assert!(matches!(shell.run_command("speculate nosuchnode"), Err(CoreError::Shell { .. })));
        assert!(matches!(
            shell.run_command("share mux bogus-scheduler"),
            Err(CoreError::Shell { .. })
        ));
        assert!(matches!(
            shell.run_command("insert-bubble nosuchchannel"),
            Err(CoreError::Shell { .. })
        ));
    }

    #[test]
    fn scripts_skip_comments_and_blank_lines() {
        let mut shell = shell();
        let responses = shell
            .run_script(
                "
                # a comment

                summary
                ",
            )
            .unwrap();
        assert_eq!(responses.len(), 1);
    }
}
