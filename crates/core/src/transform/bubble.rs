//! Bubble insertion / removal and the `0 = 1 − 1` buffer identity.
//!
//! In elastic systems it is always possible to insert or remove an *empty*
//! elastic buffer (a bubble) on any channel while preserving transfer
//! equivalence (Section 2 and ref \[10\] in the paper). An empty EB is furthermore
//! equivalent to an EB holding one token immediately followed by an EB
//! holding one anti-token — the `0 = 1 − 1` rule used to enable retiming of
//! EBs with different initial occupancies.

use std::collections::BTreeSet;

use crate::error::{CoreError, Result};
use crate::id::{ChannelId, NodeId, Port};
use crate::kind::{BufferSpec, NodeKind};
use crate::netlist::Netlist;

/// Nodes reachable downstream of `start` through *combinational* nodes only
/// (function blocks, muxes, forks, shared modules). Sequential nodes
/// (buffers, commit stages, variable-latency units) and environments absorb
/// latency skew — they hold tokens — so the traversal stops there.
fn combinational_closure(netlist: &Netlist, start: NodeId) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(node) = stack.pop() {
        let combinational = netlist.node(node).is_some_and(|n| n.kind.is_combinational());
        if !combinational {
            continue;
        }
        if seen.insert(node) {
            stack.extend(netlist.successors(node));
        }
    }
    seen
}

/// Latency insertion on `channel` would break a lazy fork's rendezvous.
///
/// A lazy fork delivers all branch copies in the same cycle, so when its
/// branches reconverge (at a join, a lazy mux, …) the reconverging paths
/// must stay *register-balanced*: adding a cycle of latency to one path
/// makes the join wait for a token that can only arrive after the fork
/// fires — which the fork refuses to do until the join is ready. Unlike
/// eager forks, lazy forks are not latency-insensitive, and the
/// bubble-insertion theorem of Section 2 does not extend to them.
///
/// The hazard is *regional*, not local: the rendezvous extends through
/// every combinational node downstream of the lazy fork — including eager
/// forks, whose incremental delivery needs an input token to hold, which a
/// combinational chain back to a withholding lazy fork cannot provide. The
/// refusal therefore covers any diamond (fork `F` diverging, paths
/// reconverging downstream) where
///
/// * the diverging fork is lazy, **or** eager but combinationally fed from
///   a lazy fork (its input cannot wait), and
/// * the insertion channel lies on one combinational branch path while a
///   different branch reaches the insertion's downstream combinationally —
///   no storage anywhere to absorb the new skew.
///
/// (Both shapes were found by the elastic-gen differential fuzzer the
/// moment lazy forks entered the generation space: a bubble on a direct
/// rendezvous branch, and a bubble inside an eager-fork diamond fed
/// combinationally by a lazy fork, each deadlocked the whole region.)
fn lazy_rendezvous_conflict(netlist: &Netlist, channel: ChannelId) -> Option<String> {
    let channel = netlist.channel(channel)?;
    let insertion_producer = channel.from.node;
    let down = {
        let mut down = combinational_closure(netlist, channel.to.node);
        // The consumer itself can be the reconvergence point even when it is
        // not combinational-traversable (it still joins two channels).
        down.insert(channel.to.node);
        down
    };

    // Nodes whose tokens are withheld (not held) while a lazy rendezvous is
    // unresolved: the combinational closure of every lazy fork's branches
    // (one shared model with the retraction/speculation analyses).
    let lazy_tainted = super::lazy_tainted_nodes(netlist);

    for fork in netlist.live_nodes().filter(|n| match &n.kind {
        NodeKind::Fork(spec) => !spec.eager || lazy_tainted.contains(&n.id),
        _ => false,
    }) {
        let branches = netlist.output_channels(fork.id);
        let mut through: Vec<usize> = Vec::new();
        let mut closures: Vec<(usize, BTreeSet<NodeId>)> = Vec::new();
        for (index, branch) in branches.iter().enumerate() {
            let mut closure = combinational_closure(netlist, branch.to.node);
            closure.insert(branch.to.node);
            if branch.id == channel.id || closure.contains(&insertion_producer) {
                through.push(index);
            }
            closures.push((index, closure));
        }
        if through.is_empty() {
            continue;
        }
        for (index, closure) in &closures {
            if through.contains(index) {
                continue;
            }
            if closure.intersection(&down).next().is_some() {
                return Some(format!(
                    "channel {} lies inside the rendezvous region of fork {} ({}): branch {} \
                     reconverges with it combinationally, and the region's paths must stay \
                     register-balanced (adding latency here would deadlock the rendezvous; \
                     insert upstream of the lazy fork or behind the region's buffers instead)",
                    channel.id, fork.name, fork.id, index
                ));
            }
        }
    }
    None
}

/// Inserts an elastic buffer with the given specification in the middle of a
/// channel, returning the id of the new buffer node.
///
/// The original channel keeps its producer and is re-targeted onto the new
/// buffer; a fresh channel connects the buffer to the original consumer.
///
/// # Errors
///
/// Fails when the channel does not exist, the buffer specification violates
/// `C >= Lf + Lb`, or the insertion would unbalance a lazy fork's
/// rendezvous (see `lazy_rendezvous_conflict` in the source).
pub fn insert_buffer_on_channel(
    netlist: &mut Netlist,
    channel: ChannelId,
    spec: BufferSpec,
) -> Result<NodeId> {
    if !spec.is_well_formed() {
        return Err(CoreError::InvalidBufferSpec {
            node: None,
            reason: format!(
                "capacity {} is smaller than Lf + Lb = {} or the initial occupancy does not fit",
                spec.capacity,
                spec.forward_latency + spec.backward_latency
            ),
        });
    }
    if let Some(reason) = lazy_rendezvous_conflict(netlist, channel) {
        return Err(CoreError::Precondition { transform: "insert_buffer_on_channel", reason });
    }
    let (to, width, name) = {
        let ch = netlist.require_channel(channel)?;
        (ch.to, ch.width, ch.name.clone())
    };
    let buffer = netlist.add_buffer(format!("eb_on_{name}"), spec);
    netlist.set_channel_target(channel, Port::input(buffer, 0))?;
    netlist.connect(Port::output(buffer, 0), to, width)?;
    Ok(buffer)
}

/// Inserts an **empty** standard EB (a bubble) on a channel.
///
/// This is the bubble-insertion transformation of Figure 1(b): it can only
/// improve the cycle time (it cuts a combinational path) but it adds a unit
/// of latency to every cycle through the channel, potentially reducing
/// throughput.
///
/// # Errors
///
/// Fails when the channel does not exist.
pub fn insert_bubble(netlist: &mut Netlist, channel: ChannelId) -> Result<NodeId> {
    insert_buffer_on_channel(netlist, channel, BufferSpec::bubble())
}

/// Removes an **empty** elastic buffer, reconnecting its producer directly to
/// its consumer.
///
/// # Errors
///
/// Fails when the node is not a buffer, the buffer holds tokens or
/// anti-tokens (removal would then change the transfer behaviour), or the
/// buffer is not connected on both sides.
pub fn remove_buffer(netlist: &mut Netlist, buffer: NodeId) -> Result<()> {
    let node = netlist.require_node(buffer)?;
    let spec = match &node.kind {
        NodeKind::Buffer(spec) => *spec,
        other => {
            return Err(CoreError::Precondition {
                transform: "remove_buffer",
                reason: format!("{buffer} is a {} node, not a buffer", other.kind_name()),
            })
        }
    };
    if spec.init_tokens != 0 {
        return Err(CoreError::Precondition {
            transform: "remove_buffer",
            reason: format!(
                "buffer {buffer} holds {} initial token(s); only bubbles can be removed",
                spec.init_tokens
            ),
        });
    }
    let input = netlist
        .channel_into(Port::input(buffer, 0))
        .map(|c| c.id)
        .ok_or(CoreError::UnconnectedPort { node: buffer, index: 0, is_input: true })?;
    let output = netlist
        .channel_from(Port::output(buffer, 0))
        .map(|c| (c.id, c.to))
        .ok_or(CoreError::UnconnectedPort { node: buffer, index: 0, is_input: false })?;

    netlist.remove_channel(output.0)?;
    netlist.set_channel_target(input, output.1)?;
    netlist.remove_node(buffer)?;
    Ok(())
}

/// Applies the `0 = 1 − 1` identity: replaces an empty EB by an EB holding
/// one token followed by an EB holding one anti-token.
///
/// Returns `(token_buffer, anti_token_buffer)`. The token/anti-token pair
/// cancels on first contact, so the observable behaviour is unchanged; the
/// rewrite is useful to enable retiming of EBs initialised with different
/// token counts (Section 3.3).
///
/// # Errors
///
/// Fails when the node is not an empty buffer or is not connected on both
/// sides.
pub fn split_empty_buffer(netlist: &mut Netlist, buffer: NodeId) -> Result<(NodeId, NodeId)> {
    let node = netlist.require_node(buffer)?;
    let spec = match &node.kind {
        NodeKind::Buffer(spec) => *spec,
        other => {
            return Err(CoreError::Precondition {
                transform: "split_empty_buffer",
                reason: format!("{buffer} is a {} node, not a buffer", other.kind_name()),
            })
        }
    };
    if spec.init_tokens != 0 {
        return Err(CoreError::Precondition {
            transform: "split_empty_buffer",
            reason: "only an empty buffer equals one token followed by one anti-token".into(),
        });
    }
    let output = netlist
        .channel_from(Port::output(buffer, 0))
        .map(|c| c.id)
        .ok_or(CoreError::UnconnectedPort { node: buffer, index: 0, is_input: false })?;
    let name = netlist.require_node(buffer)?.name.clone();

    // Turn the existing buffer into the token-holding half …
    if let Some(node) = netlist.node_mut(buffer) {
        node.kind = NodeKind::Buffer(BufferSpec { init_tokens: 1, ..spec });
    }
    // … and insert the anti-token half on its output channel.
    let anti = insert_buffer_on_channel(netlist, output, BufferSpec { init_tokens: -1, ..spec })?;
    if let Some(node) = netlist.node_mut(anti) {
        node.name = format!("{name}_anti");
    }
    Ok((buffer, anti))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{SinkSpec, SourceSpec};
    use crate::op::Op;

    fn pipeline() -> (Netlist, ChannelId) {
        let mut n = Netlist::new("pipe");
        let src = n.add_source("src", SourceSpec::always());
        let f = n.add_op("f", Op::Inc);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch = n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
        (n, ch)
    }

    #[test]
    fn insert_bubble_keeps_netlist_valid() {
        let (mut n, ch) = pipeline();
        let before_nodes = n.node_count();
        let eb = insert_bubble(&mut n, ch).unwrap();
        assert_eq!(n.node_count(), before_nodes + 1);
        assert!(n.node(eb).unwrap().as_buffer().unwrap().init_tokens == 0);
        n.validate().unwrap();
    }

    #[test]
    fn insert_rejects_malformed_spec() {
        let (mut n, ch) = pipeline();
        let bad = BufferSpec { capacity: 1, ..BufferSpec::standard(0) };
        assert!(matches!(
            insert_buffer_on_channel(&mut n, ch, bad),
            Err(CoreError::InvalidBufferSpec { .. })
        ));
    }

    #[test]
    fn remove_buffer_reverses_insert() {
        let (mut n, ch) = pipeline();
        let reference = n.clone();
        let eb = insert_bubble(&mut n, ch).unwrap();
        remove_buffer(&mut n, eb).unwrap();
        // Same structure: node and channel counts return to the original.
        assert_eq!(n.node_count(), reference.node_count());
        assert_eq!(n.channel_count(), reference.channel_count());
        n.validate().unwrap();
    }

    #[test]
    fn remove_buffer_refuses_nonempty_buffers() {
        let (mut n, ch) = pipeline();
        let eb = insert_buffer_on_channel(&mut n, ch, BufferSpec::standard(1)).unwrap();
        assert!(matches!(remove_buffer(&mut n, eb), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn remove_buffer_refuses_non_buffers() {
        let (mut n, _ch) = pipeline();
        let f = n.find_node("f").unwrap().id;
        assert!(matches!(remove_buffer(&mut n, f), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn split_empty_buffer_creates_token_anti_token_pair() {
        let (mut n, ch) = pipeline();
        let eb = insert_bubble(&mut n, ch).unwrap();
        let (token, anti) = split_empty_buffer(&mut n, eb).unwrap();
        assert_eq!(n.node(token).unwrap().as_buffer().unwrap().init_tokens, 1);
        assert_eq!(n.node(anti).unwrap().as_buffer().unwrap().init_tokens, -1);
        assert_eq!(n.total_initial_tokens(), 0, "0 = 1 - 1 must not change the token count");
        n.validate().unwrap();
    }

    #[test]
    fn insertion_on_a_lazy_rendezvous_branch_is_refused() {
        use crate::kind::{ForkSpec, MuxSpec};
        // src → lazy fork → {mux select, mux data}; src2 → mux data; mux → sink
        // (the minimal shape the fuzzer shrank to: a bubble on either
        // reconverging branch deadlocks the rendezvous).
        let mut n = Netlist::new("rendezvous");
        let src = n.add_source("src", SourceSpec::always());
        let fork = n.add_fork("lzfork", ForkSpec::lazy(2));
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let src2 = n.add_source("src2", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(fork, 0), 12).unwrap();
        let sel_branch = n.connect(Port::output(fork, 0), Port::input(mux, 0), 12).unwrap();
        n.connect(Port::output(src2, 0), Port::input(mux, 1), 9).unwrap();
        let data_branch = n.connect(Port::output(fork, 1), Port::input(mux, 2), 12).unwrap();
        let after_join = n.connect(Port::output(mux, 0), Port::input(sink, 0), 12).unwrap();
        n.validate().unwrap();

        for channel in [sel_branch, data_branch] {
            let err = insert_bubble(&mut n, channel).unwrap_err();
            assert!(err.to_string().contains("rendezvous"), "{err}");
        }
        // Downstream of the reconvergence the rendezvous is resolved; a
        // bubble there is still fine.
        insert_bubble(&mut n, after_join).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn insertion_near_an_eager_fork_is_unrestricted() {
        use crate::kind::{ForkSpec, MuxSpec};
        let mut n = Netlist::new("eager");
        let src = n.add_source("src", SourceSpec::always());
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let src2 = n.add_source("src2", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(fork, 0), 12).unwrap();
        n.connect(Port::output(fork, 0), Port::input(mux, 0), 12).unwrap();
        n.connect(Port::output(src2, 0), Port::input(mux, 1), 9).unwrap();
        let data_branch = n.connect(Port::output(fork, 1), Port::input(mux, 2), 12).unwrap();
        n.connect(Port::output(mux, 0), Port::input(sink, 0), 12).unwrap();
        insert_bubble(&mut n, data_branch).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn split_refuses_nonempty_buffers() {
        let (mut n, ch) = pipeline();
        let eb = insert_buffer_on_channel(&mut n, ch, BufferSpec::standard(1)).unwrap();
        assert!(split_empty_buffer(&mut n, eb).is_err());
    }
}
