//! Buffer re-parameterisation transformations.
//!
//! These transformations change *how* an elastic buffer is implemented (its
//! forward/backward latencies and capacity) without changing its observable
//! token behaviour, and insert the recovery buffers speculation needs after a
//! shared module (Sections 4.1 and 4.3 of the paper).

use crate::error::{CoreError, Result};
use crate::id::NodeId;
use crate::kind::{BufferSpec, NodeKind};
use crate::netlist::Netlist;

/// Changes the forward/backward latency of an elastic buffer.
///
/// The capacity is raised if needed so that `C >= Lf + Lb` keeps holding; it
/// is never lowered below the current initial occupancy.
///
/// # Errors
///
/// Fails when the node is not a buffer or `forward_latency` is zero (an EB
/// must register the forward path at least once).
pub fn set_buffer_latencies(
    netlist: &mut Netlist,
    buffer: NodeId,
    forward_latency: u32,
    backward_latency: u32,
) -> Result<BufferSpec> {
    if forward_latency == 0 {
        return Err(CoreError::InvalidBufferSpec {
            node: Some(buffer),
            reason: "forward latency must be at least 1".into(),
        });
    }
    let node = netlist.require_node(buffer)?;
    let mut spec = match &node.kind {
        NodeKind::Buffer(spec) => *spec,
        other => {
            return Err(CoreError::Precondition {
                transform: "set_buffer_latencies",
                reason: format!("{buffer} is a {} node, not a buffer", other.kind_name()),
            })
        }
    };
    spec.forward_latency = forward_latency;
    spec.backward_latency = backward_latency;
    let minimum_capacity = forward_latency + backward_latency;
    spec.capacity = spec.capacity.max(minimum_capacity).max(spec.init_tokens.max(0) as u32);
    if let Some(node) = netlist.node_mut(buffer) {
        node.kind = NodeKind::Buffer(spec);
    }
    Ok(spec)
}

/// Converts a buffer into the zero-backward-latency variant of Figure 5
/// (`Lf = 1`, `Lb = 0`, `C = 1`).
///
/// Stop and kill information then travels combinationally through the buffer,
/// which removes the anti-token propagation bottleneck on speculation
/// recovery paths (Section 4.3). The conversion requires the buffer to hold
/// at most one initial token because the capacity drops to one.
///
/// # Errors
///
/// Fails when the node is not a buffer or holds more than one initial token.
pub fn make_zero_backward(netlist: &mut Netlist, buffer: NodeId) -> Result<BufferSpec> {
    let node = netlist.require_node(buffer)?;
    let spec = match &node.kind {
        NodeKind::Buffer(spec) => *spec,
        other => {
            return Err(CoreError::Precondition {
                transform: "make_zero_backward",
                reason: format!("{buffer} is a {} node, not a buffer", other.kind_name()),
            })
        }
    };
    if spec.init_tokens > 1 || spec.init_tokens < -1 {
        return Err(CoreError::Precondition {
            transform: "make_zero_backward",
            reason: format!(
                "buffer {buffer} holds {} initial tokens but the Lb=0 buffer has capacity 1",
                spec.init_tokens
            ),
        });
    }
    // A directed cycle needs at least one buffer with backward latency ≥ 1:
    // the Lb slack is what absorbs transient back-pressure travelling around
    // the loop. Converting the only such buffer of a cycle leaves the loop
    // with zero stall slack and it wedges on the first downstream stall
    // (found by the elastic-gen differential fuzzer on a generated select
    // loop; the paper's Lb=0 buffers sit on feed-forward recovery paths,
    // Section 4.3, never as a cycle's sole storage).
    if on_cycle_without_other_backward_slack(netlist, buffer) {
        return Err(CoreError::Precondition {
            transform: "make_zero_backward",
            reason: format!(
                "buffer {buffer} is the only buffer with backward latency >= 1 on a cycle; \
                 dropping its backward slack would let any transient stall deadlock the loop"
            ),
        });
    }
    let new_spec = BufferSpec::zero_backward(spec.init_tokens);
    if let Some(node) = netlist.node_mut(buffer) {
        node.kind = NodeKind::Buffer(new_spec);
    }
    Ok(new_spec)
}

/// `true` when some directed cycle through `buffer` contains no *other*
/// buffer with `backward_latency >= 1`. Depth-first over simple paths —
/// exponential in the worst case, irrelevant at micro-architectural netlist
/// sizes (the same trade-off `find_select_cycles` makes).
fn on_cycle_without_other_backward_slack(netlist: &Netlist, buffer: NodeId) -> bool {
    fn dfs(
        netlist: &Netlist,
        current: NodeId,
        start: NodeId,
        on_path: &mut Vec<NodeId>,
        slack_free: bool,
    ) -> bool {
        for next in netlist.successors(current) {
            if next == start {
                if slack_free {
                    return true;
                }
                continue;
            }
            if on_path.contains(&next) {
                continue;
            }
            let next_has_slack = matches!(
                netlist.node(next).map(|n| &n.kind),
                Some(NodeKind::Buffer(spec)) if spec.backward_latency >= 1
            );
            on_path.push(next);
            if dfs(netlist, next, start, on_path, slack_free && !next_has_slack) {
                return true;
            }
            on_path.pop();
        }
        false
    }
    let mut on_path = vec![buffer];
    dfs(netlist, buffer, buffer, &mut on_path, true)
}

/// Inserts a recovery buffer on every output channel of a shared module.
///
/// Recovery buffers store the speculated results between the shared module
/// and the early-evaluation multiplexor; they are the main source of the area
/// overhead the paper reports for speculation (12% for the variable-latency
/// ALU, 36% for the SECDED adder). Returns the created buffer ids in output
/// port order.
///
/// # Errors
///
/// Fails when the node is not a shared module or the buffer specification is
/// malformed.
pub fn insert_recovery_buffers(
    netlist: &mut Netlist,
    shared: NodeId,
    spec: BufferSpec,
) -> Result<Vec<NodeId>> {
    let node = netlist.require_node(shared)?;
    if node.as_shared().is_none() {
        return Err(CoreError::Precondition {
            transform: "insert_recovery_buffers",
            reason: format!("{shared} is a {} node, not a shared module", node.kind.kind_name()),
        });
    }
    let channels: Vec<_> = netlist.output_channels(shared).iter().map(|c| c.id).collect();
    let mut buffers = Vec::with_capacity(channels.len());
    for channel in channels {
        buffers.push(super::insert_buffer_on_channel(netlist, channel, spec)?);
    }
    Ok(buffers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Port;
    use crate::kind::{SinkSpec, SourceSpec};
    use crate::op::Op;
    use crate::transform::insert_buffer_on_channel;

    fn buffered_pipeline() -> (Netlist, NodeId) {
        let mut n = Netlist::new("pipe");
        let src = n.add_source("src", SourceSpec::always());
        let f = n.add_op("f", Op::Inc);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch = n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
        let eb = insert_buffer_on_channel(&mut n, ch, BufferSpec::standard(1)).unwrap();
        (n, eb)
    }

    #[test]
    fn latency_changes_keep_capacity_constraint() {
        let (mut n, eb) = buffered_pipeline();
        let spec = set_buffer_latencies(&mut n, eb, 2, 1).unwrap();
        assert!(spec.capacity >= 3);
        assert!(spec.is_well_formed());
        n.validate().unwrap();
    }

    #[test]
    fn zero_forward_latency_is_rejected() {
        let (mut n, eb) = buffered_pipeline();
        assert!(set_buffer_latencies(&mut n, eb, 0, 1).is_err());
    }

    #[test]
    fn zero_backward_conversion_produces_fig5_buffer() {
        let (mut n, eb) = buffered_pipeline();
        let spec = make_zero_backward(&mut n, eb).unwrap();
        assert_eq!(spec.backward_latency, 0);
        assert_eq!(spec.capacity, 1);
        assert_eq!(spec.init_tokens, 1);
        assert!(spec.is_well_formed());
    }

    #[test]
    fn zero_backward_conversion_rejects_overfull_buffers() {
        let (mut n, eb) = buffered_pipeline();
        if let Some(node) = n.node_mut(eb) {
            node.kind = NodeKind::Buffer(BufferSpec { init_tokens: 2, ..BufferSpec::standard(0) });
        }
        assert!(make_zero_backward(&mut n, eb).is_err());
    }

    #[test]
    fn a_cycles_only_backward_slack_cannot_be_dropped() {
        // Found by the elastic-gen fuzzer: converting the sole standard EB
        // of a feedback loop to Lb = 0 leaves the loop without stall slack
        // and it deadlocks on the first transient back-pressure.
        use crate::kind::{ForkSpec, MuxSpec};

        let mut n = Netlist::new("loop");
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let eb = n.add_buffer("eb", BufferSpec::standard(1));
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
        n.validate().unwrap();

        let err = make_zero_backward(&mut n, eb).unwrap_err();
        assert!(err.to_string().contains("backward latency"), "{err}");

        // With a second standard buffer on the loop the slack survives and
        // the conversion is accepted.
        let loop_channel = n.channel_from(Port::output(mux, 0)).unwrap().id;
        insert_buffer_on_channel(&mut n, loop_channel, BufferSpec::standard(0)).unwrap();
        make_zero_backward(&mut n, eb).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn non_buffers_are_rejected() {
        let (mut n, _eb) = buffered_pipeline();
        let f = n.find_node("f").unwrap().id;
        assert!(set_buffer_latencies(&mut n, f, 1, 1).is_err());
        assert!(make_zero_backward(&mut n, f).is_err());
        assert!(insert_recovery_buffers(&mut n, f, BufferSpec::bubble()).is_err());
    }
}
