//! Early-evaluation enablement for multiplexors.
//!
//! A conventional elastic multiplexor behaves as a lazy join: it waits for
//! the select token *and* every data token. Early evaluation relaxes this —
//! the multiplexor fires as soon as the select token and the *selected* data
//! token are present, and injects an anti-token into each non-selected data
//! channel so that the dispensable data is cancelled when it arrives
//! (Section 3.3 of the paper and ref \[7\]). The transformation only changes the
//! elastic controller; the datapath multiplexor stays the same.

use crate::error::{CoreError, Result};
use crate::id::NodeId;
use crate::kind::NodeKind;
use crate::netlist::Netlist;

fn set_early_eval(netlist: &mut Netlist, mux: NodeId, early_eval: bool) -> Result<()> {
    let node = netlist.require_node(mux)?;
    match &node.kind {
        NodeKind::Mux(spec) => {
            let mut spec = *spec;
            spec.early_eval = early_eval;
            if let Some(node) = netlist.node_mut(mux) {
                node.kind = NodeKind::Mux(spec);
            }
            Ok(())
        }
        other => Err(CoreError::Precondition {
            transform: "early_evaluation",
            reason: format!("{mux} is a {} node, not a multiplexor", other.kind_name()),
        }),
    }
}

/// Enables early evaluation (with anti-token injection) on a multiplexor.
///
/// # Errors
///
/// Fails when the node is not a multiplexor.
pub fn enable_early_evaluation(netlist: &mut Netlist, mux: NodeId) -> Result<()> {
    set_early_eval(netlist, mux, true)
}

/// Reverts a multiplexor to conventional lazy-join behaviour.
///
/// # Errors
///
/// Fails when the node is not a multiplexor.
pub fn disable_early_evaluation(netlist: &mut Netlist, mux: NodeId) -> Result<()> {
    set_early_eval(netlist, mux, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::MuxSpec;
    use crate::op::Op;

    #[test]
    fn toggling_early_evaluation_updates_the_spec() {
        let mut n = Netlist::new("t");
        let mux = n.add_mux("m", MuxSpec::lazy(2));
        assert!(!n.node(mux).unwrap().as_mux().unwrap().early_eval);

        enable_early_evaluation(&mut n, mux).unwrap();
        assert!(n.node(mux).unwrap().as_mux().unwrap().early_eval);

        disable_early_evaluation(&mut n, mux).unwrap();
        assert!(!n.node(mux).unwrap().as_mux().unwrap().early_eval);
    }

    #[test]
    fn non_mux_nodes_are_rejected() {
        let mut n = Netlist::new("t");
        let f = n.add_op("f", Op::Add);
        assert!(matches!(enable_early_evaluation(&mut n, f), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let mut n = Netlist::new("t");
        assert!(enable_early_evaluation(&mut n, NodeId::new(42)).is_err());
    }
}
