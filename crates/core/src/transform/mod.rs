//! Correct-by-construction transformations on elastic netlists.
//!
//! All transformations in this module preserve *transfer equivalence*
//! (Section 3.1 of the paper): given identical input streams, the transformed
//! design produces the same output transfer streams as the original one —
//! the cycle in which each transfer happens may differ, the sequence of
//! values may not. The `elastic-verify` crate checks this dynamically for
//! every transformation on randomized workloads.
//!
//! The catalogue follows Sections 2–4 of the paper:
//!
//! | transformation | function | paper reference |
//! |---|---|---|
//! | bubble insertion / removal | [`insert_bubble`], [`remove_buffer`] | §2, Fig. 1(b) |
//! | the `0 = 1 − 1` identity | [`split_empty_buffer`] | §3.3 |
//! | elastic-buffer retiming | [`retime_backward`], [`retime_forward`] | §3.3 |
//! | early evaluation | [`enable_early_evaluation`] | §3.3, ref \[7\] |
//! | Shannon decomposition (mux retiming) | [`shannon_decompose`] | §2, Fig. 1(c) |
//! | sharing with a speculative scheduler | [`share_mux_inputs`] | §4.1, Fig. 1(d) |
//! | buffer latency re-parameterisation | [`set_buffer_latencies`], [`make_zero_backward`] | §4.3, Fig. 5 |
//! | recovery-buffer insertion | [`insert_recovery_buffers`] | §4.1 |
//! | retraction-domain analysis + isolation placement | [`retraction_domain`], [`place_isolation_buffers`] | §4.2 |
//! | **speculation** (the composite pass) | [`speculate`] | §4 |
//!
//! The [`Transformer`] wrapper keeps an undo/redo history, mirroring the
//! interactive exploration framework described in Section 5.

mod bubble;
mod buffers;
mod early_eval;
mod retime;
mod retraction;
mod shannon;
mod share;
mod speculate;

pub use bubble::{insert_bubble, insert_buffer_on_channel, remove_buffer, split_empty_buffer};
pub use buffers::{insert_recovery_buffers, make_zero_backward, set_buffer_latencies};
pub use early_eval::{disable_early_evaluation, enable_early_evaluation};
pub use retime::{retime_backward, retime_forward};
pub use retraction::{
    backpressure_may_stall, ill_formed_lazy_forks, lazy_tainted_nodes, place_isolation_buffers,
    retraction_domain, FrontierClass, RetractionDomain, RetractionHazard,
};
pub use shannon::{shannon_decompose, ShannonReport};
pub use share::{share_mux_inputs, ShareOptions, ShareReport};
pub use speculate::{find_select_cycles, speculate, SpeculateOptions, SpeculationReport};

use crate::error::{CoreError, Result};
use crate::netlist::Netlist;

/// A named entry in a [`Transformer`] history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Human-readable description of the applied transformation.
    pub description: String,
}

/// An undo/redo-capable wrapper around a [`Netlist`] that applies
/// transformations and records their history.
///
/// Mirrors the interactive exploration toolkit of the paper's Section 5: the
/// user applies transformations, inspects the result, and can undo/redo at
/// any point. Undo is implemented by snapshotting the netlist before each
/// transformation — netlists at the micro-architectural level are small, so
/// snapshots are cheap and trivially correct.
#[derive(Debug, Clone)]
pub struct Transformer {
    current: Netlist,
    undo_stack: Vec<(Netlist, HistoryEntry)>,
    redo_stack: Vec<(Netlist, HistoryEntry)>,
    applied: Vec<HistoryEntry>,
}

impl Transformer {
    /// Starts a transformation session on the given netlist.
    pub fn new(netlist: Netlist) -> Self {
        Transformer {
            current: netlist,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            applied: Vec::new(),
        }
    }

    /// The current state of the design.
    pub fn netlist(&self) -> &Netlist {
        &self.current
    }

    /// Consumes the session and returns the current design.
    pub fn into_netlist(self) -> Netlist {
        self.current
    }

    /// History of applied transformations (oldest first).
    pub fn history(&self) -> &[HistoryEntry] {
        &self.applied
    }

    /// Applies a transformation closure under history control.
    ///
    /// The closure receives a mutable reference to the working netlist. When
    /// it fails the netlist is rolled back to the pre-transformation state,
    /// so a failed transformation can never leave the design half-rewired.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error unchanged.
    pub fn apply<T>(
        &mut self,
        description: impl Into<String>,
        transformation: impl FnOnce(&mut Netlist) -> Result<T>,
    ) -> Result<T> {
        let snapshot = self.current.clone();
        match transformation(&mut self.current) {
            Ok(value) => {
                let entry = HistoryEntry { description: description.into() };
                self.undo_stack.push((snapshot, entry.clone()));
                self.applied.push(entry);
                self.redo_stack.clear();
                Ok(value)
            }
            Err(error) => {
                self.current = snapshot;
                Err(error)
            }
        }
    }

    /// Undoes the most recent transformation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::HistoryEmpty`] when there is nothing to undo.
    pub fn undo(&mut self) -> Result<HistoryEntry> {
        let (previous, entry) = self.undo_stack.pop().ok_or(CoreError::HistoryEmpty)?;
        let redone_state = std::mem::replace(&mut self.current, previous);
        self.redo_stack.push((redone_state, entry.clone()));
        self.applied.pop();
        Ok(entry)
    }

    /// Re-applies the most recently undone transformation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::HistoryEmpty`] when there is nothing to redo.
    pub fn redo(&mut self) -> Result<HistoryEntry> {
        let (next, entry) = self.redo_stack.pop().ok_or(CoreError::HistoryEmpty)?;
        let undone_state = std::mem::replace(&mut self.current, next);
        self.undo_stack.push((undone_state, entry.clone()));
        self.applied.push(entry.clone());
        Ok(entry)
    }

    /// Number of transformations that can currently be undone.
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    /// Number of transformations that can currently be redone.
    pub fn redo_depth(&self) -> usize {
        self.redo_stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Port;
    use crate::kind::{SinkSpec, SourceSpec};
    use crate::op::Op;

    fn pipeline() -> Netlist {
        let mut n = Netlist::new("pipe");
        let src = n.add_source("src", SourceSpec::always());
        let f = n.add_op("f", Op::Inc);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
        n
    }

    #[test]
    fn apply_records_history_and_mutates() {
        let mut t = Transformer::new(pipeline());
        let before = t.netlist().node_count();
        let channel = t.netlist().live_channels().next().unwrap().id;
        t.apply("insert bubble", |n| insert_bubble(n, channel)).unwrap();
        assert_eq!(t.netlist().node_count(), before + 1);
        assert_eq!(t.history().len(), 1);
        assert_eq!(t.undo_depth(), 1);
    }

    #[test]
    fn failed_transformations_roll_back() {
        let mut t = Transformer::new(pipeline());
        let before = t.netlist().clone();
        let bogus = crate::ChannelId::new(999);
        let result = t.apply("bogus", |n| insert_bubble(n, bogus));
        assert!(result.is_err());
        assert_eq!(t.netlist(), &before);
        assert!(t.history().is_empty());
    }

    #[test]
    fn undo_and_redo_round_trip() {
        let mut t = Transformer::new(pipeline());
        let original = t.netlist().clone();
        let channel = t.netlist().live_channels().next().unwrap().id;
        t.apply("insert bubble", |n| insert_bubble(n, channel)).unwrap();
        let transformed = t.netlist().clone();

        t.undo().unwrap();
        assert_eq!(t.netlist(), &original);
        assert_eq!(t.redo_depth(), 1);

        t.redo().unwrap();
        assert_eq!(t.netlist(), &transformed);
        assert_eq!(t.history().len(), 1);

        assert!(matches!(t.redo(), Err(CoreError::HistoryEmpty)));
    }

    #[test]
    fn undo_on_empty_history_fails() {
        let mut t = Transformer::new(pipeline());
        assert!(matches!(t.undo(), Err(CoreError::HistoryEmpty)));
    }

    #[test]
    fn new_transformation_clears_redo() {
        let mut t = Transformer::new(pipeline());
        let channel = t.netlist().live_channels().next().unwrap().id;
        t.apply("insert bubble", |n| insert_bubble(n, channel)).unwrap();
        t.undo().unwrap();
        let channel2 = t.netlist().live_channels().next().unwrap().id;
        t.apply("insert bubble again", |n| insert_bubble(n, channel2)).unwrap();
        assert_eq!(t.redo_depth(), 0);
    }
}
