//! Elastic-buffer retiming across combinational function blocks.
//!
//! Retiming moves storage across combinational logic without changing the
//! transfer behaviour (Section 3.3). In the elastic setting the moved storage
//! elements are EBs and the rule is the classical one: moving a buffer from
//! the output of a block to all of its inputs (backward retiming) or from all
//! inputs to the output (forward retiming) preserves the token count on every
//! cycle of the graph and therefore the throughput bound.

use crate::error::{CoreError, Result};
use crate::id::{NodeId, Port};
use crate::kind::{BufferSpec, NodeKind};
use crate::netlist::Netlist;

/// Checks the data side condition for moving a *token-holding* buffer across
/// `block`: the output stream swaps `op(init_value, …)` for the raw
/// `init_value`, so the two must provably coincide — which this layer (with
/// no evaluator available) accepts only for zero-valued tokens crossing
/// zero-preserving logic. Multiplexors are always safe: with all inputs
/// zero, the selected input is zero.
///
/// Empty buffers (and anti-token holders, which carry no data) cross freely.
fn check_data_side_condition(
    transform: &'static str,
    block_kind: &NodeKind,
    spec: &BufferSpec,
) -> Result<()> {
    if spec.init_tokens <= 0 {
        return Ok(());
    }
    let zero_preserving = match block_kind {
        NodeKind::Mux(_) => true,
        NodeKind::Function(function) => function.op.preserves_zero(),
        _ => false,
    };
    if spec.init_value != 0 || !zero_preserving {
        return Err(CoreError::Precondition {
            transform,
            reason: format!(
                "retiming a buffer holding {} data-carrying token(s) (init value {:#x}) across \
                 this block would replace the computed stream head by the raw init value; only \
                 zero-valued tokens may cross zero-preserving logic",
                spec.init_tokens, spec.init_value
            ),
        });
    }
    Ok(())
}

/// `true` when `node` is combinationally fed — through function blocks,
/// muxes and forks, i.e. controllers that re-derive their valid from their
/// inputs — by a producer that may *retract* an offered token (a
/// speculative shared module, an early-evaluation mux, or a lazy fork).
///
/// Retiming must not splice out an elastic buffer standing between such a
/// producer and downstream logic: the buffer is what confines the
/// retraction wave (and, for a shared module, what decouples its mutually
/// exclusive user outputs — removing it can deadlock a downstream join
/// outright, as the elastic-gen fuzzer demonstrated by forward-retiming the
/// EB of a shared∘EB composition into a join of both users).
fn fed_by_retracting_producer(netlist: &Netlist, node: NodeId) -> bool {
    use std::collections::HashSet;
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut frontier = vec![node];
    while let Some(current) = frontier.pop() {
        for predecessor in netlist.predecessors(current) {
            if !seen.insert(predecessor) {
                continue;
            }
            match netlist.node(predecessor).map(|n| &n.kind) {
                Some(NodeKind::Shared(_)) => return true,
                Some(NodeKind::Mux(spec)) if spec.early_eval => return true,
                Some(NodeKind::Fork(spec)) if !spec.eager => return true,
                // Combinational controllers propagate retraction waves.
                Some(NodeKind::Function(_) | NodeKind::Mux(_) | NodeKind::Fork(_)) => {
                    frontier.push(predecessor)
                }
                // Sequential nodes and environments cut the cone.
                _ => {}
            }
        }
    }
    false
}

/// Checks that a buffer about to be retimed is not *width-converting*: with
/// unequal channel widths the buffer doubles as a width adapter (producers
/// mask to their output channel's width), and moving it across a block moves
/// the truncation point — `mask9(lut(x))` zero-extended to 15 bits is not
/// `mask15(lut(x))` (found by the elastic-gen differential fuzzer on a Lut
/// whose raw result exceeded the narrow channel).
fn check_width_side_condition(
    transform: &'static str,
    netlist: &Netlist,
    buffer: NodeId,
) -> Result<()> {
    let input_width = netlist.channel_into(Port::input(buffer, 0)).map(|c| c.width);
    let output_width = netlist.channel_from(Port::output(buffer, 0)).map(|c| c.width);
    if let (Some(input), Some(output)) = (input_width, output_width) {
        if input != output {
            return Err(CoreError::Precondition {
                transform,
                reason: format!(
                    "buffer {buffer} converts channel width {input} to {output}; moving the \
                     truncation point across the block would change the data stream"
                ),
            });
        }
    }
    Ok(())
}

fn check_isolation_side_condition(
    transform: &'static str,
    netlist: &Netlist,
    node: NodeId,
) -> Result<()> {
    if fed_by_retracting_producer(netlist, node) {
        return Err(CoreError::Precondition {
            transform,
            reason: format!(
                "the buffer being retimed isolates a speculative (retracting) producer upstream \
                 of {node}; splicing it out would extend the retraction cone and can deadlock \
                 mutually exclusive outputs"
            ),
        });
    }
    Ok(())
}

/// Moves the elastic buffer sitting on the output of a combinational block to
/// all of its inputs (backward retiming). Returns the ids of the buffers
/// created on the inputs.
///
/// # Errors
///
/// Fails when `block` is not a combinational block (function or mux), when
/// its output does not feed exactly one elastic buffer, or when that buffer
/// holds initial anti-tokens (which cannot be split across inputs).
pub fn retime_backward(netlist: &mut Netlist, block: NodeId) -> Result<Vec<NodeId>> {
    let node = netlist.require_node(block)?;
    if !matches!(node.kind, NodeKind::Function(_) | NodeKind::Mux(_)) {
        return Err(CoreError::Precondition {
            transform: "retime_backward",
            reason: format!("{block} is a {} node, not combinational logic", node.kind.kind_name()),
        });
    }
    let output_channel = netlist
        .channel_from(Port::output(block, 0))
        .map(|c| c.id)
        .ok_or(CoreError::UnconnectedPort { node: block, index: 0, is_input: false })?;
    let buffer = {
        let ch = netlist.require_channel(output_channel)?;
        ch.to.node
    };
    let buffer_spec = match netlist.require_node(buffer)?.kind.clone() {
        NodeKind::Buffer(spec) => spec,
        other => {
            return Err(CoreError::Precondition {
                transform: "retime_backward",
                reason: format!(
                    "the output of {block} feeds a {} node, not an elastic buffer",
                    other.kind_name()
                ),
            })
        }
    };
    if buffer_spec.init_tokens < 0 {
        return Err(CoreError::Precondition {
            transform: "retime_backward",
            reason: "cannot retime a buffer holding anti-tokens backwards".into(),
        });
    }
    {
        let block_kind = netlist.require_node(block)?.kind.clone();
        check_data_side_condition("retime_backward", &block_kind, &buffer_spec)?;
    }
    check_width_side_condition("retime_backward", netlist, buffer)?;
    // Moving the output buffer onto the inputs exposes the block's consumer
    // to any retraction wave the block sits in — including the one the block
    // *originates*: an early-evaluation mux retracts on its own, so the
    // buffer on its output is exactly the isolation the speculation pass
    // installs and must not be spliced away.
    if matches!(&netlist.require_node(block)?.kind, NodeKind::Mux(spec) if spec.early_eval) {
        return Err(CoreError::Precondition {
            transform: "retime_backward",
            reason: format!(
                "{block} is an early-evaluation mux (a retracting producer); the buffer on its \
                 output confines the retraction wave and cannot be retimed backwards"
            ),
        });
    }
    check_isolation_side_condition("retime_backward", netlist, block)?;
    // Reconnect the block's output straight to whatever the buffer used to feed.
    let buffer_out = netlist
        .channel_from(Port::output(buffer, 0))
        .map(|c| c.id)
        .ok_or(CoreError::UnconnectedPort { node: buffer, index: 0, is_input: false })?;
    netlist.remove_channel(output_channel)?;
    netlist.set_channel_source(buffer_out, Port::output(block, 0))?;
    netlist.remove_node(buffer)?;

    // Insert a copy of the buffer on every input of the block.
    let input_channels: Vec<_> = netlist.input_channels(block).iter().map(|c| c.id).collect();
    let mut created = Vec::with_capacity(input_channels.len());
    for channel in input_channels {
        created.push(super::insert_buffer_on_channel(netlist, channel, buffer_spec)?);
    }
    Ok(created)
}

/// Moves the elastic buffers sitting on every input of a combinational block
/// to its output (forward retiming). Returns the id of the buffer created on
/// the output.
///
/// # Errors
///
/// Fails when `block` is not a combinational block, when any input is not fed
/// by an elastic buffer, or when the input buffers do not share the same
/// specification (different token counts would change behaviour).
pub fn retime_forward(netlist: &mut Netlist, block: NodeId) -> Result<NodeId> {
    let node = netlist.require_node(block)?;
    if !matches!(node.kind, NodeKind::Function(_) | NodeKind::Mux(_)) {
        return Err(CoreError::Precondition {
            transform: "retime_forward",
            reason: format!("{block} is a {} node, not combinational logic", node.kind.kind_name()),
        });
    }
    let input_channels: Vec<_> = netlist.input_channels(block).iter().map(|c| c.id).collect();
    if input_channels.len() != netlist.require_node(block)?.input_count() {
        return Err(CoreError::Precondition {
            transform: "retime_forward",
            reason: format!("{block} has unconnected inputs"),
        });
    }

    let mut buffers = Vec::new();
    let mut common_spec = None;
    for channel in &input_channels {
        let driver = netlist.require_channel(*channel)?.from.node;
        match netlist.require_node(driver)?.kind.clone() {
            NodeKind::Buffer(spec) => {
                if let Some(existing) = common_spec {
                    if existing != spec {
                        return Err(CoreError::Precondition {
                            transform: "retime_forward",
                            reason: "input buffers have different specifications".into(),
                        });
                    }
                }
                common_spec = Some(spec);
                buffers.push(driver);
            }
            other => {
                return Err(CoreError::Precondition {
                    transform: "retime_forward",
                    reason: format!(
                        "input of {block} is driven by a {} node, not an elastic buffer",
                        other.kind_name()
                    ),
                })
            }
        }
    }
    let spec = common_spec.expect("block has at least one input");
    {
        let block_kind = netlist.require_node(block)?.kind.clone();
        check_data_side_condition("retime_forward", &block_kind, &spec)?;
    }
    // Splicing the input buffers out exposes the block to whatever feeds
    // them; none of them may be confining a retracting producer — nor be
    // converting channel widths (the truncation point must not move).
    for &buffer in &buffers {
        check_isolation_side_condition("retime_forward", netlist, buffer)?;
        check_width_side_condition("retime_forward", netlist, buffer)?;
    }

    // Splice each input buffer out: its input channel now feeds the block directly.
    for (channel, buffer) in input_channels.iter().zip(&buffers) {
        let target = netlist.require_channel(*channel)?.to;
        let upstream = netlist
            .channel_into(Port::input(*buffer, 0))
            .map(|c| c.id)
            .ok_or(CoreError::UnconnectedPort { node: *buffer, index: 0, is_input: true })?;
        netlist.remove_channel(*channel)?;
        netlist.set_channel_target(upstream, target)?;
        netlist.remove_node(*buffer)?;
    }

    // Insert a single buffer with the common specification on the output.
    let output_channel = netlist
        .channel_from(Port::output(block, 0))
        .map(|c| c.id)
        .ok_or(CoreError::UnconnectedPort { node: block, index: 0, is_input: false })?;
    super::insert_buffer_on_channel(netlist, output_channel, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{BufferSpec, SinkSpec, SourceSpec};
    use crate::op::Op;
    use crate::transform::insert_buffer_on_channel;

    /// src0 ─eb0─┐
    ///            ├─ add ─ eb_out ─ sink
    /// src1 ─eb1─┘
    fn adder_with_input_buffers() -> (Netlist, NodeId) {
        let mut n = Netlist::new("retime");
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let add = n.add_op("add", Op::Add);
        // Op::Add is variadic; give it two explicit inputs.
        if let Some(node) = n.node_mut(add) {
            node.kind = NodeKind::Function(crate::kind::FunctionSpec::with_inputs(Op::Add, 2));
        }
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch0 = n.connect(Port::output(src0, 0), Port::input(add, 0), 8).unwrap();
        let ch1 = n.connect(Port::output(src1, 0), Port::input(add, 1), 8).unwrap();
        n.connect(Port::output(add, 0), Port::input(sink, 0), 8).unwrap();
        insert_buffer_on_channel(&mut n, ch0, BufferSpec::standard(1)).unwrap();
        insert_buffer_on_channel(&mut n, ch1, BufferSpec::standard(1)).unwrap();
        (n, add)
    }

    #[test]
    fn forward_retiming_merges_input_buffers() {
        let (mut n, add) = adder_with_input_buffers();
        let tokens_before = n.total_initial_tokens();
        let out_buffer = retime_forward(&mut n, add).unwrap();
        n.validate().unwrap();
        assert_eq!(n.node(out_buffer).unwrap().as_buffer().unwrap().init_tokens, 1);
        // Retiming a fork-free pipeline reduces the token count on the unique
        // input-to-output path from 1+1 to 1; what matters is that the block's
        // output is now registered.
        assert!(n.total_initial_tokens() < tokens_before);
        let buffers = n.kind_histogram().get("buffer").copied().unwrap_or(0);
        assert_eq!(buffers, 1);
    }

    #[test]
    fn backward_retiming_inverts_forward_retiming() {
        let (mut n, add) = adder_with_input_buffers();
        retime_forward(&mut n, add).unwrap();
        let created = retime_backward(&mut n, add).unwrap();
        assert_eq!(created.len(), 2);
        n.validate().unwrap();
        let buffers = n.kind_histogram().get("buffer").copied().unwrap_or(0);
        assert_eq!(buffers, 2);
    }

    #[test]
    fn forward_retiming_requires_buffers_on_all_inputs() {
        let mut n = Netlist::new("t");
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let add = n.add_function("add", crate::kind::FunctionSpec::with_inputs(Op::Add, 2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch0 = n.connect(Port::output(src0, 0), Port::input(add, 0), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(add, 1), 8).unwrap();
        n.connect(Port::output(add, 0), Port::input(sink, 0), 8).unwrap();
        insert_buffer_on_channel(&mut n, ch0, BufferSpec::standard(1)).unwrap();
        assert!(matches!(retime_forward(&mut n, add), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn forward_retiming_requires_identical_buffer_specs() {
        let (mut n, add) = adder_with_input_buffers();
        // Make one of the two input buffers a bubble.
        let buffer =
            n.live_nodes().find(|node| node.as_buffer().is_some()).map(|node| node.id).unwrap();
        if let Some(node) = n.node_mut(buffer) {
            node.kind = NodeKind::Buffer(BufferSpec::bubble());
        }
        assert!(matches!(retime_forward(&mut n, add), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn backward_retiming_requires_a_buffer_on_the_output() {
        let (mut n, add) = adder_with_input_buffers();
        // The output feeds the sink directly, not a buffer.
        assert!(matches!(retime_backward(&mut n, add), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn data_carrying_tokens_cannot_cross_value_changing_logic() {
        // Found by the elastic-gen differential fuzzer: forward-retiming a
        // buffer holding a token with a non-zero data value replaces the
        // computed stream head `op(init_value)` by the raw `init_value`.
        let mut n = Netlist::new("t");
        let src = n.add_source("src", SourceSpec::always());
        let inc = n.add_op("inc", Op::Inc);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let ch = n.connect(Port::output(src, 0), Port::input(inc, 0), 8).unwrap();
        n.connect(Port::output(inc, 0), Port::input(sink, 0), 8).unwrap();
        insert_buffer_on_channel(&mut n, ch, BufferSpec::standard(1).with_init_value(0x39))
            .unwrap();

        // Non-zero init value: rejected in both directions.
        let err = retime_forward(&mut n, inc).unwrap_err();
        assert!(err.to_string().contains("zero-preserving"), "{err}");

        // Zero init value across a non-zero-preserving block (Inc(0) = 1):
        // still rejected.
        let buffer =
            n.live_nodes().find(|node| node.as_buffer().is_some()).map(|node| node.id).unwrap();
        if let Some(node) = n.node_mut(buffer) {
            node.kind = NodeKind::Buffer(BufferSpec::standard(1));
        }
        assert!(matches!(retime_forward(&mut n, inc), Err(CoreError::Precondition { .. })));

        // A zero-preserving block accepts the zero-valued token.
        if let Some(node) = n.node_mut(inc) {
            node.kind = NodeKind::Function(crate::kind::FunctionSpec::with_inputs(Op::Xor, 1));
        }
        retime_forward(&mut n, inc).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn an_early_eval_muxes_output_buffer_cannot_be_retimed_backwards() {
        // The early-evaluation mux retracts on its own; the buffer on its
        // output is the isolation the speculation pass installs. Splicing
        // it backwards would expose the consumer to the retraction wave.
        use crate::kind::{MuxSpec, SinkSpec, SourceSpec};

        let mut n = Netlist::new("t");
        let sel = n.add_source("sel", SourceSpec::always());
        let a = n.add_source("a", SourceSpec::always());
        let b = n.add_source("b", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::early(2));
        let eb = n.add_buffer("eb", BufferSpec::standard(0));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(sink, 0), 8).unwrap();
        n.validate().unwrap();

        let err = retime_backward(&mut n, mux).unwrap_err();
        assert!(err.to_string().contains("retracting producer"), "{err}");

        // The lazy variant of the same structure retimes fine.
        if let Some(node) = n.node_mut(mux) {
            node.kind = NodeKind::Mux(MuxSpec::lazy(2));
        }
        retime_backward(&mut n, mux).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn buffers_isolating_a_shared_module_cannot_be_retimed_away() {
        // Found by the elastic-gen fuzzer: forward-retiming the EBs of a
        // shared∘EB composition into a join of both users removes the
        // decoupling between the mutually exclusive outputs — the join can
        // then never fire.
        use crate::kind::{SharedSpec, SinkSpec, SourceSpec};

        let mut n = Netlist::new("t");
        let a = n.add_source("a", SourceSpec::always());
        let b = n.add_source("b", SourceSpec::always());
        let shared = n.add_shared("shared", SharedSpec::new(2, Op::Identity));
        let eb0 = n.add_buffer("eb0", BufferSpec::standard(0));
        let eb1 = n.add_buffer("eb1", BufferSpec::standard(0));
        let join = n.add_function("join", crate::kind::FunctionSpec::with_inputs(Op::Add, 2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(a, 0), Port::input(shared, 0), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(shared, 1), 8).unwrap();
        n.connect(Port::output(shared, 0), Port::input(eb0, 0), 8).unwrap();
        n.connect(Port::output(shared, 1), Port::input(eb1, 0), 8).unwrap();
        n.connect(Port::output(eb0, 0), Port::input(join, 0), 8).unwrap();
        n.connect(Port::output(eb1, 0), Port::input(join, 1), 8).unwrap();
        n.connect(Port::output(join, 0), Port::input(sink, 0), 8).unwrap();
        n.validate().unwrap();

        let err = retime_forward(&mut n, join).unwrap_err();
        assert!(err.to_string().contains("retracting"), "{err}");
    }

    #[test]
    fn retiming_rejects_non_combinational_nodes() {
        let (mut n, _add) = adder_with_input_buffers();
        let src = n.find_node("src0").unwrap().id;
        assert!(retime_forward(&mut n, src).is_err());
        assert!(retime_backward(&mut n, src).is_err());
    }
}
