//! Retraction-domain analysis for speculative early-evaluation multiplexors.
//!
//! A speculative producer (a shared module, or the early-evaluation
//! multiplexor it feeds) may *retract* a stopped token: the offered `V+`
//! disappears in the next cycle — without a transfer — when the scheduler's
//! prediction changes (Section 4.2 of the paper). Combinational consumers
//! (function blocks, muxes, forks) re-derive their valids every cycle and
//! propagate the retraction wave onward; the wave is harmless until it
//! reaches a node that keeps *commit state* across cycles. The one such node
//! in this netlist algebra is the fork: its per-branch delivery bookkeeping
//! commits a branch's copy the cycle the branch accepts it, so a branch can
//! observe (and act on) a token that its siblings later see retracted — a
//! **phantom token** (found by the `elastic-gen` differential fuzzer, corpus
//! entry 0003).
//!
//! A fork can only commit *partially* when some branch stalls while another
//! accepts; a fork whose branches can never stall completes atomically and is
//! immune — which is exactly why Figure 7(b) needs no isolation (its cone
//! past the multiplexor cannot stall) while an arbitrary generated
//! feed-forward cone does.
//!
//! This module computes, for one multiplexor:
//!
//! * the **retraction cone** — the combinational region reachable from the
//!   multiplexor output before a sequential node or environment cuts the
//!   wave;
//! * the **frontier** — where the cone is cut, with each cut node classified;
//! * the **hazards** — forks inside the cone with at least one stallable
//!   branch, each carrying the channel through which the wave enters it;
//!
//! and derives a *placed* isolation-buffer set: one bubble on the entry
//! channel of each hazardous fork — nothing anywhere else. On cyclic designs
//! the placement therefore only taxes the loop when the loop's own cone
//! actually escapes into a stallable fork (the ROADMAP's "cyclic speculation
//! into a stallable fork cone" corner); Figure 1(d) and Figure 7(b) receive
//! no buffer at all.
//!
//! ## Stallability, and its limits
//!
//! Whether a branch "can stall" is derived structurally, erring towards
//! *stallable* (which at worst places an unnecessary buffer — a performance
//! tax, never an unsoundness):
//!
//! * a sink stalls according to its back-pressure pattern;
//! * a standard buffer stalls only when it can fill: a buffer whose
//!   strongly-connected component carries fewer initial tokens than its
//!   capacity can never fill (the marked-graph cycle-token invariant — the
//!   Figure 7(b) accumulator, one loop token against capacity 2, is the
//!   paradigm case), and a feed-forward buffer fills only if its own
//!   consumer stalls;
//! * joins (multi-input functions, lazy muxes) stall unless every sibling
//!   operand is driven by an always-offering source;
//! * shared modules and variable-latency units can always stall.
//!
//! The cycle-token rule assumes token conservation around the component
//! (joins and forks synchronize; an early mux kills exactly the copies it
//! does not consume), which holds for every structure the transforms in this
//! crate build. The differential fuzzing battery re-checks every placement
//! dynamically, so an approximation error here surfaces as a reproducible
//! fuzz failure rather than silent data corruption.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::{CoreError, Result};
use crate::id::{ChannelId, NodeId};
use crate::kind::{BackpressurePattern, NodeKind, SourcePattern};
use crate::netlist::Netlist;
use crate::transform::insert_bubble;

/// Why the retraction cone stopped at a frontier node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierClass {
    /// An elastic buffer: its output valid is a function of its occupancy,
    /// so the wave never crosses it.
    Buffer,
    /// An in-order commit stage (same persistence argument as a buffer).
    Commit,
    /// A variable-latency unit (sequential).
    VarLatency,
    /// An environment node (sink) — commits only on real transfers.
    Environment,
}

/// One phantom-token hazard: a fork inside the cone that can stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetractionHazard {
    /// The fork whose per-branch bookkeeping could commit a phantom token.
    pub fork: NodeId,
    /// The channel through which the retraction wave reaches the fork — the
    /// placement site of the isolation buffer.
    pub entry: ChannelId,
    /// Branch indices that can stall (the partial-commit witnesses).
    pub stallable_branches: Vec<usize>,
}

/// The retraction domain of one speculative multiplexor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetractionDomain {
    /// The multiplexor the analysis started from.
    pub mux: NodeId,
    /// Combinational nodes the retraction wave can traverse (excludes the
    /// multiplexor itself).
    pub cone: Vec<NodeId>,
    /// Nodes that cut the wave, with their classification.
    pub frontier: Vec<(NodeId, FrontierClass)>,
    /// Stallable forks inside the cone, in breadth-first (wave) order.
    pub hazards: Vec<RetractionHazard>,
    /// `true` when the multiplexor's select and data inputs are all driven by
    /// persistent producers (buffers, commit stages, sources), in which case
    /// its output can never retract and the cone — whatever its shape — is
    /// hazard-free.
    pub inputs_persistent: bool,
}

impl RetractionDomain {
    /// `true` when no isolation buffer is needed.
    pub fn is_safe(&self) -> bool {
        self.inputs_persistent || self.hazards.is_empty()
    }
}

/// `true` when the back-pressure pattern can ever stall a producer — the
/// *semantic* reading of a sink's environment contract (a `List` of all
/// `false`, or a `Random` with probability zero, never stalls even though it
/// is not spelled `Never`). The retraction-domain analysis classifies fork
/// stallability with this predicate, and environment-injection harnesses
/// must use the same predicate when deciding which sinks may receive
/// stalling overrides: a sink whose declared contract cannot stall is a
/// load-bearing assumption of the placed isolation buffers.
pub fn backpressure_may_stall(pattern: &BackpressurePattern) -> bool {
    match pattern {
        BackpressurePattern::Never => false,
        BackpressurePattern::Every(_) => true,
        BackpressurePattern::List(stalls) => stalls.iter().any(|&s| s),
        BackpressurePattern::Random { probability, .. } => *probability > 0.0,
    }
}

/// `true` when the channel's producer re-offers a token every cycle until it
/// is consumed — i.e. the consumer never waits on it.
fn always_available(netlist: &Netlist, channel: &crate::netlist::Channel) -> bool {
    matches!(
        netlist.node(channel.from.node).map(|n| &n.kind),
        Some(NodeKind::Source(spec)) if matches!(spec.pattern, SourcePattern::Always)
    )
}

/// The strongly-connected component of `node` (nodes on some directed cycle
/// through it, or just `{node}` when it is not on any cycle).
fn strongly_connected_component(netlist: &Netlist, node: NodeId) -> BTreeSet<NodeId> {
    let reach = |start: NodeId, forward: bool| {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(current) = stack.pop() {
            if seen.insert(current) {
                let next = if forward {
                    netlist.successors(current)
                } else {
                    netlist.predecessors(current)
                };
                stack.extend(next);
            }
        }
        seen
    };
    let forward = reach(node, true);
    let backward = reach(node, false);
    forward.intersection(&backward).copied().collect()
}

/// Total initial tokens stored in the buffers of a node set.
fn component_tokens(netlist: &Netlist, component: &BTreeSet<NodeId>) -> i64 {
    component
        .iter()
        .filter_map(|&id| netlist.node(id))
        .filter_map(|n| n.as_buffer())
        .map(|spec| i64::from(spec.init_tokens.max(0)))
        .sum()
}

/// Structural can-this-channel-ever-be-stopped analysis (see module docs).
struct StallAnalysis<'a> {
    netlist: &'a Netlist,
    memo: BTreeMap<ChannelId, bool>,
    visiting: BTreeSet<ChannelId>,
}

impl<'a> StallAnalysis<'a> {
    fn new(netlist: &'a Netlist) -> Self {
        StallAnalysis { netlist, memo: BTreeMap::new(), visiting: BTreeSet::new() }
    }

    fn can_stall(&mut self, channel: ChannelId) -> bool {
        if let Some(&known) = self.memo.get(&channel) {
            return known;
        }
        // A back edge of the traversal: assume the cycle itself does not
        // originate a stall — stalls that matter come from buffers that can
        // fill, adversarial schedulers and environments, all of which are
        // classified before recursing.
        if !self.visiting.insert(channel) {
            return false;
        }
        let result = self.consumer_can_stall(channel);
        self.visiting.remove(&channel);
        self.memo.insert(channel, result);
        result
    }

    fn output_can_stall(&mut self, node: NodeId) -> bool {
        let outputs: Vec<ChannelId> =
            self.netlist.output_channels(node).iter().map(|c| c.id).collect();
        outputs.into_iter().any(|c| self.can_stall(c))
    }

    fn consumer_can_stall(&mut self, channel: ChannelId) -> bool {
        let Some(channel) = self.netlist.channel(channel) else { return true };
        let consumer = channel.to.node;
        let Some(node) = self.netlist.node(consumer) else { return true };
        match &node.kind {
            NodeKind::Sink(spec) => backpressure_may_stall(&spec.backpressure),
            NodeKind::Buffer(spec) => {
                if spec.init_tokens >= spec.capacity as i32 {
                    return true; // born full
                }
                if spec.backward_latency == 0 {
                    // Stop traverses the Figure-5 buffer combinationally.
                    return self.output_can_stall(consumer);
                }
                // A standard buffer stalls only once full. On a cycle, its
                // occupancy is bounded by the component's circulating tokens;
                // feed-forward, it fills only if its own consumer stalls.
                let component = strongly_connected_component(self.netlist, consumer);
                if component.len() > 1
                    && component_tokens(self.netlist, &component) < i64::from(spec.capacity)
                {
                    return false;
                }
                self.output_can_stall(consumer)
            }
            NodeKind::Commit(_) => self.output_can_stall(consumer),
            NodeKind::Function(spec) => {
                if spec.inputs > 1 {
                    let siblings_available = self
                        .netlist
                        .input_channels(consumer)
                        .iter()
                        .filter(|c| c.id != channel.id)
                        .all(|c| always_available(self.netlist, c));
                    if !siblings_available {
                        return true;
                    }
                }
                self.output_can_stall(consumer)
            }
            NodeKind::Fork(_) => {
                let branches: Vec<ChannelId> =
                    self.netlist.output_channels(consumer).iter().map(|c| c.id).collect();
                branches.into_iter().any(|c| self.can_stall(c))
            }
            // A multiplexor waits on its select and the selected data (and an
            // early mux stops the non-selected channels by design); shared
            // modules stall every non-granted user; variable-latency units
            // stall while recomputing. All conservatively stallable.
            NodeKind::Mux(_) | NodeKind::Shared(_) | NodeKind::VarLatency(_) => true,
            NodeKind::Source(_) => true, // unreachable: sources have no inputs
        }
    }
}

/// Nodes combinationally downstream of a lazy fork's branches: while the
/// fork's rendezvous is unresolved, tokens in this region are *withheld*
/// (the lazy fork offers nothing until every branch is ready), so nothing
/// in it can hold an operand across a consumer's stall cycle. Consumers
/// whose protocol needs operand persistence — shared modules, variable-
/// latency units — must not be placed (or created by a transform) inside
/// this region.
pub fn lazy_tainted_nodes(netlist: &Netlist) -> BTreeSet<NodeId> {
    let mut tainted = BTreeSet::new();
    for fork in
        netlist.live_nodes().filter(|n| matches!(&n.kind, NodeKind::Fork(spec) if !spec.eager))
    {
        tainted.insert(fork.id);
        let mut stack: Vec<NodeId> =
            netlist.output_channels(fork.id).iter().map(|c| c.to.node).collect();
        while let Some(node) = stack.pop() {
            let transparent = netlist.node(node).is_some_and(|n| n.kind.is_combinational());
            if transparent && tainted.insert(node) {
                stack.extend(netlist.successors(node));
            }
        }
    }
    tainted
}

/// Lazy forks caught in a register-unbalanced rendezvous — dead by
/// construction.
///
/// A lazy fork delivers all branch copies in the same cycle, so when two of
/// its branches reconverge at a common consumer the branch paths must carry
/// the *same* storage: if one branch reaches the reconvergence point
/// combinationally while another only reaches it through a buffer, the
/// consumer waits for the buffered token, the buffered token waits for the
/// fork to fire, and the fork waits for the combinational branch's consumer
/// — the same consumer. No settle-seed policy can save this composition;
/// its dead fixpoint is the *only* fixpoint. This is the structural lint
/// the ROADMAP's lazy-to-lazy item called for: generators (and designers)
/// demote such forks to eager, whose per-branch delivery tolerates the
/// skew.
pub fn ill_formed_lazy_forks(netlist: &Netlist) -> Vec<NodeId> {
    let combinational = |start: NodeId| -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            let transparent = netlist.node(node).is_some_and(|n| n.kind.is_combinational());
            if seen.insert(node) && transparent {
                stack.extend(netlist.successors(node));
            }
        }
        seen
    };
    let everything = |start: NodeId| -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if seen.insert(node) {
                stack.extend(netlist.successors(node));
            }
        }
        seen
    };

    let mut ill_formed = Vec::new();
    for fork in
        netlist.live_nodes().filter(|n| matches!(&n.kind, NodeKind::Fork(spec) if !spec.eager))
    {
        let branches = netlist.output_channels(fork.id);
        let comb: Vec<BTreeSet<NodeId>> =
            branches.iter().map(|b| combinational(b.to.node)).collect();
        let full: Vec<BTreeSet<NodeId>> = branches.iter().map(|b| everything(b.to.node)).collect();
        let unbalanced = (0..branches.len()).any(|i| {
            (0..branches.len()).filter(|&j| j != i).any(|j| {
                comb[i].iter().any(|node| {
                    *node != fork.id && full[j].contains(node) && !comb[j].contains(node)
                })
            })
        });
        // A consumer that keeps *cross-cycle commit state* must never be fed
        // through a lazy fork, because the fork may withdraw its tokens
        // mid-protocol (withholding is a legal retraction for a lazy fork):
        //
        // * a variable-latency unit advances its exact-recompute state
        //   machine, and a shared module its starvation/scheduler state,
        //   only while the stalled operands stay valid — withdrawal freezes
        //   them forever;
        // * an eager fork holds per-branch delivery bookkeeping while its
        //   input token waits — withdrawal resets the bookkeeping after
        //   some branches already committed their copies (duplicated
        //   tokens), or wedges the region outright.
        let stalls_with_memory =
            comb.iter().flatten().any(|node| match netlist.node(*node).map(|n| &n.kind) {
                Some(NodeKind::VarLatency(_) | NodeKind::Shared(_)) => true,
                Some(NodeKind::Fork(spec)) => spec.eager,
                _ => false,
            });
        // A lazy fork with two or more *independently stalling* branches can
        // livelock on phase alignment alone (e.g. two periodic sinks whose
        // free cycles never coincide — the rendezvous requires all branches
        // ready in the same cycle, and no settle policy can make periods
        // align). One stalling branch is fine: the others are always ready,
        // so the rendezvous completes whenever that branch's drain is free.
        let mut stall = StallAnalysis::new(netlist);
        let stalling_branches = branches.iter().filter(|b| stall.can_stall(b.id)).count();
        if unbalanced || stalls_with_memory || stalling_branches > 1 {
            ill_formed.push(fork.id);
        }
    }
    ill_formed
}

/// `true` when the producer of `channel` never retracts an offered token:
/// its `V+` is a function of sequential state (buffers, commit stages) or of
/// a committed environment stream (sources hold a stopped offer).
fn producer_is_persistent(netlist: &Netlist, channel: &crate::netlist::Channel) -> bool {
    matches!(
        netlist.node(channel.from.node).map(|n| &n.kind),
        Some(NodeKind::Buffer(_) | NodeKind::Commit(_) | NodeKind::Source(_))
    )
}

/// Computes the retraction domain of `mux`.
///
/// # Errors
///
/// Fails when `mux` does not exist or is not a multiplexor.
pub fn retraction_domain(netlist: &Netlist, mux: NodeId) -> Result<RetractionDomain> {
    let node = netlist.require_node(mux)?;
    if node.as_mux().is_none() {
        return Err(CoreError::Precondition {
            transform: "retraction_domain",
            reason: format!("{mux} is a {} node, not a multiplexor", node.kind.kind_name()),
        });
    }

    // When every input of the multiplexor is driven by a persistent producer
    // its own output can never retract: the selected data token and the
    // select token both stay put until consumed, so the offered output holds.
    let inputs_persistent =
        netlist.input_channels(mux).iter().all(|channel| producer_is_persistent(netlist, channel));

    let mut cone: Vec<NodeId> = Vec::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut frontier: Vec<(NodeId, FrontierClass)> = Vec::new();
    let mut hazards: Vec<RetractionHazard> = Vec::new();
    let mut stall = StallAnalysis::new(netlist);

    // Breadth-first wave from the multiplexor output.
    let mut queue: VecDeque<ChannelId> =
        netlist.output_channels(mux).iter().map(|c| c.id).collect();
    seen.insert(mux);
    while let Some(channel_id) = queue.pop_front() {
        let Some(channel) = netlist.channel(channel_id) else { continue };
        let consumer = channel.to.node;
        let Some(consumer_node) = netlist.node(consumer) else { continue };
        match &consumer_node.kind {
            NodeKind::Buffer(_) => {
                if seen.insert(consumer) {
                    frontier.push((consumer, FrontierClass::Buffer));
                }
                continue;
            }
            NodeKind::Commit(_) => {
                if seen.insert(consumer) {
                    frontier.push((consumer, FrontierClass::Commit));
                }
                continue;
            }
            NodeKind::VarLatency(_) => {
                if seen.insert(consumer) {
                    frontier.push((consumer, FrontierClass::VarLatency));
                }
                continue;
            }
            NodeKind::Sink(_) | NodeKind::Source(_) => {
                if seen.insert(consumer) {
                    frontier.push((consumer, FrontierClass::Environment));
                }
                continue;
            }
            NodeKind::Fork(_) => {
                if !seen.insert(consumer) {
                    continue;
                }
                cone.push(consumer);
                let stallable_branches: Vec<usize> = netlist
                    .output_channels(consumer)
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| stall.can_stall(c.id))
                    .map(|(index, _)| index)
                    .collect();
                if !stallable_branches.is_empty() {
                    hazards.push(RetractionHazard {
                        fork: consumer,
                        entry: channel_id,
                        stallable_branches,
                    });
                }
                for branch in netlist.output_channels(consumer) {
                    queue.push_back(branch.id);
                }
            }
            NodeKind::Function(_) | NodeKind::Mux(_) | NodeKind::Shared(_) => {
                if !seen.insert(consumer) {
                    continue;
                }
                cone.push(consumer);
                for output in netlist.output_channels(consumer) {
                    queue.push_back(output.id);
                }
            }
        }
    }

    Ok(RetractionDomain { mux, cone, frontier, hazards, inputs_persistent })
}

/// Inserts the isolation buffers the retraction domain of `mux` demands:
/// one bubble on the entry channel of each stallable fork the wave can
/// reach, and nothing anywhere else. Returns the inserted buffer ids (empty
/// when the domain is already safe — Figures 1(d) and 7(b) both are).
///
/// The domain is recomputed after every insertion: a bubble in front of the
/// first hazardous fork also cuts the wave towards everything behind it, so
/// forks that were only reachable through it never receive a redundant
/// buffer. The placement is *minimal* in the sense that removing any placed
/// buffer re-exposes at least one hazard (checked property-based in
/// `elastic-gen`).
///
/// # Errors
///
/// Fails when `mux` does not exist or is not a multiplexor, or when a
/// placement site refuses the bubble (a hazard entry inside a lazy fork's
/// rendezvous region). The placement is **atomic**: on any error the
/// netlist is left exactly as it was — no partial buffer set.
pub fn place_isolation_buffers(netlist: &mut Netlist, mux: NodeId) -> Result<Vec<NodeId>> {
    // Fail-fast path: a safe domain places nothing and needs no scratch copy.
    if retraction_domain(netlist, mux)?.is_safe() {
        return Ok(Vec::new());
    }
    // Work on a scratch copy so a refused insertion (lazy-rendezvous side
    // condition) cannot leave earlier bubbles behind.
    let mut working = netlist.clone();
    let mut placed = Vec::new();
    loop {
        let domain = retraction_domain(&working, mux)?;
        if domain.is_safe() {
            *netlist = working;
            return Ok(placed);
        }
        let hazard = domain.hazards.first().expect("not safe implies a hazard");
        placed.push(insert_bubble(&mut working, hazard.entry)?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Port;
    use crate::kind::{BufferSpec, ForkSpec, MuxSpec, SinkSpec, SourceSpec};
    use crate::op::{opaque, Op};

    /// `sel/src0·via/src1 → mux → blk → fork → {sink, stalling sink}`: the
    /// feed-forward shape whose fork partially commits under back-pressure.
    /// One data input arrives through a function block, so the mux's inputs
    /// are not all persistent and its output can retract.
    fn stallable_cone() -> (Netlist, NodeId, NodeId) {
        let mut n = Netlist::new("stallable");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let via = n.add_op("via", Op::Identity);
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::early(2));
        let blk = n.add_op("blk", opaque("B", 4, 60));
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let sink0 = n.add_sink("sink0", SinkSpec::always_ready());
        let sink1 = n.add_sink("sink1", SinkSpec { backpressure: BackpressurePattern::Every(3) });
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(via, 0), 8).unwrap();
        n.connect(Port::output(via, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(blk, 0), 8).unwrap();
        n.connect(Port::output(blk, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(sink0, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink1, 0), 8).unwrap();
        n.validate().unwrap();
        (n, mux, fork)
    }

    /// The Figure-7(b) cone shape: `mux → wrap → encode → fork → {EB loop,
    /// always-ready sink}` with one token circulating against capacity 2 —
    /// the fork cannot stall.
    fn fig7b_like_cone() -> (Netlist, NodeId, NodeId) {
        let mut n = Netlist::new("fig7b_cone");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::early(2));
        let wrap = n.add_op("wrap", Op::Mask { width: 8 });
        let encode = n.add_op("encode", opaque("E", 3, 40));
        let fork = n.add_fork("out_fork", ForkSpec::eager(2));
        let state = n.add_buffer("state", BufferSpec::standard(1));
        let back = n.add_op("back", Op::Identity);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        // The loop: state feeds the mux's other data input, closing the cycle
        // through the fork — one initial token, buffer capacity 2.
        n.connect(Port::output(mux, 0), Port::input(wrap, 0), 8).unwrap();
        n.connect(Port::output(wrap, 0), Port::input(encode, 0), 8).unwrap();
        n.connect(Port::output(encode, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(state, 0), 8).unwrap();
        n.connect(Port::output(state, 0), Port::input(back, 0), 8).unwrap();
        n.connect(Port::output(back, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
        n.validate().unwrap();
        (n, mux, fork)
    }

    #[test]
    fn a_non_stallable_cone_gets_zero_isolation_buffers() {
        let (mut n, mux, fork) = fig7b_like_cone();
        let domain = retraction_domain(&n, mux).unwrap();
        assert!(domain.cone.contains(&fork), "the fork is inside the cone");
        assert!(domain.hazards.is_empty(), "one loop token against capacity 2 cannot stall");
        assert!(domain.is_safe());
        let before = n.node_count();
        let placed = place_isolation_buffers(&mut n, mux).unwrap();
        assert!(placed.is_empty());
        assert_eq!(n.node_count(), before, "the netlist must be untouched");
    }

    #[test]
    fn a_stallable_fork_cone_gets_exactly_one_buffer_at_the_fork() {
        let (mut n, mux, fork) = stallable_cone();
        let domain = retraction_domain(&n, mux).unwrap();
        assert_eq!(domain.hazards.len(), 1);
        assert_eq!(domain.hazards[0].fork, fork);
        assert_eq!(domain.hazards[0].stallable_branches, vec![1]);

        let placed = place_isolation_buffers(&mut n, mux).unwrap();
        assert_eq!(placed.len(), 1, "exactly one bubble, at the hazardous fork");
        n.validate().unwrap();
        // The bubble sits on the fork's input channel.
        let feeder = n.channel_into(Port::input(fork, 0)).unwrap().from.node;
        assert_eq!(feeder, placed[0]);
        // And the domain is now safe.
        assert!(retraction_domain(&n, mux).unwrap().is_safe());
    }

    #[test]
    fn persistent_inputs_make_any_cone_safe() {
        let (mut n, mux, _fork) = stallable_cone();
        let domain = retraction_domain(&n, mux).unwrap();
        assert!(!domain.inputs_persistent, "the `via` block makes data input 0 retractable");
        assert!(!domain.is_safe());
        // Buffer the combinational input: every mux input is now driven by a
        // persistent producer, the output can no longer retract, and the
        // (unchanged, stallable) cone stops mattering.
        let via_ch = n.channel_into(Port::input(mux, 1)).unwrap().id;
        crate::transform::insert_bubble(&mut n, via_ch).unwrap();
        n.validate().unwrap();
        let domain = retraction_domain(&n, mux).unwrap();
        assert!(domain.inputs_persistent);
        assert!(domain.is_safe());
        assert_eq!(domain.hazards.len(), 1, "the cone itself still contains the stallable fork");
        assert!(place_isolation_buffers(&mut n, mux).unwrap().is_empty());
    }

    #[test]
    fn the_analysis_rejects_non_mux_nodes() {
        let (n, _mux, fork) = stallable_cone();
        assert!(retraction_domain(&n, fork).is_err());
    }

    #[test]
    fn sequential_frontiers_cut_the_cone() {
        let mut n = Netlist::new("cut");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::early(2));
        let eb = n.add_buffer("eb", BufferSpec::standard(0));
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let sink0 = n.add_sink("sink0", SinkSpec { backpressure: BackpressurePattern::Every(2) });
        let sink1 = n.add_sink("sink1", SinkSpec { backpressure: BackpressurePattern::Every(3) });
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(sink0, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink1, 0), 8).unwrap();
        n.validate().unwrap();
        let domain = retraction_domain(&n, mux).unwrap();
        // The buffer cuts the wave before the (stallable) fork.
        assert!(domain.cone.is_empty());
        assert_eq!(domain.frontier, vec![(eb, FrontierClass::Buffer)]);
        assert!(domain.hazards.is_empty());
    }
}
