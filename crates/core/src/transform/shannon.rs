//! Shannon decomposition (multiplexor retiming).
//!
//! Given a multiplexor whose output feeds a combinational block `F`, Shannon
//! decomposition moves `F` from the output of the multiplexor to each of its
//! data inputs (Section 2, Figure 1(c), and ref \[14\] in the paper). The copies
//! `F_0 … F_{k-1}` can then execute in parallel with the logic producing the
//! select signal, shortening the critical cycle at the price of duplicated
//! logic — duplication that the sharing transformation
//! ([`crate::transform::share_mux_inputs`]) later removes by introducing
//! speculation.
//!
//! When `F` has operands other than the multiplexor output, those operands
//! are forked to every copy.

use crate::error::{CoreError, Result};
use crate::id::{NodeId, Port};
use crate::kind::{ForkSpec, NodeKind};
use crate::netlist::Netlist;

/// Outcome of a [`shannon_decompose`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShannonReport {
    /// The multiplexor that was retimed.
    pub mux: NodeId,
    /// The block that was moved from the multiplexor output to its inputs.
    pub moved_block: NodeId,
    /// The copies created on each data input, in data-input order.
    pub copies: Vec<NodeId>,
    /// Forks created to distribute side operands of the moved block.
    pub forks: Vec<NodeId>,
}

/// Applies Shannon decomposition to `mux`.
///
/// Preconditions:
///
/// * `mux` is a multiplexor whose output feeds a single combinational
///   function block `F` (point-to-point channels make "single" structural);
/// * `F` does not feed the select input of `mux` combinationally through its
///   own output (that would be a zero-latency cycle — impossible in a valid
///   netlist anyway because the select comes from somewhere else).
///
/// The transformation:
///
/// 1. creates one copy of `F` per data input of the multiplexor,
/// 2. re-targets each data-input channel onto the corresponding copy's
///    mux-operand port and wires the copy's output to the multiplexor,
/// 3. forks every side operand of `F` to all copies,
/// 4. reconnects the multiplexor output to whatever `F` used to drive and
///    removes the original `F`.
///
/// # Errors
///
/// Fails with [`CoreError::Precondition`] when the structural preconditions
/// do not hold.
pub fn shannon_decompose(netlist: &mut Netlist, mux: NodeId) -> Result<ShannonReport> {
    let mux_node = netlist.require_node(mux)?;
    let mux_spec = match mux_node.as_mux() {
        Some(spec) => *spec,
        None => {
            return Err(CoreError::Precondition {
                transform: "shannon_decompose",
                reason: format!("{mux} is a {} node, not a multiplexor", mux_node.kind.kind_name()),
            })
        }
    };

    // The block F fed by the multiplexor output.
    let mux_out_channel = netlist
        .channel_from(Port::output(mux, 0))
        .map(|c| (c.id, c.to))
        .ok_or(CoreError::UnconnectedPort { node: mux, index: 0, is_input: false })?;
    let block = mux_out_channel.1.node;
    let block_operand_index = mux_out_channel.1.index;
    let block_node = netlist.require_node(block)?;
    let block_spec = match &block_node.kind {
        NodeKind::Function(spec) => spec.clone(),
        other => {
            return Err(CoreError::Precondition {
                transform: "shannon_decompose",
                reason: format!(
                    "the multiplexor output feeds a {} node; only function blocks can be retimed \
                     through a multiplexor",
                    other.kind_name()
                ),
            })
        }
    };
    let block_name = block_node.name.clone();

    // Output channel of F (what the decomposed design's mux will drive).
    let block_out_channel = netlist
        .channel_from(Port::output(block, 0))
        .map(|c| c.id)
        .ok_or(CoreError::UnconnectedPort { node: block, index: 0, is_input: false })?;
    let block_out_width = netlist.require_channel(block_out_channel)?.width;
    // Width of the mux→F wire: the truncation point every selected token
    // passes through before reaching F. The decomposition must preserve it
    // (see step 2) — a *narrowing* mux masks each operand to this width.
    let mux_out_width = netlist.require_channel(mux_out_channel.0)?.width;

    // Data-input channels of the multiplexor (ports 1..=k).
    let mut data_channels = Vec::with_capacity(mux_spec.data_inputs);
    for data_index in 0..mux_spec.data_inputs {
        let port = Port::input(mux, 1 + data_index);
        let channel =
            netlist.channel_into(port).map(|c| c.id).ok_or(CoreError::UnconnectedPort {
                node: mux,
                index: 1 + data_index,
                is_input: true,
            })?;
        data_channels.push(channel);
    }

    // Side operands of F (all inputs except the one fed by the multiplexor).
    let mut side_operands = Vec::new();
    for operand in 0..block_spec.inputs {
        if operand == block_operand_index {
            continue;
        }
        let channel = netlist
            .channel_into(Port::input(block, operand))
            .map(|c| c.id)
            .ok_or(CoreError::UnconnectedPort { node: block, index: operand, is_input: true })?;
        side_operands.push((operand, channel));
    }

    // 1. Create the copies.
    let mut copies = Vec::with_capacity(mux_spec.data_inputs);
    for data_index in 0..mux_spec.data_inputs {
        let copy = netlist.add_function(format!("{block_name}_sh{data_index}"), block_spec.clone());
        copies.push(copy);
    }

    // 2. Re-target each data-input channel onto its copy and wire the copy to
    //    the multiplexor. Before the transformation every selected token was
    //    masked by the mux→F wire; moving F onto the data inputs would lose
    //    that truncation for a *narrowing* mux (data input wider than the
    //    output wire), so the re-targeted channel is re-declared at the old
    //    mux-output width whenever it was wider — the producer then masks the
    //    operand exactly as the removed wire did. Widening inputs keep their
    //    width (masking to a wider wire was already the identity).
    for (data_index, (&channel, &copy)) in data_channels.iter().zip(&copies).enumerate() {
        netlist.set_channel_target(channel, Port::input(copy, block_operand_index))?;
        if let Some(data_channel) = netlist.channel_mut(channel) {
            data_channel.width = data_channel.width.min(mux_out_width);
        }
        netlist.connect_named(
            format!("{block_name}_sh{data_index}_out"),
            Port::output(copy, 0),
            Port::input(mux, 1 + data_index),
            block_out_width,
        )?;
    }

    // 3. Fork every side operand of F to all copies.
    let mut forks = Vec::new();
    for (operand, channel) in side_operands {
        let width = netlist.require_channel(channel)?.width;
        let fork = netlist.add_fork(
            format!("{block_name}_op{operand}_fork"),
            ForkSpec::eager(mux_spec.data_inputs),
        );
        netlist.set_channel_target(channel, Port::input(fork, 0))?;
        for (branch, &copy) in copies.iter().enumerate() {
            netlist.connect_named(
                format!("{block_name}_op{operand}_fork{branch}"),
                Port::output(fork, branch),
                Port::input(copy, operand),
                width,
            )?;
        }
        forks.push(fork);
    }

    // 4. The multiplexor now drives whatever F used to drive; remove F.
    netlist.remove_channel(mux_out_channel.0)?;
    netlist.set_channel_source(block_out_channel, Port::output(mux, 0))?;
    netlist.remove_node(block)?;

    Ok(ShannonReport { mux, moved_block: block, copies, forks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{FunctionSpec, MuxSpec, SinkSpec, SourceSpec};
    use crate::op::{opaque, Op};

    /// The Figure-1(a) style structure used by the unit tests:
    ///
    /// ```text
    /// src0 ──► mux ──► F ──► sink
    /// src1 ──►  │
    /// sel  ──►──┘
    /// ```
    fn mux_then_f(single_operand: bool) -> (Netlist, NodeId, NodeId) {
        let mut n = Netlist::new("shannon");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = if single_operand {
            n.add_op("f", opaque("F", 6, 100))
        } else {
            n.add_function("f", FunctionSpec::with_inputs(Op::Add, 2))
        };
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        if !single_operand {
            let side = n.add_source("side", SourceSpec::always());
            n.connect(Port::output(side, 0), Port::input(f, 1), 8).unwrap();
        }
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
        (n, mux, f)
    }

    #[test]
    fn decomposition_duplicates_the_block_onto_each_data_input() {
        let (mut n, mux, f) = mux_then_f(true);
        let report = shannon_decompose(&mut n, mux).unwrap();
        n.validate().unwrap();
        assert_eq!(report.copies.len(), 2);
        assert!(report.forks.is_empty());
        assert!(n.node(f).is_none(), "the original block is removed");
        // The mux now drives the sink directly.
        let sink = n.find_node("sink").unwrap().id;
        let mux_out = n.channel_from(Port::output(mux, 0)).unwrap();
        assert_eq!(mux_out.to.node, sink);
        // Each data input of the mux is driven by a copy of F.
        for data_index in 0..2 {
            let driver = n.channel_into(Port::input(mux, 1 + data_index)).unwrap().from.node;
            assert!(report.copies.contains(&driver));
        }
    }

    #[test]
    fn side_operands_are_forked_to_all_copies() {
        let (mut n, mux, _f) = mux_then_f(false);
        let report = shannon_decompose(&mut n, mux).unwrap();
        n.validate().unwrap();
        assert_eq!(report.copies.len(), 2);
        assert_eq!(report.forks.len(), 1);
        let fork = report.forks[0];
        assert_eq!(n.output_channels(fork).len(), 2);
        // The side source drives the fork.
        let side = n.find_node("side").unwrap().id;
        assert_eq!(n.channel_from(Port::output(side, 0)).unwrap().to.node, fork);
    }

    #[test]
    fn decomposition_requires_a_mux() {
        let (mut n, _mux, f) = mux_then_f(true);
        assert!(matches!(shannon_decompose(&mut n, f), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn decomposition_requires_a_function_after_the_mux() {
        let mut n = Netlist::new("t");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(sink, 0), 8).unwrap();
        assert!(matches!(shannon_decompose(&mut n, mux), Err(CoreError::Precondition { .. })));
    }

    #[test]
    fn narrowing_mux_operand_channels_are_remasked_to_the_old_wire_width() {
        // 12-bit data inputs through an 8-bit mux→F wire: the wire is the
        // masking point every selected token passes through. After the
        // decomposition the re-targeted data channels must carry that 8-bit
        // truncation, or the moved copies would compute on unmasked operands.
        let mut n = Netlist::new("shannon_narrow");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 12).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 12).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();

        let report = shannon_decompose(&mut n, mux).unwrap();
        n.validate().unwrap();
        for &copy in &report.copies {
            let operand = n.channel_into(Port::input(copy, 0)).unwrap();
            assert_eq!(
                operand.width, 8,
                "the re-targeted operand channel must narrow to the old mux-output width"
            );
        }
    }

    #[test]
    fn widening_mux_operand_channels_keep_their_width() {
        // 4-bit data inputs through an 8-bit wire: masking to a wider wire is
        // the identity, so the operand channels must stay 4 bits.
        let mut n = Netlist::new("shannon_widen");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 4).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 4).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();

        let report = shannon_decompose(&mut n, mux).unwrap();
        n.validate().unwrap();
        for &copy in &report.copies {
            assert_eq!(n.channel_into(Port::input(copy, 0)).unwrap().width, 4);
        }
    }

    #[test]
    fn node_and_channel_counts_grow_as_expected() {
        let (mut n, mux, _f) = mux_then_f(true);
        let nodes_before = n.node_count();
        let report = shannon_decompose(&mut n, mux).unwrap();
        // F removed, two copies added: net +1 node.
        assert_eq!(n.node_count(), nodes_before + report.copies.len() - 1);
    }
}
