//! Sharing of duplicated logic behind a speculative shared module.
//!
//! After Shannon decomposition the logic block appears once per data input of
//! the multiplexor (Figure 1(c)). Sharing merges the copies into a single
//! *shared elastic module* (Figure 1(d) and Section 4.1): a scheduler decides
//! every cycle which input channel may use the shared logic, thereby
//! implicitly predicting the select value of the downstream multiplexor —
//! this is where speculation enters the design.

use crate::error::{CoreError, Result};
use crate::id::{NodeId, Port};
use crate::kind::{BufferSpec, FunctionSpec, MuxSpec, NodeKind, SchedulerKind, SharedSpec};
use crate::netlist::Netlist;

/// Options controlling [`share_mux_inputs`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShareOptions {
    /// Prediction policy installed in the shared module.
    pub scheduler: SchedulerKind,
    /// Recovery buffer inserted between each shared-module output and the
    /// corresponding multiplexor data input. `None` reproduces Figure 1(d)
    /// (no buffers, `Lf = Lb = 0` between module and multiplexor).
    pub recovery_buffer: Option<BufferSpec>,
    /// Starvation override installed in the shared module controller so the
    /// leads-to property holds for any scheduler (see [`SharedSpec`]).
    pub starvation_limit: Option<u32>,
    /// Require the multiplexor to use early evaluation (the paper's flow
    /// always enables it before sharing; disable only for experiments).
    pub require_early_eval: bool,
}

impl Default for ShareOptions {
    fn default() -> Self {
        ShareOptions {
            scheduler: SchedulerKind::default(),
            recovery_buffer: None,
            starvation_limit: Some(64),
            require_early_eval: true,
        }
    }
}

/// Outcome of a [`share_mux_inputs`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareReport {
    /// The multiplexor whose data inputs are now speculated.
    pub mux: NodeId,
    /// The shared module that replaced the duplicated blocks.
    pub shared: NodeId,
    /// The duplicated blocks that were removed, in data-input order.
    pub merged_blocks: Vec<NodeId>,
    /// Recovery buffers inserted on the shared module outputs (empty when
    /// [`ShareOptions::recovery_buffer`] is `None`).
    pub recovery_buffers: Vec<NodeId>,
}

/// Merges the identical function blocks driving every data input of `mux`
/// into a single speculative shared module.
///
/// Preconditions:
///
/// * `mux` is a multiplexor (with early evaluation enabled unless
///   [`ShareOptions::require_early_eval`] is cleared);
/// * every data input of `mux` is driven by a function block;
/// * all those blocks compute the same operation with the same arity.
///
/// # Errors
///
/// Fails with [`CoreError::Precondition`] when the structure does not match.
pub fn share_mux_inputs(
    netlist: &mut Netlist,
    mux: NodeId,
    options: &ShareOptions,
) -> Result<ShareReport> {
    let mux_node = netlist.require_node(mux)?;
    let mux_spec: MuxSpec = match mux_node.as_mux() {
        Some(spec) => *spec,
        None => {
            return Err(CoreError::Precondition {
                transform: "share_mux_inputs",
                reason: format!("{mux} is a {} node, not a multiplexor", mux_node.kind.kind_name()),
            })
        }
    };
    if options.require_early_eval && !mux_spec.early_eval {
        return Err(CoreError::Precondition {
            transform: "share_mux_inputs",
            reason: "the multiplexor must use early evaluation so that anti-tokens cancel the \
                     non-selected speculation (apply enable_early_evaluation first)"
                .into(),
        });
    }

    // Collect the duplicated blocks on the data inputs.
    let mut blocks: Vec<NodeId> = Vec::with_capacity(mux_spec.data_inputs);
    let mut common_spec: Option<FunctionSpec> = None;
    for data_index in 0..mux_spec.data_inputs {
        let channel = netlist.channel_into(Port::input(mux, 1 + data_index)).ok_or(
            CoreError::UnconnectedPort { node: mux, index: 1 + data_index, is_input: true },
        )?;
        let driver = channel.from.node;
        let driver_node = netlist.require_node(driver)?;
        let spec = match &driver_node.kind {
            NodeKind::Function(spec) => spec.clone(),
            other => {
                return Err(CoreError::Precondition {
                    transform: "share_mux_inputs",
                    reason: format!(
                        "data input {data_index} of {mux} is driven by a {} node, not a function \
                         block",
                        other.kind_name()
                    ),
                })
            }
        };
        if let Some(existing) = &common_spec {
            if *existing != spec {
                return Err(CoreError::Precondition {
                    transform: "share_mux_inputs",
                    reason: format!(
                        "data inputs of {mux} are driven by different operations (`{}` vs `{}`); \
                         only identical logic can be shared",
                        existing.op.mnemonic(),
                        spec.op.mnemonic()
                    ),
                });
            }
        } else {
            common_spec = Some(spec);
        }
        blocks.push(driver);
    }
    let block_spec = common_spec.expect("mux has at least two data inputs");
    let users = mux_spec.data_inputs;
    let operands = block_spec.inputs;

    // Create the shared module.
    let shared_spec = SharedSpec {
        users,
        inputs_per_user: operands,
        op: block_spec.op.clone(),
        scheduler: options.scheduler.clone(),
        starvation_limit: options.starvation_limit,
    };
    let base_name = netlist.require_node(blocks[0])?.name.clone();
    let shared = netlist.add_shared(format!("{base_name}_shared"), shared_spec);

    // Re-wire: operands of each duplicated block feed the shared module, the
    // shared module outputs feed the multiplexor.
    let mut merged_blocks = Vec::with_capacity(users);
    for (user, &block) in blocks.iter().enumerate() {
        for operand in 0..operands {
            let channel = netlist.channel_into(Port::input(block, operand)).map(|c| c.id).ok_or(
                CoreError::UnconnectedPort { node: block, index: operand, is_input: true },
            )?;
            netlist.set_channel_target(channel, Port::input(shared, user * operands + operand))?;
        }
        // Remove the block -> mux channel and replace it by shared.out(user) -> mux.
        let out_channel = netlist
            .channel_from(Port::output(block, 0))
            .map(|c| (c.id, c.width))
            .ok_or(CoreError::UnconnectedPort { node: block, index: 0, is_input: false })?;
        netlist.remove_channel(out_channel.0)?;
        netlist.connect_named(
            format!("{base_name}_shared_out{user}"),
            Port::output(shared, user),
            Port::input(mux, 1 + user),
            out_channel.1,
        )?;
        netlist.remove_node(block)?;
        merged_blocks.push(block);
    }

    // Optional recovery buffers between the shared module and the multiplexor.
    let recovery_buffers = match options.recovery_buffer {
        Some(spec) => super::insert_recovery_buffers(netlist, shared, spec)?,
        None => Vec::new(),
    };

    Ok(ShareReport { mux, shared, merged_blocks, recovery_buffers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{MuxSpec, SinkSpec, SourceSpec};
    use crate::op::opaque;
    use crate::transform::{enable_early_evaluation, shannon_decompose};

    /// Builds the Figure-1(c) structure by Shannon-decomposing a mux→F chain.
    fn decomposed() -> (Netlist, NodeId) {
        let mut n = Netlist::new("share");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
        shannon_decompose(&mut n, mux).unwrap();
        (n, mux)
    }

    #[test]
    fn sharing_replaces_copies_with_one_shared_module() {
        let (mut n, mux) = decomposed();
        enable_early_evaluation(&mut n, mux).unwrap();
        let report = share_mux_inputs(&mut n, mux, &ShareOptions::default()).unwrap();
        n.validate().unwrap();
        assert_eq!(report.merged_blocks.len(), 2);
        let histogram = n.kind_histogram();
        assert_eq!(histogram.get("shared"), Some(&1));
        assert_eq!(histogram.get("function"), None, "all copies of F were merged");
        // The shared module's outputs drive the mux data inputs.
        for user in 0..2 {
            let driver = n.channel_into(Port::input(mux, 1 + user)).unwrap().from.node;
            assert_eq!(driver, report.shared);
        }
    }

    #[test]
    fn sharing_requires_early_evaluation_by_default() {
        let (mut n, mux) = decomposed();
        let err = share_mux_inputs(&mut n, mux, &ShareOptions::default()).unwrap_err();
        assert!(err.to_string().contains("early evaluation"));
        // But it can be waived explicitly.
        let options = ShareOptions { require_early_eval: false, ..ShareOptions::default() };
        assert!(share_mux_inputs(&mut n, mux, &options).is_ok());
    }

    #[test]
    fn sharing_can_insert_recovery_buffers() {
        let (mut n, mux) = decomposed();
        enable_early_evaluation(&mut n, mux).unwrap();
        let options = ShareOptions {
            recovery_buffer: Some(BufferSpec::zero_backward(0)),
            ..ShareOptions::default()
        };
        let report = share_mux_inputs(&mut n, mux, &options).unwrap();
        assert_eq!(report.recovery_buffers.len(), 2);
        n.validate().unwrap();
        for buffer in &report.recovery_buffers {
            let spec = n.node(*buffer).unwrap().as_buffer().copied().unwrap();
            assert_eq!(spec.backward_latency, 0);
        }
    }

    #[test]
    fn sharing_rejects_heterogeneous_blocks() {
        let (mut n, mux) = decomposed();
        enable_early_evaluation(&mut n, mux).unwrap();
        // Mutate one of the copies to compute something else.
        let copy =
            n.live_nodes().find(|node| node.as_function().is_some()).map(|node| node.id).unwrap();
        if let Some(node) = n.node_mut(copy) {
            node.kind = NodeKind::Function(FunctionSpec::new(crate::op::Op::Inc));
        }
        let err = share_mux_inputs(&mut n, mux, &ShareOptions::default()).unwrap_err();
        assert!(err.to_string().contains("different operations"));
    }

    #[test]
    fn sharing_rejects_non_function_drivers() {
        let mut n = Netlist::new("t");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::early(2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(sink, 0), 8).unwrap();
        assert!(share_mux_inputs(&mut n, mux, &ShareOptions::default()).is_err());
    }

    #[test]
    fn sharing_rejects_non_mux_nodes() {
        let (mut n, _mux) = decomposed();
        let sink = n.find_node("sink").unwrap().id;
        assert!(share_mux_inputs(&mut n, sink, &ShareOptions::default()).is_err());
    }
}
