//! The composite speculation transformation (Section 4 of the paper).
//!
//! Speculation is introduced in four steps, each of which is itself a
//! correct-by-construction transformation:
//!
//! 1. find a critical cycle going from the output of a multiplexor back to
//!    its select input (when such a cycle exists, buffer insertion and
//!    retiming alone cannot improve performance — speculation is "the
//!    transformation of choice");
//! 2. apply Shannon decomposition to move the block after the multiplexor
//!    onto its data inputs;
//! 3. enable early evaluation on the multiplexor so anti-tokens cancel the
//!    data of the non-selected channel;
//! 4. share the duplicated logic behind a speculative shared module whose
//!    scheduler predicts the select outcome.
//!
//! [`speculate`] performs all four steps; [`find_select_cycles`] exposes the
//! structural precondition check so analysis tooling can report *why*
//! speculation is (not) applicable.

use std::collections::HashSet;

use crate::error::{CoreError, Result};
use crate::id::{NodeId, Port};
use crate::kind::{BufferSpec, NodeKind, SchedulerKind};
use crate::netlist::Netlist;
use crate::transform::{
    enable_early_evaluation, insert_bubble, shannon_decompose, share_mux_inputs, ShareOptions,
};

/// Options controlling the composite [`speculate`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculateOptions {
    /// Scheduler policy installed in the shared module.
    pub scheduler: SchedulerKind,
    /// Recovery buffer inserted between the shared module and the
    /// multiplexor (`None` = direct connection as in Figure 1(d)).
    pub recovery_buffer: Option<BufferSpec>,
    /// Starvation override for the shared module controller.
    pub starvation_limit: Option<u32>,
    /// Apply speculation even when no cycle through the multiplexor select
    /// exists (useful for purely feed-forward pipelines such as the SECDED
    /// example, where the gain is pipeline depth rather than cycle ratio).
    pub allow_acyclic: bool,
}

impl Default for SpeculateOptions {
    fn default() -> Self {
        SpeculateOptions {
            scheduler: SchedulerKind::default(),
            recovery_buffer: None,
            starvation_limit: Some(64),
            allow_acyclic: false,
        }
    }
}

/// Outcome of a [`speculate`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeculationReport {
    /// The multiplexor that now performs early evaluation over speculated data.
    pub mux: NodeId,
    /// The block that was retimed through the multiplexor and then shared.
    pub moved_block: NodeId,
    /// The speculative shared module.
    pub shared_module: NodeId,
    /// Recovery buffers inserted after the shared module (possibly empty).
    pub recovery_buffers: Vec<NodeId>,
    /// The cycles through the multiplexor select that justified speculation
    /// (each cycle is a list of node ids; empty only when
    /// [`SpeculateOptions::allow_acyclic`] was set).
    pub select_cycles: Vec<Vec<NodeId>>,
    /// Isolation bubble inserted on the multiplexor output when its consumer
    /// was not retraction-tolerant (see [`speculate`]); `None` when the
    /// consumer was already an elastic buffer, a variable-latency unit or an
    /// environment.
    pub isolation_buffer: Option<NodeId>,
}

/// `true` when the consumer of the speculative multiplexor's output channel
/// tolerates *retraction*: the early-evaluation mux may take back a stopped
/// token when the shared module's prediction changes (Section 4.2), so its
/// consumer must commit solely from settled signals. Sequential nodes and
/// environments qualify; combinational logic (functions, muxes) would
/// propagate the retraction wave further — in particular into forks, whose
/// per-branch bookkeeping would commit a retracted token (found by the
/// elastic-gen differential fuzzer: a speculated mux feeding a function
/// block feeding an eager fork leaked phantom values into one branch).
fn consumer_tolerates_retraction(netlist: &Netlist, mux: NodeId) -> bool {
    let Some(channel) = netlist.channel_from(Port::output(mux, 0)) else {
        return true;
    };
    match netlist.node(channel.to.node).map(|node| &node.kind) {
        Some(NodeKind::Buffer(_) | NodeKind::VarLatency(_) | NodeKind::Sink(_)) => true,
        Some(_) => false,
        None => true,
    }
}

/// Finds the cycles that start at the output of `mux` and return to its
/// select input.
///
/// These are the cycles speculation targets: the select computation sits on a
/// feedback loop with the multiplexor, so neither bubble insertion (it would
/// lower throughput) nor plain retiming (no registers to move inside the
/// cycle) helps. Each returned cycle lists the nodes visited, starting with
/// `mux`.
///
/// # Errors
///
/// Fails when `mux` does not exist or is not a multiplexor.
pub fn find_select_cycles(netlist: &Netlist, mux: NodeId) -> Result<Vec<Vec<NodeId>>> {
    let node = netlist.require_node(mux)?;
    if node.as_mux().is_none() {
        return Err(CoreError::Precondition {
            transform: "find_select_cycles",
            reason: format!("{mux} is a {} node, not a multiplexor", node.kind.kind_name()),
        });
    }
    // The driver of the select channel; a cycle exists when the select driver
    // is reachable from the multiplexor output.
    let select_driver = match netlist.channel_into(Port::input(mux, 0)) {
        Some(channel) => channel.from.node,
        None => return Ok(Vec::new()),
    };

    let mut cycles = Vec::new();
    let mut stack = vec![mux];
    let mut on_path: HashSet<NodeId> = HashSet::new();
    on_path.insert(mux);
    // Depth-first search bounded by the netlist size; netlists at this level
    // are tiny (tens of nodes), so the exponential worst case is irrelevant.
    fn dfs(
        netlist: &Netlist,
        current: NodeId,
        target: NodeId,
        mux: NodeId,
        stack: &mut Vec<NodeId>,
        on_path: &mut HashSet<NodeId>,
        cycles: &mut Vec<Vec<NodeId>>,
    ) {
        for next in netlist.successors(current) {
            if next == target {
                let mut cycle = stack.clone();
                cycle.push(target);
                cycles.push(cycle);
                continue;
            }
            if next == mux || on_path.contains(&next) {
                continue;
            }
            on_path.insert(next);
            stack.push(next);
            dfs(netlist, next, target, mux, stack, on_path, cycles);
            stack.pop();
            on_path.remove(&next);
        }
    }
    dfs(netlist, mux, select_driver, mux, &mut stack, &mut on_path, &mut cycles);
    Ok(cycles)
}

/// Applies the full speculation flow to `mux`.
///
/// See the module documentation for the four steps. The resulting design is
/// transfer-equivalent to the original for *any* scheduler satisfying the
/// leads-to property — the scheduler only affects performance, never
/// functionality (Section 4 of the paper; checked dynamically by
/// `elastic-verify`).
///
/// # Errors
///
/// Fails when the structural preconditions of any step do not hold, or when
/// no cycle through the multiplexor select exists and
/// [`SpeculateOptions::allow_acyclic`] is not set.
pub fn speculate(
    netlist: &mut Netlist,
    mux: NodeId,
    options: &SpeculateOptions,
) -> Result<SpeculationReport> {
    let select_cycles = find_select_cycles(netlist, mux)?;
    if select_cycles.is_empty() && !options.allow_acyclic {
        return Err(CoreError::Precondition {
            transform: "speculate",
            reason: format!(
                "no cycle from the output of {mux} back to its select input; speculation targets \
                 select feedback loops (set allow_acyclic to force the transformation on \
                 feed-forward pipelines)"
            ),
        });
    }

    let shannon = shannon_decompose(netlist, mux)?;
    enable_early_evaluation(netlist, mux)?;
    let share = share_mux_inputs(
        netlist,
        mux,
        &ShareOptions {
            scheduler: options.scheduler.clone(),
            recovery_buffer: options.recovery_buffer,
            starvation_limit: options.starvation_limit,
            require_early_eval: true,
        },
    )?;

    // The speculative mux may retract a stopped token; when its consumer is
    // combinational logic the retraction wave reaches state-keeping
    // consumers (forks, whose per-branch bookkeeping would commit a token
    // the producer later takes back) and can leak phantom values. For
    // *acyclic* speculation, isolate the mux behind a bubble — bubble
    // insertion is itself transfer-equivalence preserving and only adds
    // pipeline latency on a feed-forward path. Cyclic speculation is left
    // untouched: the paper's loop designs carry the isolating elastic
    // buffer inside the loop already (Figure 1(d); in Figure 7(b) the cone
    // past the mux cannot stall), and a bubble would halve the loop's cycle
    // ratio.
    let isolation_buffer =
        if select_cycles.is_empty() && !consumer_tolerates_retraction(netlist, mux) {
            let channel = netlist
                .channel_from(Port::output(mux, 0))
                .map(|c| c.id)
                .ok_or(CoreError::UnconnectedPort { node: mux, index: 0, is_input: false })?;
            Some(insert_bubble(netlist, channel)?)
        } else {
            None
        };

    Ok(SpeculationReport {
        mux,
        moved_block: shannon.moved_block,
        shared_module: share.shared,
        recovery_buffers: share.recovery_buffers,
        select_cycles,
        isolation_buffer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{ForkSpec, MuxSpec, SinkSpec, SourceSpec};
    use crate::op::opaque;

    /// The Figure-1(a) loop:
    ///
    /// ```text
    /// src0 ─► mux ─► F ─► EB(1 token) ─► fork ─► sink
    /// src1 ─►  │                          │
    ///          └──────────── G ◄──────────┘
    /// ```
    fn fig1a_like() -> (Netlist, NodeId) {
        let mut n = Netlist::new("fig1a");
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let eb = n.add_buffer("eb", BufferSpec::standard(1));
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let g = n.add_op("g", opaque("G", 5, 80));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(g, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
        n.connect(Port::output(g, 0), Port::input(mux, 0), 1).unwrap();
        n.validate().unwrap();
        (n, mux)
    }

    #[test]
    fn select_cycles_are_found_in_the_fig1_loop() {
        let (n, mux) = fig1a_like();
        let cycles = find_select_cycles(&n, mux).unwrap();
        assert_eq!(cycles.len(), 1);
        let cycle = &cycles[0];
        assert_eq!(cycle.first(), Some(&mux));
        let g = n.find_node("g").unwrap().id;
        assert_eq!(cycle.last(), Some(&g));
        assert!(cycle.contains(&n.find_node("eb").unwrap().id));
    }

    #[test]
    fn speculation_produces_the_fig1d_structure() {
        let (mut n, mux) = fig1a_like();
        let report = speculate(&mut n, mux, &SpeculateOptions::default()).unwrap();
        n.validate().unwrap();
        assert!(!report.select_cycles.is_empty());
        let histogram = n.kind_histogram();
        assert_eq!(histogram.get("shared"), Some(&1));
        assert_eq!(histogram.get("function"), Some(&1), "only G remains as a plain function");
        assert!(n.node(mux).unwrap().as_mux().unwrap().early_eval);
        // Each mux data input is fed by the shared module.
        for data_index in 0..2 {
            let driver = n.channel_into(Port::input(mux, 1 + data_index)).unwrap().from.node;
            assert_eq!(driver, report.shared_module);
        }
    }

    #[test]
    fn speculation_without_a_select_cycle_requires_opt_in() {
        let mut n = Netlist::new("feedforward");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();

        let err = speculate(&mut n, mux, &SpeculateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("no cycle"));

        let options = SpeculateOptions { allow_acyclic: true, ..SpeculateOptions::default() };
        let report = speculate(&mut n, mux, &options).unwrap();
        assert!(report.select_cycles.is_empty());
        n.validate().unwrap();
    }

    #[test]
    fn speculation_with_recovery_buffers_inserts_them() {
        let (mut n, mux) = fig1a_like();
        let options = SpeculateOptions {
            recovery_buffer: Some(BufferSpec::zero_backward(0)),
            ..SpeculateOptions::default()
        };
        let report = speculate(&mut n, mux, &options).unwrap();
        assert_eq!(report.recovery_buffers.len(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn speculation_rejects_non_mux_nodes() {
        let (mut n, _mux) = fig1a_like();
        let f = n.find_node("f").unwrap().id;
        assert!(speculate(&mut n, f, &SpeculateOptions::default()).is_err());
        assert!(find_select_cycles(&n, f).is_err());
    }
}
