//! The composite speculation transformation (Section 4 of the paper).
//!
//! Speculation is introduced in four steps, each of which is itself a
//! correct-by-construction transformation:
//!
//! 1. find a critical cycle going from the output of a multiplexor back to
//!    its select input (when such a cycle exists, buffer insertion and
//!    retiming alone cannot improve performance — speculation is "the
//!    transformation of choice");
//! 2. apply Shannon decomposition to move the block after the multiplexor
//!    onto its data inputs;
//! 3. enable early evaluation on the multiplexor so anti-tokens cancel the
//!    data of the non-selected channel;
//! 4. share the duplicated logic behind a speculative shared module whose
//!    scheduler predicts the select outcome.
//!
//! Two soundness mechanisms complete the composition for arbitrary
//! (generator-produced) netlists, both motivated by differential-fuzzer
//! findings:
//!
//! * on **feed-forward** multiplexors ([`SpeculateOptions::allow_acyclic`])
//!   an **in-order commit stage** ([`crate::kind::CommitSpec`]) is placed
//!   between the shared module and the multiplexor: each user's speculative
//!   result parks in a killable lane with a *persistent* offer, so results
//!   commit per-lane in operand order, wrong-path results are squashed in
//!   place by the early mux's anti-tokens before anything downstream can
//!   observe them, and the module's output never retracts when the
//!   scheduler's prediction changes — under *any* scheduler;
//! * the **retraction-domain analysis**
//!   ([`crate::transform::retraction_domain`]) walks the combinational cone
//!   reachable from the multiplexor output and places an isolation bubble on
//!   the entry channel of every *stallable fork* the retraction wave could
//!   reach — the only consumers whose per-branch bookkeeping can commit a
//!   phantom token. Non-stallable cones (Figure 7(b)) and cones cut by a
//!   loop's elastic buffer (Figure 1(d)) receive no buffer, keeping the
//!   paper's cycle ratios intact.
//!
//! [`speculate`] performs all of the above; [`find_select_cycles`] exposes
//! the structural precondition check so analysis tooling can report *why*
//! speculation is (not) applicable.

use std::collections::HashSet;

use crate::error::{CoreError, Result};
use crate::id::{NodeId, Port};
use crate::kind::{BufferSpec, CommitSpec, SchedulerKind};
use crate::netlist::Netlist;
use crate::transform::{
    enable_early_evaluation, lazy_tainted_nodes, place_isolation_buffers, shannon_decompose,
    share_mux_inputs, ShareOptions,
};

/// Options controlling the composite [`speculate`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculateOptions {
    /// Scheduler policy installed in the shared module.
    pub scheduler: SchedulerKind,
    /// Recovery buffer inserted between the shared module and the
    /// multiplexor (`None` = direct connection as in Figure 1(d)).
    pub recovery_buffer: Option<BufferSpec>,
    /// Starvation override for the shared module controller.
    pub starvation_limit: Option<u32>,
    /// Apply speculation even when no cycle through the multiplexor select
    /// exists (useful for purely feed-forward pipelines such as the SECDED
    /// example, where the gain is pipeline depth rather than cycle ratio).
    pub allow_acyclic: bool,
    /// Insert an in-order commit stage ([`CommitSpec`]) between the shared
    /// module and the multiplexor when speculating a *feed-forward* mux
    /// (ignored on select loops, where the loop's own elastic buffer already
    /// decouples the speculation and an extra pipeline stage would halve the
    /// cycle ratio). The stage parks each user's speculative result in a
    /// killable lane with a persistent offer, so the shared module's output
    /// never retracts towards the multiplexor and the scheduler can never
    /// starve against consumer back-pressure. On by default; disable only
    /// for experiments on the raw (unsound for arbitrary consumers)
    /// composition.
    pub commit_stage: bool,
    /// Per-lane depth of the commit stage (how far the scheduler may run
    /// ahead of the resolution point).
    pub commit_depth: u32,
}

impl Default for SpeculateOptions {
    fn default() -> Self {
        SpeculateOptions {
            scheduler: SchedulerKind::default(),
            recovery_buffer: None,
            starvation_limit: Some(64),
            allow_acyclic: false,
            commit_stage: true,
            commit_depth: 1,
        }
    }
}

/// Outcome of a [`speculate`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeculationReport {
    /// The multiplexor that now performs early evaluation over speculated data.
    pub mux: NodeId,
    /// The block that was retimed through the multiplexor and then shared.
    pub moved_block: NodeId,
    /// The speculative shared module.
    pub shared_module: NodeId,
    /// Recovery buffers inserted after the shared module (possibly empty).
    pub recovery_buffers: Vec<NodeId>,
    /// The cycles through the multiplexor select that justified speculation
    /// (each cycle is a list of node ids; empty only when
    /// [`SpeculateOptions::allow_acyclic`] was set).
    pub select_cycles: Vec<Vec<NodeId>>,
    /// The in-order commit stage inserted between the shared module and the
    /// multiplexor (`None` on select loops or when
    /// [`SpeculateOptions::commit_stage`] is off).
    pub commit_stage: Option<NodeId>,
    /// Isolation bubbles placed by the retraction-domain analysis
    /// ([`crate::transform::retraction_domain`]): one on the entry channel of
    /// each stallable fork the multiplexor's retraction cone can reach, and
    /// nothing anywhere else — empty whenever the cone cannot observe a
    /// phantom token (Figures 1(d) and 7(b) both qualify).
    pub isolation_buffers: Vec<NodeId>,
}

/// Inserts the in-order commit stage between the shared module's user
/// outputs and the multiplexor's data inputs: each channel that used to end
/// at `mux` data input `k` is redirected into lane `k` of a fresh
/// [`CommitSpec`] node whose lane output then drives the data input.
fn insert_commit_stage(
    netlist: &mut Netlist,
    mux: NodeId,
    users: usize,
    depth: u32,
) -> Result<NodeId> {
    let base_name = netlist.require_node(mux)?.name.clone();
    // Depth is range-checked by `speculate`'s preconditions before anything
    // rewires, so the spec can take it verbatim.
    let commit =
        netlist.add_commit(format!("{base_name}_commit"), CommitSpec { lanes: users, depth });
    for user in 0..users {
        let (channel, width) = netlist
            .channel_into(Port::input(mux, 1 + user))
            .map(|c| (c.id, c.width))
            .ok_or(CoreError::UnconnectedPort { node: mux, index: 1 + user, is_input: true })?;
        netlist.set_channel_target(channel, Port::input(commit, user))?;
        netlist.connect_named(
            format!("{base_name}_commit_out{user}"),
            Port::output(commit, user),
            Port::input(mux, 1 + user),
            width,
        )?;
    }
    Ok(commit)
}

/// Finds the cycles that start at the output of `mux` and return to its
/// select input.
///
/// These are the cycles speculation targets: the select computation sits on a
/// feedback loop with the multiplexor, so neither bubble insertion (it would
/// lower throughput) nor plain retiming (no registers to move inside the
/// cycle) helps. Each returned cycle lists the nodes visited, starting with
/// `mux`.
///
/// # Errors
///
/// Fails when `mux` does not exist or is not a multiplexor.
pub fn find_select_cycles(netlist: &Netlist, mux: NodeId) -> Result<Vec<Vec<NodeId>>> {
    let node = netlist.require_node(mux)?;
    if node.as_mux().is_none() {
        return Err(CoreError::Precondition {
            transform: "find_select_cycles",
            reason: format!("{mux} is a {} node, not a multiplexor", node.kind.kind_name()),
        });
    }
    // The driver of the select channel; a cycle exists when the select driver
    // is reachable from the multiplexor output.
    let select_driver = match netlist.channel_into(Port::input(mux, 0)) {
        Some(channel) => channel.from.node,
        None => return Ok(Vec::new()),
    };

    let mut cycles = Vec::new();
    let mut stack = vec![mux];
    let mut on_path: HashSet<NodeId> = HashSet::new();
    on_path.insert(mux);
    // Depth-first search bounded by the netlist size; netlists at this level
    // are tiny (tens of nodes), so the exponential worst case is irrelevant.
    fn dfs(
        netlist: &Netlist,
        current: NodeId,
        target: NodeId,
        mux: NodeId,
        stack: &mut Vec<NodeId>,
        on_path: &mut HashSet<NodeId>,
        cycles: &mut Vec<Vec<NodeId>>,
    ) {
        for next in netlist.successors(current) {
            if next == target {
                let mut cycle = stack.clone();
                cycle.push(target);
                cycles.push(cycle);
                continue;
            }
            if next == mux || on_path.contains(&next) {
                continue;
            }
            on_path.insert(next);
            stack.push(next);
            dfs(netlist, next, target, mux, stack, on_path, cycles);
            stack.pop();
            on_path.remove(&next);
        }
    }
    dfs(netlist, mux, select_driver, mux, &mut stack, &mut on_path, &mut cycles);
    Ok(cycles)
}

/// Applies the full speculation flow to `mux`.
///
/// See the module documentation for the four steps. The resulting design is
/// transfer-equivalent to the original for *any* scheduler satisfying the
/// leads-to property — the scheduler only affects performance, never
/// functionality (Section 4 of the paper; checked dynamically by
/// `elastic-verify`).
///
/// # Errors
///
/// Fails when the structural preconditions of any step do not hold, or when
/// no cycle through the multiplexor select exists and
/// [`SpeculateOptions::allow_acyclic`] is not set. The transformation is
/// **atomic**: on any error — including a late one, such as an isolation
/// buffer refused inside a lazy fork's rendezvous region — the netlist is
/// left exactly as it was.
///
/// # Example
///
/// Feed-forward speculation with a deeper commit stage. The
/// [`SpeculateOptions::commit_depth`] option sizes the killable result lanes
/// placed between the speculative shared module and the resolving
/// multiplexor: depth 4 lets the scheduler run up to four results ahead of
/// the resolution point before the lane back-pressures the shared module.
///
/// ```
/// use elastic_core::kind::{MuxSpec, SinkSpec, SourceSpec};
/// use elastic_core::op::opaque;
/// use elastic_core::transform::{speculate, SpeculateOptions};
/// use elastic_core::{Netlist, NodeKind, Port};
///
/// let mut n = Netlist::new("feedforward");
/// let sel = n.add_source("sel", SourceSpec::always());
/// let a = n.add_source("a", SourceSpec::always());
/// let b = n.add_source("b", SourceSpec::always());
/// let mux = n.add_mux("mux", MuxSpec::lazy(2));
/// let f = n.add_op("f", opaque("F", 6, 100));
/// let sink = n.add_sink("sink", SinkSpec::always_ready());
/// n.connect(Port::output(sel, 0), Port::input(mux, 0), 1)?;
/// n.connect(Port::output(a, 0), Port::input(mux, 1), 8)?;
/// n.connect(Port::output(b, 0), Port::input(mux, 2), 8)?;
/// n.connect(Port::output(mux, 0), Port::input(f, 0), 8)?;
/// n.connect(Port::output(f, 0), Port::input(sink, 0), 8)?;
///
/// let options = SpeculateOptions {
///     allow_acyclic: true, // no select cycle: a feed-forward pipeline
///     commit_depth: 4,
///     ..SpeculateOptions::default()
/// };
/// let report = speculate(&mut n, mux, &options)?;
///
/// // One commit lane per mux data input, each 4 entries deep.
/// let commit = report.commit_stage.expect("feed-forward speculation inserts the stage");
/// match &n.node(commit).unwrap().kind {
///     NodeKind::Commit(spec) => assert_eq!((spec.lanes, spec.depth), (2, 4)),
///     other => panic!("expected a commit stage, found {}", other.kind_name()),
/// }
/// # Ok::<(), elastic_core::CoreError>(())
/// ```
pub fn speculate(
    netlist: &mut Netlist,
    mux: NodeId,
    options: &SpeculateOptions,
) -> Result<SpeculationReport> {
    // Fail-fast preconditions run on the original (the common reject paths
    // across a fuzz run must not pay for a copy); only once the transform
    // will actually rewire does the work move to a scratch copy, so a
    // failure in any later step — several rewire before they can fail —
    // never leaves the caller's netlist half-speculated.
    let select_cycles = check_preconditions(netlist, mux, options)?;
    let mut working = netlist.clone();
    let report = speculate_in_place(&mut working, mux, select_cycles, options)?;
    *netlist = working;
    Ok(report)
}

/// The non-mutating precondition gauntlet of [`speculate`]; returns the
/// select cycles on success.
fn check_preconditions(
    netlist: &Netlist,
    mux: NodeId,
    options: &SpeculateOptions,
) -> Result<Vec<Vec<NodeId>>> {
    // The depth option must satisfy the same bounds `validate()` enforces on
    // the resulting `CommitSpec` — otherwise the transform could return `Ok`
    // with a netlist that no longer validates (depth too large), or silently
    // build a different stage than the caller asked for (depth 0).
    if options.commit_depth == 0 || options.commit_depth > crate::validate::MAX_COMMIT_DEPTH {
        return Err(CoreError::Precondition {
            transform: "speculate",
            reason: format!(
                "commit_depth {} is outside the supported range 1..={}",
                options.commit_depth,
                crate::validate::MAX_COMMIT_DEPTH
            ),
        });
    }

    let select_cycles = find_select_cycles(netlist, mux)?;
    if select_cycles.is_empty() && !options.allow_acyclic {
        return Err(CoreError::Precondition {
            transform: "speculate",
            reason: format!(
                "no cycle from the output of {mux} back to its select input; speculation targets \
                 select feedback loops (set allow_acyclic to force the transformation on \
                 feed-forward pipelines)"
            ),
        });
    }

    // A *narrowing* multiplexor — output channel narrower than one of its
    // data inputs — is a masking point: the selected token is truncated to
    // the output wire. Historically this was a refusal, because Shannon
    // decomposition moves the downstream block to the *input* side of that
    // truncation. Since the decomposition re-declares each re-targeted data
    // channel at the old mux-output width (see `shannon_decompose` step 2),
    // the producer masks the moved block's operand exactly as the removed
    // wire did, and narrowing muxes are legal speculation sites.

    // The shared module this transform is about to create stalls every
    // non-granted user, and its leads-to machinery (starvation counters,
    // scheduler feedback) only advances while the stalled operands stay
    // valid; the early mux additionally kills non-selected operands, which
    // changes *when* upstream fork branches complete. Both interactions are
    // sound in eager regions but compose fatally with a **lazy fork's**
    // rendezvous: a lazy fork withdraws tokens whenever any branch is
    // stopped, so operands cannot persist across a stall — and even an
    // eager fork between the mux and a lazy region couples the two through
    // its all-branches-delivered rule (an early kill on the mux side
    // re-times the lazy side's rendezvous and can wedge it). Refuse to
    // speculate when the mux's combinational upstream cone contains, or
    // feeds a fork branch into, a lazy fork's rendezvous region (found —
    // in three escalating shapes — by the elastic-gen differential fuzzer
    // once lazy forks entered the generation space).
    let tainted = lazy_tainted_nodes(netlist);
    let mut upstream: Vec<NodeId> =
        netlist.input_channels(mux).iter().map(|c| c.from.node).collect();
    let mut cone: HashSet<NodeId> = HashSet::new();
    while let Some(node) = upstream.pop() {
        let combinational = netlist.node(node).is_some_and(|n| n.kind.is_combinational());
        if !combinational || !cone.insert(node) {
            continue;
        }
        upstream.extend(netlist.predecessors(node));
    }
    for &node in &cone {
        let couples_lazy = tainted.contains(&node)
            || (matches!(
                netlist.node(node).map(|n| &n.kind),
                Some(crate::kind::NodeKind::Fork(_))
            ) && netlist.successors(node).iter().any(|s| tainted.contains(s)));
        if couples_lazy {
            return Err(CoreError::Precondition {
                transform: "speculate",
                reason: format!(
                    "the combinational cone feeding {mux} touches a lazy fork's rendezvous \
                     region (via node {node}); the speculative shared module needs its operands \
                     to persist across stall cycles and its kills re-time upstream fork \
                     completion, neither of which a lazy rendezvous tolerates — make the fork \
                     eager or buffer the path first"
                ),
            });
        }
    }

    Ok(select_cycles)
}

fn speculate_in_place(
    netlist: &mut Netlist,
    mux: NodeId,
    select_cycles: Vec<Vec<NodeId>>,
    options: &SpeculateOptions,
) -> Result<SpeculationReport> {
    let shannon = shannon_decompose(netlist, mux)?;
    enable_early_evaluation(netlist, mux)?;
    let share = share_mux_inputs(
        netlist,
        mux,
        &ShareOptions {
            scheduler: options.scheduler.clone(),
            recovery_buffer: options.recovery_buffer,
            starvation_limit: options.starvation_limit,
            require_early_eval: true,
        },
    )?;

    // Feed-forward speculation: park each user's speculative result in an
    // in-order commit stage. Its lane offers are persistent (the shared
    // module's output no longer retracts towards the multiplexor when the
    // prediction changes) and killable in place (the early mux's anti-tokens
    // squash wrong-path results before anything downstream observes them),
    // and a computed result no longer needs the consumer to be ready on the
    // grant cycle — which is what let an adversarial static scheduler
    // starve a user against aligned sink back-pressure. On select loops the
    // stage is skipped: the loop's own elastic buffer already decouples the
    // speculation, and an extra pipeline stage would halve the cycle ratio.
    let users = netlist.require_node(mux)?.as_mux().map(|spec| spec.data_inputs).unwrap_or(2);
    let commit_stage = if select_cycles.is_empty() && options.commit_stage {
        Some(insert_commit_stage(netlist, mux, users, options.commit_depth)?)
    } else {
        None
    };

    // The speculative mux may still retract a stopped token (always, when
    // its data inputs come straight from the shared module; never, once the
    // commit stage or recovery buffers make them persistent). The
    // retraction-domain analysis walks the combinational cone from the mux
    // output and places an isolation bubble exactly where a stallable fork
    // could commit a phantom token — nothing anywhere else, so Figure 1(d)
    // (cone cut by the loop EB) and Figure 7(b) (cone cannot stall) stay
    // untouched while a cyclic design whose cone escapes into a stallable
    // fork pays exactly one bubble on the escape path.
    let isolation_buffers = place_isolation_buffers(netlist, mux)?;

    Ok(SpeculationReport {
        mux,
        moved_block: shannon.moved_block,
        shared_module: share.shared,
        recovery_buffers: share.recovery_buffers,
        select_cycles,
        commit_stage,
        isolation_buffers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{ForkSpec, MuxSpec, SinkSpec, SourceSpec};
    use crate::op::opaque;

    /// The Figure-1(a) loop:
    ///
    /// ```text
    /// src0 ─► mux ─► F ─► EB(1 token) ─► fork ─► sink
    /// src1 ─►  │                          │
    ///          └──────────── G ◄──────────┘
    /// ```
    fn fig1a_like() -> (Netlist, NodeId) {
        let mut n = Netlist::new("fig1a");
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let eb = n.add_buffer("eb", BufferSpec::standard(1));
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let g = n.add_op("g", opaque("G", 5, 80));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(g, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink, 0), 8).unwrap();
        n.connect(Port::output(g, 0), Port::input(mux, 0), 1).unwrap();
        n.validate().unwrap();
        (n, mux)
    }

    #[test]
    fn select_cycles_are_found_in_the_fig1_loop() {
        let (n, mux) = fig1a_like();
        let cycles = find_select_cycles(&n, mux).unwrap();
        assert_eq!(cycles.len(), 1);
        let cycle = &cycles[0];
        assert_eq!(cycle.first(), Some(&mux));
        let g = n.find_node("g").unwrap().id;
        assert_eq!(cycle.last(), Some(&g));
        assert!(cycle.contains(&n.find_node("eb").unwrap().id));
    }

    #[test]
    fn speculation_produces_the_fig1d_structure() {
        let (mut n, mux) = fig1a_like();
        let report = speculate(&mut n, mux, &SpeculateOptions::default()).unwrap();
        n.validate().unwrap();
        assert!(!report.select_cycles.is_empty());
        let histogram = n.kind_histogram();
        assert_eq!(histogram.get("shared"), Some(&1));
        assert_eq!(histogram.get("function"), Some(&1), "only G remains as a plain function");
        assert!(n.node(mux).unwrap().as_mux().unwrap().early_eval);
        // Each mux data input is fed by the shared module.
        for data_index in 0..2 {
            let driver = n.channel_into(Port::input(mux, 1 + data_index)).unwrap().from.node;
            assert_eq!(driver, report.shared_module);
        }
    }

    #[test]
    fn speculation_without_a_select_cycle_requires_opt_in() {
        let mut n = Netlist::new("feedforward");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();

        let err = speculate(&mut n, mux, &SpeculateOptions::default()).unwrap_err();
        assert!(err.to_string().contains("no cycle"));

        let options = SpeculateOptions { allow_acyclic: true, ..SpeculateOptions::default() };
        let report = speculate(&mut n, mux, &options).unwrap();
        assert!(report.select_cycles.is_empty());
        n.validate().unwrap();
        // Feed-forward speculation routes the shared outputs through the
        // in-order commit stage…
        let commit = report.commit_stage.expect("acyclic speculation inserts the commit stage");
        for user in 0..2 {
            let driver = n.channel_into(Port::input(mux, 1 + user)).unwrap().from.node;
            assert_eq!(driver, commit);
            let feeder = n.channel_into(Port::input(commit, user)).unwrap().from.node;
            assert_eq!(feeder, report.shared_module);
        }
        // …whose persistent lanes make the whole cone retraction-free: no
        // isolation bubble anywhere.
        assert!(report.isolation_buffers.is_empty());
    }

    #[test]
    fn acyclic_speculation_without_the_commit_stage_isolates_stallable_forks() {
        use crate::kind::BackpressurePattern;

        // mux → F → fork → {ready sink, stalling sink}: without the commit
        // stage the mux can retract into the fork, so the analysis must place
        // exactly one bubble on the fork's entry.
        let mut n = Netlist::new("feedforward_fork");
        let sel = n.add_source("sel", SourceSpec::always());
        let src0 = n.add_source("src0", SourceSpec::always());
        let src1 = n.add_source("src1", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 6, 100));
        let fork = n.add_fork("fork", ForkSpec::eager(2));
        let sink0 = n.add_sink("sink0", SinkSpec::always_ready());
        let sink1 = n.add_sink("sink1", SinkSpec { backpressure: BackpressurePattern::Every(3) });
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(src0, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(src1, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(fork, 0), 8).unwrap();
        n.connect(Port::output(fork, 0), Port::input(sink0, 0), 8).unwrap();
        n.connect(Port::output(fork, 1), Port::input(sink1, 0), 8).unwrap();

        let options = SpeculateOptions {
            allow_acyclic: true,
            commit_stage: false,
            ..SpeculateOptions::default()
        };
        let report = speculate(&mut n, mux, &options).unwrap();
        n.validate().unwrap();
        assert!(report.commit_stage.is_none());
        assert_eq!(report.isolation_buffers.len(), 1);
        let feeder = n.channel_into(Port::input(fork, 0)).unwrap().from.node;
        assert_eq!(feeder, report.isolation_buffers[0]);
    }

    #[test]
    fn speculation_with_recovery_buffers_inserts_them() {
        let (mut n, mux) = fig1a_like();
        let options = SpeculateOptions {
            recovery_buffer: Some(BufferSpec::zero_backward(0)),
            ..SpeculateOptions::default()
        };
        let report = speculate(&mut n, mux, &options).unwrap();
        assert_eq!(report.recovery_buffers.len(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn a_late_isolation_refusal_leaves_the_netlist_untouched() {
        use crate::kind::BackpressurePattern;
        use crate::transform::retraction_domain;

        // The mux's cone enters a lazy fork's rendezvous region through a
        // join (not through the fork itself), and the first hazardous fork
        // sits *inside* the region: placement wants a bubble on K→EF, the
        // rendezvous side condition refuses it, and speculate fails after
        // shannon/early-eval/share already ran — the caller's netlist must
        // come back bit-identical.
        let mut n = Netlist::new("late_refusal");
        let sel = n.add_source("sel", SourceSpec::always());
        let a = n.add_source("a", SourceSpec::always());
        let b = n.add_source("b", SourceSpec::always());
        let lsrc = n.add_source("lsrc", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let f = n.add_op("f", opaque("F", 4, 60));
        let lazy = n.add_fork("lazy", ForkSpec::lazy(2));
        let k = n.add_function("k", crate::kind::FunctionSpec::with_inputs(crate::Op::Add, 2));
        let ef = n.add_fork("ef", ForkSpec::eager(2));
        let j2 = n.add_function("j2", crate::kind::FunctionSpec::with_inputs(crate::Op::Xor, 2));
        let sink_slow =
            n.add_sink("slow", SinkSpec { backpressure: BackpressurePattern::Every(3) });
        let sink_j2 = n.add_sink("out", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(k, 0), 8).unwrap();
        n.connect(Port::output(lsrc, 0), Port::input(lazy, 0), 8).unwrap();
        n.connect(Port::output(lazy, 0), Port::input(k, 1), 8).unwrap();
        n.connect(Port::output(k, 0), Port::input(ef, 0), 8).unwrap();
        n.connect(Port::output(ef, 0), Port::input(j2, 0), 8).unwrap();
        n.connect(Port::output(lazy, 1), Port::input(j2, 1), 8).unwrap();
        n.connect(Port::output(ef, 1), Port::input(sink_slow, 0), 8).unwrap();
        n.connect(Port::output(j2, 0), Port::input(sink_j2, 0), 8).unwrap();
        n.validate().unwrap();
        let before = n.clone();

        let options = SpeculateOptions {
            allow_acyclic: true,
            commit_stage: false,
            ..SpeculateOptions::default()
        };
        let err = speculate(&mut n, mux, &options).unwrap_err();
        // The "rendezvous" refusal is emitted by insert_buffer_on_channel —
        // reachable only from the isolation placement, i.e. after shannon,
        // early-eval and share already rewired the scratch copy.
        assert!(err.to_string().contains("rendezvous"), "{err}");
        assert_eq!(n, before, "a failed speculation must not mutate the netlist");
        // Pre-transform the mux's inputs are persistent sources, so the
        // analysis on the untouched netlist is (correctly) quiet.
        assert!(retraction_domain(&n, mux).unwrap().is_safe());
    }

    #[test]
    fn out_of_range_commit_depths_are_rejected_up_front() {
        // Both ends of the range: depth 0 must not silently become 1, and a
        // depth `validate()` would reject must not survive the transform's
        // valid-in/valid-out contract. Either way the netlist is untouched.
        let (mut n, mux) = fig1a_like();
        let before = n.clone();
        for depth in [0, crate::validate::MAX_COMMIT_DEPTH + 1] {
            let options = SpeculateOptions {
                allow_acyclic: true,
                commit_depth: depth,
                ..SpeculateOptions::default()
            };
            let err = speculate(&mut n, mux, &options).unwrap_err();
            assert!(err.to_string().contains("commit_depth"), "{err}");
            assert_eq!(n, before);
        }
    }

    #[test]
    fn speculation_rejects_non_mux_nodes() {
        let (mut n, _mux) = fig1a_like();
        let f = n.find_node("f").unwrap().id;
        assert!(speculate(&mut n, f, &SpeculateOptions::default()).is_err());
        assert!(find_select_cycles(&n, f).is_err());
    }
}
