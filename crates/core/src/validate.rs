//! Structural validation of elastic netlists.
//!
//! Validation is purely structural: it checks port connectivity, arity
//! consistency, buffer well-formedness and basic sanity of environment
//! specifications. Protocol-level properties (deadlock freedom, SELF
//! compliance, transfer equivalence) are checked dynamically by the
//! `elastic-verify` crate.

use crate::error::{CoreError, Result};
use crate::id::Port;
use crate::kind::{BackpressurePattern, NodeKind, SourcePattern};
use crate::netlist::Netlist;

/// Upper bound on [`crate::kind::CommitSpec::depth`] accepted by validation.
///
/// The bound is deliberately generous — the measured sweeps
/// (`BENCH_commit_depth.json`) show the latency/area trade flattening within
/// a handful of entries — but it keeps a corrupted or adversarial depth from
/// inflating every simulation build with per-lane FIFOs nobody can fill.
pub const MAX_COMMIT_DEPTH: u32 = 1024;

/// Validates the structural integrity of a netlist.
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] listing every violation found:
///
/// * every input and output port must be connected to exactly one channel,
/// * channel endpoints must reference live nodes and in-range ports,
/// * buffer specifications must satisfy `C >= Lf + Lb`,
/// * multiplexors need at least two data inputs, forks and shared modules at
///   least one branch/user,
/// * function blocks with a fixed-arity [`crate::Op`] must declare a matching
///   number of inputs,
/// * stochastic environment patterns must use probabilities within `[0, 1]`.
pub fn validate(netlist: &Netlist) -> Result<()> {
    let mut problems = Vec::new();

    for node in netlist.live_nodes() {
        // Port occupancy.
        for index in 0..node.input_count() {
            let attached =
                netlist.live_channels().filter(|c| c.to == Port::input(node.id, index)).count();
            match attached {
                0 => problems.push(format!(
                    "input port {index} of {} ({}) is unconnected",
                    node.name, node.id
                )),
                1 => {}
                _ => problems.push(format!(
                    "input port {index} of {} ({}) has {attached} drivers",
                    node.name, node.id
                )),
            }
        }
        for index in 0..node.output_count() {
            let attached =
                netlist.live_channels().filter(|c| c.from == Port::output(node.id, index)).count();
            match attached {
                0 => problems.push(format!(
                    "output port {index} of {} ({}) is unconnected",
                    node.name, node.id
                )),
                1 => {}
                _ => problems.push(format!(
                    "output port {index} of {} ({}) drives {attached} channels (insert a fork)",
                    node.name, node.id
                )),
            }
        }

        // Kind-specific checks.
        match &node.kind {
            NodeKind::Buffer(spec) => {
                if !spec.is_well_formed() {
                    problems.push(format!(
                        "buffer {} ({}) violates capacity >= Lf + Lb or its initial occupancy \
                         exceeds the declared capacity",
                        node.name, node.id
                    ));
                }
            }
            NodeKind::Function(spec) => {
                if spec.inputs == 0 {
                    problems.push(format!(
                        "function {} ({}) must have at least one input",
                        node.name, node.id
                    ));
                }
                if let Some(arity) = spec.op.arity() {
                    if spec.inputs != arity {
                        problems.push(format!(
                            "function {} ({}) computes `{}` which needs {arity} operand(s) but \
                             declares {} input port(s)",
                            node.name,
                            node.id,
                            spec.op.mnemonic(),
                            spec.inputs
                        ));
                    }
                }
            }
            NodeKind::Mux(spec) => {
                if spec.data_inputs < 2 {
                    problems.push(format!(
                        "mux {} ({}) needs at least two data inputs",
                        node.name, node.id
                    ));
                }
            }
            NodeKind::Fork(spec) => {
                if spec.outputs < 2 {
                    problems.push(format!(
                        "fork {} ({}) needs at least two branches",
                        node.name, node.id
                    ));
                }
            }
            NodeKind::Shared(spec) => {
                if spec.users < 2 {
                    problems.push(format!(
                        "shared module {} ({}) needs at least two users",
                        node.name, node.id
                    ));
                }
                if spec.inputs_per_user == 0 {
                    problems.push(format!(
                        "shared module {} ({}) needs at least one operand per user",
                        node.name, node.id
                    ));
                }
                if let Some(arity) = spec.op.arity() {
                    if spec.inputs_per_user != arity {
                        problems.push(format!(
                            "shared module {} ({}) computes `{}` which needs {arity} operand(s) \
                             but declares {} per user",
                            node.name,
                            node.id,
                            spec.op.mnemonic(),
                            spec.inputs_per_user
                        ));
                    }
                }
            }
            NodeKind::Commit(spec) => {
                if spec.lanes == 0 {
                    problems.push(format!(
                        "commit stage {} ({}) needs at least one lane",
                        node.name, node.id
                    ));
                }
                if spec.depth == 0 {
                    problems.push(format!(
                        "commit stage {} ({}) needs a per-lane depth of at least one",
                        node.name, node.id
                    ));
                }
                if spec.depth > MAX_COMMIT_DEPTH {
                    problems.push(format!(
                        "commit stage {} ({}) declares a per-lane depth of {} but the simulator \
                         and the cost model support at most {MAX_COMMIT_DEPTH} (deeper lanes \
                         cannot help: the scheduler can never run further ahead than the shared \
                         module's operand backlog)",
                        node.name, node.id, spec.depth
                    ));
                }
            }
            NodeKind::VarLatency(spec) => {
                if spec.inputs == 0 {
                    problems.push(format!(
                        "variable-latency unit {} ({}) must have at least one input",
                        node.name, node.id
                    ));
                }
            }
            NodeKind::Source(spec) => {
                if let SourcePattern::Random { probability, .. } = spec.pattern {
                    if !(0.0..=1.0).contains(&probability) {
                        problems.push(format!(
                            "source {} ({}) uses an out-of-range token probability {probability}",
                            node.name, node.id
                        ));
                    }
                }
                if let SourcePattern::Every(period) = spec.pattern {
                    if period == 0 {
                        problems.push(format!(
                            "source {} ({}) uses a zero production period",
                            node.name, node.id
                        ));
                    }
                }
            }
            NodeKind::Sink(spec) => {
                if let BackpressurePattern::Random { probability, .. } = spec.backpressure {
                    if !(0.0..=1.0).contains(&probability) {
                        problems.push(format!(
                            "sink {} ({}) uses an out-of-range stall probability {probability}",
                            node.name, node.id
                        ));
                    }
                }
            }
        }
    }

    // Channel endpoint sanity (defence in depth; `connect` already checks).
    for channel in netlist.live_channels() {
        if netlist.node(channel.from.node).is_none() {
            problems.push(format!("channel {} has a dangling producer", channel.id));
        }
        if netlist.node(channel.to.node).is_none() {
            problems.push(format!("channel {} has a dangling consumer", channel.id));
        }
        if channel.width == 0 || channel.width > 64 {
            problems.push(format!(
                "channel {} ({}) has unsupported width {}",
                channel.id, channel.name, channel.width
            ));
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(CoreError::Invalid(problems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Port;
    use crate::kind::{BufferSpec, ForkSpec, MuxSpec, SinkSpec, SourceSpec};
    use crate::op::Op;

    fn connected_pair() -> Netlist {
        let mut n = Netlist::new("ok");
        let src = n.add_source("src", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        n
    }

    #[test]
    fn minimal_connected_netlist_is_valid() {
        assert!(connected_pair().validate().is_ok());
    }

    #[test]
    fn dangling_ports_are_reported() {
        let mut n = Netlist::new("bad");
        n.add_source("src", SourceSpec::always());
        let err = n.validate().unwrap_err();
        match err {
            CoreError::Invalid(problems) => {
                assert!(problems.iter().any(|p| p.contains("unconnected")));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn malformed_buffers_are_reported() {
        let mut n = connected_pair();
        let bad = BufferSpec { capacity: 1, ..BufferSpec::standard(0) };
        let eb = n.add_buffer("eb", bad);
        let src2 = n.add_source("src2", SourceSpec::always());
        let sink2 = n.add_sink("sink2", SinkSpec::always_ready());
        n.connect(Port::output(src2, 0), Port::input(eb, 0), 8).unwrap();
        n.connect(Port::output(eb, 0), Port::input(sink2, 0), 8).unwrap();
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut n = connected_pair();
        let f = n.add_function("sub1", crate::kind::FunctionSpec::with_inputs(Op::Sub, 1));
        let src2 = n.add_source("src2", SourceSpec::always());
        let sink2 = n.add_sink("sink2", SinkSpec::always_ready());
        n.connect(Port::output(src2, 0), Port::input(f, 0), 8).unwrap();
        n.connect(Port::output(f, 0), Port::input(sink2, 0), 8).unwrap();
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("operand"));
    }

    #[test]
    fn degenerate_mux_and_fork_are_reported() {
        let mut n = Netlist::new("bad");
        n.add_mux("m", MuxSpec::lazy(1));
        n.add_fork("f", ForkSpec::eager(1));
        let err = n.validate().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("two data inputs"));
        assert!(text.contains("two branches"));
    }

    #[test]
    fn commit_depth_bounds_are_reported() {
        use crate::kind::CommitSpec;

        let build = |depth: u32| {
            let mut n = connected_pair();
            let commit = n.add_commit("c", CommitSpec { lanes: 1, depth });
            let src2 = n.add_source("src2", SourceSpec::always());
            let sink2 = n.add_sink("sink2", SinkSpec::always_ready());
            n.connect(Port::output(src2, 0), Port::input(commit, 0), 8).unwrap();
            n.connect(Port::output(commit, 0), Port::input(sink2, 0), 8).unwrap();
            n
        };
        assert!(build(1).validate().is_ok());
        assert!(build(MAX_COMMIT_DEPTH).validate().is_ok());
        let err = build(0).validate().unwrap_err();
        assert!(err.to_string().contains("at least one"));
        let err = build(MAX_COMMIT_DEPTH + 1).validate().unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
    }

    #[test]
    fn fanout_without_fork_is_reported() {
        let mut n = Netlist::new("bad");
        let src = n.add_source("src", SourceSpec::always());
        let a = n.add_sink("a", SinkSpec::always_ready());
        let b = n.add_sink("b", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(a, 0), 8).unwrap();
        // Bypass `connect`'s occupancy check by wiring manually through a second
        // channel with the same producer: emulate by creating another source and
        // rewiring its channel onto the same output port.
        let src2 = n.add_source("src2", SourceSpec::always());
        let ch = n.connect(Port::output(src2, 0), Port::input(b, 0), 8).unwrap();
        // Force the duplicate producer (error path of set_channel_source is
        // exactly what guards against this, so mutate through the public struct
        // view is not possible — instead check that the guard fires).
        assert!(n.set_channel_source(ch, Port::output(src, 0)).is_err());
    }

    #[test]
    fn random_probabilities_are_range_checked() {
        let mut n = Netlist::new("bad");
        let src = n.add_source(
            "src",
            SourceSpec {
                pattern: SourcePattern::Random { probability: 1.5, seed: 1 },
                ..SourceSpec::default()
            },
        );
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        let err = n.validate().unwrap_err();
        assert!(err.to_string().contains("probability"));
    }
}
