//! Exact and approximate adders.
//!
//! The variable-latency unit of the paper's Section 5.1 relies on a fast
//! approximation `F_approx` of an exact function `F_exact` together with an
//! error detector `F_err` (obtained automatically in ref \[2\] of the
//! paper). Carry-speculating adders are the canonical instance: the operands
//! are split at a speculation boundary, the carry into the upper part is
//! assumed to be zero, and the error detector fires exactly when that
//! assumption is wrong. The exact adders come in two flavours with identical
//! function but different cost-model figures: a ripple-carry adder and a
//! Kogge-Stone prefix adder (the 64-bit prefix adder of Section 5.2).

/// Masks a value to `width` bits (`width <= 64`).
#[inline]
pub fn mask(value: u64, width: u8) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Exact addition of two `width`-bit operands, returning a `width + 1`-bit
/// sum (the extra bit is the carry out).
///
/// This models the ripple-carry adder: the result is computed bit by bit so
/// the implementation doubles as a reference for the prefix adder below.
pub fn ripple_add(a: u64, b: u64, width: u8) -> u64 {
    let a = mask(a, width);
    let b = mask(b, width);
    let mut carry = 0u64;
    let mut sum = 0u64;
    for bit in 0..width {
        let ab = (a >> bit) & 1;
        let bb = (b >> bit) & 1;
        let s = ab ^ bb ^ carry;
        carry = (ab & bb) | (ab & carry) | (bb & carry);
        sum |= s << bit;
    }
    sum | (carry << width.min(63))
}

/// Exact addition of two `width`-bit operands using a Kogge-Stone parallel
/// prefix network, returning a `width + 1`-bit sum.
///
/// Functionally identical to [`ripple_add`]; the generate/propagate prefix
/// tree mirrors the hardware structure so that the per-level computation (and
/// the logarithmic depth the cost model uses) is explicit.
pub fn kogge_stone_add(a: u64, b: u64, width: u8) -> u64 {
    let a = mask(a, width);
    let b = mask(b, width);
    // Bitwise generate and propagate vectors.
    let mut generate = a & b;
    let mut propagate = a ^ b;
    let sum_bits = propagate;
    // Kogge-Stone prefix: combine (g, p) pairs at distances 1, 2, 4, …
    let mut distance = 1u8;
    while distance < width.max(1) {
        let shifted_g = generate << distance;
        let shifted_p = propagate << distance;
        generate |= propagate & shifted_g;
        propagate &= shifted_p;
        distance = distance.saturating_mul(2);
    }
    // Carry into bit i is the prefix generate of bit i-1.
    let carries = mask(generate << 1, width.saturating_add(1));
    let carry_out = if width == 0 { 0 } else { (generate >> (width - 1)) & 1 };
    mask(sum_bits ^ carries, width) | (carry_out << width.min(63))
}

/// Number of prefix levels of a Kogge-Stone adder of the given width
/// (`ceil(log2(width))`), used by the cost model.
pub fn kogge_stone_levels(width: u8) -> u32 {
    if width <= 1 {
        1
    } else {
        (u32::from(width) - 1).ilog2() + 1
    }
}

/// Approximate (carry-speculating) addition.
///
/// The operands are split at `spec_bits`; the lower parts are added exactly
/// and the carry into the upper part is speculated to be zero. The critical
/// path is therefore `max(spec_bits, width - spec_bits)` ripple positions
/// instead of `width` — roughly half when the boundary sits in the middle.
/// Returns a `width + 1`-bit result that equals [`ripple_add`] exactly when
/// no carry crosses the boundary.
pub fn approx_add(a: u64, b: u64, width: u8, spec_bits: u8) -> u64 {
    if spec_bits >= width {
        // No speculation boundary inside the operand: the adder is exact.
        return ripple_add(a, b, width);
    }
    let a = mask(a, width);
    let b = mask(b, width);
    let low = ripple_add(a, b, spec_bits);
    let low_sum = mask(low, spec_bits);
    let high_width = width - spec_bits;
    let high = ripple_add(a >> spec_bits, b >> spec_bits, high_width);
    low_sum | (high << spec_bits)
}

/// Error detector paired with [`approx_add`]: `1` when the approximation
/// differs from the exact sum (i.e. a carry crosses the speculation
/// boundary), `0` otherwise. This is the `F_err` block of Figure 6.
pub fn approx_add_error(a: u64, b: u64, width: u8, spec_bits: u8) -> u64 {
    let spec_bits = spec_bits.min(width);
    if spec_bits == width {
        return 0;
    }
    let low = ripple_add(mask(a, width), mask(b, width), spec_bits);

    (low >> spec_bits) & 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ripple_matches_native_addition() {
        for width in [1u8, 4, 8, 16, 32, 57] {
            for (a, b) in [(0u64, 0u64), (1, 1), (0xFF, 0x01), (u64::MAX, u64::MAX), (12345, 67890)]
            {
                let expected = mask(a, width) as u128 + mask(b, width) as u128;
                assert_eq!(
                    ripple_add(a, b, width) as u128,
                    expected,
                    "width={width} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn kogge_stone_matches_ripple_on_corner_cases() {
        for width in [1u8, 2, 7, 8, 16, 32, 57, 64] {
            for (a, b) in [
                (0u64, 0u64),
                (1, 1),
                (mask(u64::MAX, width), 1),
                (mask(u64::MAX, width), mask(u64::MAX, width)),
                (0xDEAD_BEEF, 0x1234_5678),
            ] {
                assert_eq!(
                    kogge_stone_add(a, b, width),
                    ripple_add(a, b, width),
                    "width={width} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn approx_add_is_exact_without_boundary_carry() {
        // 0x0F + 0x00 never carries across bit 4.
        assert_eq!(approx_add(0x0F, 0x00, 8, 4), ripple_add(0x0F, 0x00, 8));
        assert_eq!(approx_add_error(0x0F, 0x00, 8, 4), 0);
        // 0x0F + 0x01 carries out of the low nibble: the approximation is wrong.
        assert_ne!(approx_add(0x0F, 0x01, 8, 4), ripple_add(0x0F, 0x01, 8));
        assert_eq!(approx_add_error(0x0F, 0x01, 8, 4), 1);
    }

    #[test]
    fn error_detector_is_sound_and_complete_for_8_bit_operands() {
        // Exhaustive over the full 8-bit operand space.
        for a in 0u64..256 {
            for b in 0u64..256 {
                let err = approx_add_error(a, b, 8, 4);
                let exact = ripple_add(a, b, 8);
                let approx = approx_add(a, b, 8, 4);
                assert_eq!(err == 1, exact != approx, "a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn prefix_levels_are_logarithmic() {
        assert_eq!(kogge_stone_levels(1), 1);
        assert_eq!(kogge_stone_levels(2), 1);
        assert_eq!(kogge_stone_levels(8), 3);
        assert_eq!(kogge_stone_levels(32), 5);
        assert_eq!(kogge_stone_levels(64), 6);
    }

    #[test]
    fn spec_bits_equal_to_width_never_errs() {
        for a in [0u64, 1, 17, 255] {
            for b in [0u64, 3, 128, 255] {
                assert_eq!(approx_add_error(a, b, 8, 8), 0);
                assert_eq!(approx_add(a, b, 8, 8), ripple_add(a, b, 8));
            }
        }
    }

    proptest! {
        #[test]
        fn kogge_stone_equals_ripple(a in any::<u64>(), b in any::<u64>(), width in 1u8..=64) {
            prop_assert_eq!(kogge_stone_add(a, b, width), ripple_add(a, b, width));
        }

        #[test]
        fn ripple_equals_native(a in any::<u64>(), b in any::<u64>(), width in 1u8..=57) {
            let expected = mask(a, width) + mask(b, width);
            prop_assert_eq!(ripple_add(a, b, width), expected);
        }

        #[test]
        fn approximation_error_exactly_flags_mismatches(
            a in any::<u64>(),
            b in any::<u64>(),
            width in 2u8..=32,
            boundary in 1u8..=31,
        ) {
            let spec_bits = boundary.min(width);
            let exact = ripple_add(a, b, width);
            let approx = approx_add(a, b, width, spec_bits);
            let err = approx_add_error(a, b, width, spec_bits);
            prop_assert_eq!(err == 1, exact != approx);
        }

        #[test]
        fn addition_is_commutative(a in any::<u64>(), b in any::<u64>(), width in 1u8..=64) {
            prop_assert_eq!(kogge_stone_add(a, b, width), kogge_stone_add(b, a, width));
        }
    }
}
