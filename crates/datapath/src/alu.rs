//! The 8-bit ALU used by the variable-latency pipeline of Section 5.1.
//!
//! The paper implements "a variable latency ALU using a simple pipeline with
//! an 8-bit datapath". The concrete operation mix is not specified, so this
//! ALU provides the usual small-RISC set; its add/sub paths are the long
//! (carry-chain) paths that the approximate unit shortens.

use crate::adder::{mask, ripple_add};

/// Opcodes of the 8-bit ALU. The numeric values are the encodings used on
/// the opcode channel of [`elastic_core::Op::Alu8`] function blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOpcode {
    /// `a + b` (9-bit result including carry out).
    Add = 0,
    /// `a - b` (two's complement, masked to 8 bits).
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR.
    Xor = 4,
    /// Logical shift left by `b & 7`.
    Shl = 5,
    /// Logical shift right by `b & 7`.
    Shr = 6,
    /// Pass `a` through unchanged.
    Pass = 7,
}

impl AluOpcode {
    /// Decodes an opcode from the low bits of an opcode word; unknown
    /// encodings decode to [`AluOpcode::Pass`].
    pub fn from_word(word: u64) -> Self {
        match word & 0x7 {
            0 => AluOpcode::Add,
            1 => AluOpcode::Sub,
            2 => AluOpcode::And,
            3 => AluOpcode::Or,
            4 => AluOpcode::Xor,
            5 => AluOpcode::Shl,
            6 => AluOpcode::Shr,
            _ => AluOpcode::Pass,
        }
    }

    /// All opcodes, in encoding order.
    pub fn all() -> [AluOpcode; 8] {
        [
            AluOpcode::Add,
            AluOpcode::Sub,
            AluOpcode::And,
            AluOpcode::Or,
            AluOpcode::Xor,
            AluOpcode::Shl,
            AluOpcode::Shr,
            AluOpcode::Pass,
        ]
    }
}

/// Evaluates the 8-bit ALU.
///
/// `a` and `b` are masked to 8 bits. Add returns a 9-bit result (carry out in
/// bit 8); every other operation returns an 8-bit result.
pub fn alu8(opcode: AluOpcode, a: u64, b: u64) -> u64 {
    let a = mask(a, 8);
    let b = mask(b, 8);
    match opcode {
        AluOpcode::Add => ripple_add(a, b, 8),
        AluOpcode::Sub => mask(a.wrapping_sub(b), 8),
        AluOpcode::And => a & b,
        AluOpcode::Or => a | b,
        AluOpcode::Xor => a ^ b,
        AluOpcode::Shl => mask(a << (b & 7), 8),
        AluOpcode::Shr => a >> (b & 7),
        AluOpcode::Pass => a,
    }
}

/// Evaluates the ALU with the opcode supplied as a word (the form used by
/// [`elastic_core::Op::Alu8`] function blocks, whose first operand is the
/// opcode channel).
pub fn alu8_word(opcode_word: u64, a: u64, b: u64) -> u64 {
    alu8(AluOpcode::from_word(opcode_word), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_produces_nine_bit_results() {
        assert_eq!(alu8(AluOpcode::Add, 0xFF, 0x01), 0x100);
        assert_eq!(alu8(AluOpcode::Add, 0x7F, 0x01), 0x80);
    }

    #[test]
    fn sub_wraps_to_eight_bits() {
        assert_eq!(alu8(AluOpcode::Sub, 0x00, 0x01), 0xFF);
        assert_eq!(alu8(AluOpcode::Sub, 0x80, 0x80), 0x00);
    }

    #[test]
    fn logic_operations_match_bitwise_operators() {
        assert_eq!(alu8(AluOpcode::And, 0xF0, 0x3C), 0x30);
        assert_eq!(alu8(AluOpcode::Or, 0xF0, 0x3C), 0xFC);
        assert_eq!(alu8(AluOpcode::Xor, 0xF0, 0x3C), 0xCC);
    }

    #[test]
    fn shifts_use_the_low_three_bits_of_the_amount() {
        assert_eq!(alu8(AluOpcode::Shl, 0x01, 3), 0x08);
        assert_eq!(alu8(AluOpcode::Shl, 0x01, 11), 0x08, "shift amount wraps at 8");
        assert_eq!(alu8(AluOpcode::Shr, 0x80, 7), 0x01);
    }

    #[test]
    fn opcode_round_trips_through_its_encoding() {
        for opcode in AluOpcode::all() {
            assert_eq!(AluOpcode::from_word(opcode as u64), opcode);
        }
        assert_eq!(AluOpcode::from_word(0xFF), AluOpcode::Pass);
    }

    proptest! {
        #[test]
        fn results_fit_in_nine_bits(op in 0u64..8, a in any::<u64>(), b in any::<u64>()) {
            let result = alu8_word(op, a, b);
            prop_assert!(result < 0x200);
        }

        #[test]
        fn add_matches_native(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(alu8(AluOpcode::Add, a, b), (a & 0xFF) + (b & 0xFF));
        }

        #[test]
        fn pass_ignores_b(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(alu8(AluOpcode::Pass, a, b), a & 0xFF);
        }
    }
}
