//! Bit-accurate evaluation of [`elastic_core::Op`] operations.
//!
//! The netlist model (`elastic-core`) treats operations as opaque
//! descriptions; this module gives each of them its meaning on `u64` channel
//! words. The cycle-accurate simulator calls [`evaluate`] for every function
//! block, shared module and variable-latency unit each clock cycle.

use std::fmt;

use elastic_core::Op;

use crate::adder::{approx_add, approx_add_error, kogge_stone_add, mask, ripple_add};
use crate::alu::alu8_word;
use crate::secded::Secded;

/// Errors raised when an operation is evaluated with the wrong operand count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// The operation that failed to evaluate.
    pub op: String,
    /// Number of operands supplied.
    pub supplied: usize,
    /// Number of operands required.
    pub required: usize,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operation `{}` requires {} operand(s) but was evaluated with {}",
            self.op, self.required, self.supplied
        )
    }
}

impl std::error::Error for EvalError {}

fn require(op: &Op, inputs: &[u64], required: usize) -> Result<(), EvalError> {
    if inputs.len() >= required {
        Ok(())
    } else {
        Err(EvalError { op: op.mnemonic(), supplied: inputs.len(), required })
    }
}

/// Evaluates `op` on the given operand words.
///
/// Operands beyond the operation's arity are ignored; missing operands are an
/// error. Results are masked to the operation's natural output width when it
/// has one (e.g. comparison operations return `0`/`1`).
///
/// # Errors
///
/// Returns [`EvalError`] when fewer operands than the operation's arity are
/// supplied.
pub fn evaluate(op: &Op, inputs: &[u64]) -> Result<u64, EvalError> {
    let value = match op {
        Op::Identity => {
            require(op, inputs, 1)?;
            inputs[0]
        }
        Op::Const(value) => *value,
        Op::Not => {
            require(op, inputs, 1)?;
            !inputs[0]
        }
        Op::Neg => {
            require(op, inputs, 1)?;
            inputs[0].wrapping_neg()
        }
        Op::Add => {
            require(op, inputs, 1)?;
            inputs.iter().fold(0u64, |acc, &x| acc.wrapping_add(x))
        }
        Op::Sub => {
            require(op, inputs, 2)?;
            inputs[0].wrapping_sub(inputs[1])
        }
        Op::And => {
            require(op, inputs, 1)?;
            inputs.iter().fold(u64::MAX, |acc, &x| acc & x)
        }
        Op::Or => {
            require(op, inputs, 1)?;
            inputs.iter().fold(0u64, |acc, &x| acc | x)
        }
        Op::Xor => {
            require(op, inputs, 1)?;
            inputs.iter().fold(0u64, |acc, &x| acc ^ x)
        }
        Op::Shl => {
            require(op, inputs, 2)?;
            inputs[0].wrapping_shl((inputs[1] & 63) as u32)
        }
        Op::Shr => {
            require(op, inputs, 2)?;
            inputs[0].wrapping_shr((inputs[1] & 63) as u32)
        }
        Op::Inc => {
            require(op, inputs, 1)?;
            inputs[0].wrapping_add(1)
        }
        Op::Dec => {
            require(op, inputs, 1)?;
            inputs[0].wrapping_sub(1)
        }
        Op::Eq => {
            require(op, inputs, 2)?;
            u64::from(inputs[0] == inputs[1])
        }
        Op::Ne => {
            require(op, inputs, 2)?;
            u64::from(inputs[0] != inputs[1])
        }
        Op::Lt => {
            require(op, inputs, 2)?;
            u64::from(inputs[0] < inputs[1])
        }
        Op::Alu8 => {
            require(op, inputs, 3)?;
            alu8_word(inputs[0], inputs[1], inputs[2])
        }
        Op::RippleAdd { width } => {
            require(op, inputs, 2)?;
            ripple_add(inputs[0], inputs[1], *width)
        }
        Op::KoggeStoneAdd { width } => {
            require(op, inputs, 2)?;
            kogge_stone_add(inputs[0], inputs[1], *width)
        }
        Op::ApproxAdd { width, spec_bits } => {
            require(op, inputs, 2)?;
            approx_add(inputs[0], inputs[1], *width, *spec_bits)
        }
        Op::ApproxAddErr { width, spec_bits } => {
            require(op, inputs, 2)?;
            approx_add_error(inputs[0], inputs[1], *width, *spec_bits)
        }
        Op::SecdedEncode { data_width } => {
            require(op, inputs, 1)?;
            Secded::new(*data_width).encode(inputs[0])
        }
        Op::SecdedCorrect { data_width } => {
            require(op, inputs, 1)?;
            Secded::new(*data_width).correct(inputs[0])
        }
        Op::SecdedSyndrome { data_width } => {
            require(op, inputs, 1)?;
            Secded::new(*data_width).classify(inputs[0]).to_word()
        }
        Op::BitSelect { bit } => {
            require(op, inputs, 1)?;
            (inputs[0] >> (bit & 63)) & 1
        }
        Op::Mask { width } => {
            require(op, inputs, 1)?;
            mask(inputs[0], *width)
        }
        Op::Lut(table) => {
            require(op, inputs, 1)?;
            if table.is_empty() {
                0
            } else {
                table[(inputs[0] as usize) % table.len()]
            }
        }
        Op::Opaque { .. } => {
            require(op, inputs, 1)?;
            // Opaque blocks are timing/area placeholders; functionally they
            // pass their first operand through so transfer-equivalence checks
            // remain meaningful.
            inputs[0]
        }
        // `Op` is non-exhaustive: future operations default to passing the
        // first operand through (or zero when there is none).
        _ => inputs.first().copied().unwrap_or(0),
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_logic_ops_match_native_semantics() {
        assert_eq!(evaluate(&Op::Add, &[1, 2, 3]).unwrap(), 6);
        assert_eq!(evaluate(&Op::Sub, &[5, 7]).unwrap(), u64::MAX - 1);
        assert_eq!(evaluate(&Op::And, &[0xF0, 0xFF]).unwrap(), 0xF0);
        assert_eq!(evaluate(&Op::Or, &[0xF0, 0x0F]).unwrap(), 0xFF);
        assert_eq!(evaluate(&Op::Xor, &[0xFF, 0x0F]).unwrap(), 0xF0);
        assert_eq!(evaluate(&Op::Inc, &[41]).unwrap(), 42);
        assert_eq!(evaluate(&Op::Dec, &[0]).unwrap(), u64::MAX);
        assert_eq!(evaluate(&Op::Eq, &[3, 3]).unwrap(), 1);
        assert_eq!(evaluate(&Op::Ne, &[3, 3]).unwrap(), 0);
        assert_eq!(evaluate(&Op::Lt, &[2, 3]).unwrap(), 1);
        assert_eq!(evaluate(&Op::Const(9), &[]).unwrap(), 9);
        assert_eq!(evaluate(&Op::BitSelect { bit: 4 }, &[0x10]).unwrap(), 1);
        assert_eq!(evaluate(&Op::Mask { width: 4 }, &[0xFF]).unwrap(), 0x0F);
        assert_eq!(evaluate(&Op::Lut(vec![7, 8, 9]), &[4]).unwrap(), 8);
    }

    #[test]
    fn adders_delegate_to_the_datapath_implementations() {
        assert_eq!(evaluate(&Op::RippleAdd { width: 8 }, &[200, 100]).unwrap(), 300);
        assert_eq!(
            evaluate(&Op::KoggeStoneAdd { width: 32 }, &[1 << 31, 1 << 31]).unwrap(),
            1 << 32
        );
        assert_eq!(
            evaluate(&Op::ApproxAddErr { width: 8, spec_bits: 4 }, &[0x0F, 0x01]).unwrap(),
            1
        );
    }

    #[test]
    fn secded_ops_round_trip_through_the_code() {
        let data = 0x1234_5678u64;
        let codeword = evaluate(&Op::SecdedEncode { data_width: 32 }, &[data]).unwrap();
        assert_eq!(evaluate(&Op::SecdedCorrect { data_width: 32 }, &[codeword]).unwrap(), data);
        assert_eq!(evaluate(&Op::SecdedSyndrome { data_width: 32 }, &[codeword]).unwrap(), 0);
        let corrupted = codeword ^ 2;
        assert_eq!(evaluate(&Op::SecdedCorrect { data_width: 32 }, &[corrupted]).unwrap(), data);
        assert_eq!(evaluate(&Op::SecdedSyndrome { data_width: 32 }, &[corrupted]).unwrap(), 1);
    }

    #[test]
    fn opaque_ops_pass_their_first_operand_through() {
        let op = elastic_core::op::opaque("F", 5, 50);
        assert_eq!(evaluate(&op, &[0xAB, 0xCD]).unwrap(), 0xAB);
    }

    #[test]
    fn missing_operands_are_reported() {
        let err = evaluate(&Op::Sub, &[1]).unwrap_err();
        assert_eq!(err.required, 2);
        assert_eq!(err.supplied, 1);
        assert!(err.to_string().contains("sub"));
        assert!(evaluate(&Op::Identity, &[]).is_err());
    }

    #[test]
    fn empty_lut_evaluates_to_zero() {
        assert_eq!(evaluate(&Op::Lut(Vec::new()), &[5]).unwrap(), 0);
    }
}
