//! Deterministic linear-feedback shift registers.
//!
//! Workload generation must be reproducible across simulation runs and across
//! the benchmark harness, so the generators in [`crate::workload`] are built
//! on a simple 64-bit Galois LFSR rather than on an externally-seeded RNG.
//! (The `rand` crate is still used where statistical quality matters more
//! than bit-for-bit reproducibility of the hardware model, e.g. proptest
//! strategies.)

/// A 64-bit Galois LFSR with a maximum-length feedback polynomial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr64 {
    state: u64,
}

/// Feedback taps for a maximal-length 64-bit LFSR (x^64 + x^63 + x^61 + x^60 + 1).
const TAPS: u64 = 0xD800_0000_0000_0000;

impl Lfsr64 {
    /// Creates an LFSR from a seed; a zero seed is mapped to a fixed non-zero
    /// constant because the all-zero state is a fixed point.
    pub fn new(seed: u64) -> Self {
        Lfsr64 { state: if seed == 0 { 0x1357_9BDF_2468_ACE0 } else { seed } }
    }

    /// Advances the register by one bit.
    fn step(&mut self) {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= TAPS;
        }
    }

    /// Produces the next 64-bit word.
    ///
    /// The register is stepped 64 times per word so that successive words are
    /// decorrelated (single-bit steps would make consecutive outputs simple
    /// shifts of each other).
    pub fn next_word(&mut self) -> u64 {
        for _ in 0..64 {
            self.step();
        }
        self.state
    }

    /// Returns a value uniformly distributed over `0..bound` (bound > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_word() % bound
    }

    /// Returns `true` with (approximately) the given probability.
    pub fn next_bool(&mut self, probability: f64) -> bool {
        if probability <= 0.0 {
            return false;
        }
        if probability >= 1.0 {
            return true;
        }
        let threshold = (probability * (u32::MAX as f64)) as u64;
        (self.next_word() & 0xFFFF_FFFF) < threshold
    }

    /// Current internal state (useful for checkpointing in tests).
    pub fn state(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let mut a = Lfsr64::new(42);
        let mut b = Lfsr64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_word(), b.next_word());
        }
        let mut c = Lfsr64::new(43);
        let differs = (0..100).any(|_| a.next_word() != c.next_word());
        assert!(differs);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut lfsr = Lfsr64::new(0);
        assert_ne!(lfsr.state(), 0);
        assert_ne!(lfsr.next_word(), 0);
    }

    #[test]
    fn state_never_reaches_zero() {
        let mut lfsr = Lfsr64::new(1);
        for _ in 0..10_000 {
            assert_ne!(lfsr.next_word(), 0);
        }
    }

    #[test]
    fn next_below_respects_the_bound() {
        let mut lfsr = Lfsr64::new(7);
        for _ in 0..1000 {
            assert!(lfsr.next_below(10) < 10);
        }
    }

    #[test]
    fn next_bool_matches_probability_roughly() {
        let mut lfsr = Lfsr64::new(99);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| lfsr.next_bool(0.25)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed rate {rate}");
        assert!(!Lfsr64::new(1).next_bool(0.0));
        assert!(Lfsr64::new(1).next_bool(1.0));
    }
}
