//! # elastic-datapath
//!
//! Bit-accurate datapath substrates for the *Speculation in Elastic Systems*
//! reproduction. The paper evaluates speculation on two datapaths — an 8-bit
//! variable-latency ALU (Section 5.1) and a 64-bit prefix adder protected by
//! SECDED error correction (Section 5.2). This crate implements those
//! datapaths (and the approximate/error-detecting units they rely on) from
//! scratch, plus the workload generators that drive the experiments:
//!
//! * [`adder`] — ripple-carry and Kogge-Stone prefix adders, the
//!   carry-speculating approximate adder `F_approx` and its error detector
//!   `F_err`;
//! * [`alu`] — the 8-bit ALU used by the variable-latency pipeline;
//! * [`secded`] — parametric Hamming single-error-correction /
//!   double-error-detection codes, including the classic (72,64) code;
//! * [`lfsr`] — deterministic LFSR pseudo-random bit streams;
//! * [`workload`] — reproducible workload generators (operand streams with a
//!   target approximation-error rate, soft-error masks with a target upset
//!   rate, biased select streams);
//! * [`eval`] — the evaluator that gives every [`elastic_core::Op`] its
//!   bit-accurate meaning (used by the `elastic-sim` cycle-accurate
//!   simulator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adder;
pub mod alu;
pub mod eval;
pub mod lfsr;
pub mod secded;
pub mod workload;

pub use eval::{evaluate, EvalError};
