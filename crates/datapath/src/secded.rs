//! Hamming SECDED (single error correction, double error detection) codes.
//!
//! The paper's Section 5.2 protects a 64-bit datapath with the classic
//! (72,64) Hamming SECDED code: 8 check bits detect and correct any single
//! bit flip and detect (but cannot correct) double flips. This module
//! implements the code parametrically:
//!
//! * [`Secded`] works for any data width up to 57 bits so that the codeword
//!   fits the 64-bit data words carried by elastic channels (57 data + 6
//!   Hamming parity + 1 overall parity = 64);
//! * [`Secded72`] is the full (72,64) code on `u128` codewords, provided for
//!   completeness and tested against the same properties.
//!
//! The layout is *systematic*: data bits occupy the low `k` bits of the
//! codeword, followed by the Hamming parity bits and finally the overall
//! parity bit. A systematic layout lets the speculative design of Figure 7(b)
//! read the (unchecked) data with a plain mask while SECDED verifies the
//! codeword in parallel.

/// Classification of a received codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syndrome {
    /// No error detected.
    Clean,
    /// A single-bit error was detected (and is correctable).
    Corrected,
    /// A double-bit error was detected (not correctable).
    DoubleError,
}

impl Syndrome {
    /// Encoding used on elastic channels (`0`, `1`, `2`).
    pub fn to_word(self) -> u64 {
        match self {
            Syndrome::Clean => 0,
            Syndrome::Corrected => 1,
            Syndrome::DoubleError => 2,
        }
    }
}

/// Number of Hamming parity bits needed for `data_width` data bits.
pub fn parity_bits(data_width: u8) -> u8 {
    let mut r = 0u8;
    while (1u64 << r) < u64::from(data_width) + u64::from(r) + 1 {
        r += 1;
    }
    r
}

/// Total codeword width (data + Hamming parity + overall parity).
pub fn codeword_width(data_width: u8) -> u8 {
    data_width + parity_bits(data_width) + 1
}

/// A parametric Hamming SECDED code with a systematic layout, for data widths
/// up to 57 bits (codeword up to 64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Secded {
    data_width: u8,
    parity: u8,
}

impl Secded {
    /// Creates the code for the given data width.
    ///
    /// # Panics
    ///
    /// Panics when `data_width` is zero or larger than 57 (the codeword would
    /// not fit in a 64-bit channel word).
    pub fn new(data_width: u8) -> Self {
        assert!(
            (1..=57).contains(&data_width),
            "SECDED data width must be between 1 and 57 bits, got {data_width}"
        );
        Secded { data_width, parity: parity_bits(data_width) }
    }

    /// Protected data width in bits.
    pub fn data_width(&self) -> u8 {
        self.data_width
    }

    /// Codeword width in bits.
    pub fn codeword_width(&self) -> u8 {
        self.data_width + self.parity + 1
    }

    /// Position (within the classic Hamming indexing, 1-based) of the j-th
    /// data bit: data bits are placed at the non-power-of-two positions.
    fn hamming_position_of_data_bit(&self, data_bit: u8) -> u32 {
        let mut position = 1u32; // 1-based Hamming position
        let mut seen = 0u8;
        loop {
            if !position.is_power_of_two() {
                if seen == data_bit {
                    return position;
                }
                seen += 1;
            }
            position += 1;
        }
    }

    /// Computes the Hamming parity bits of a data word.
    fn hamming_parity(&self, data: u64) -> u64 {
        let mut parity_word = 0u64;
        for p in 0..self.parity {
            let parity_position = 1u32 << p;
            let mut parity = 0u64;
            for data_bit in 0..self.data_width {
                let position = self.hamming_position_of_data_bit(data_bit);
                if position & parity_position != 0 {
                    parity ^= (data >> data_bit) & 1;
                }
            }
            parity_word |= parity << p;
        }
        parity_word
    }

    /// Encodes a data word into a codeword (data in the low bits, Hamming
    /// parity above, overall parity in the top bit of the codeword).
    pub fn encode(&self, data: u64) -> u64 {
        let data = data & crate::adder::mask(u64::MAX, self.data_width);
        let parity_word = self.hamming_parity(data);
        let without_overall = data | (parity_word << self.data_width);
        let overall = (without_overall.count_ones() as u64) & 1;
        without_overall | (overall << (self.data_width + self.parity))
    }

    /// Extracts the (uncorrected) data bits of a codeword.
    pub fn raw_data(&self, codeword: u64) -> u64 {
        codeword & crate::adder::mask(u64::MAX, self.data_width)
    }

    /// Decodes a codeword: returns the corrected data and the syndrome
    /// classification.
    pub fn decode(&self, codeword: u64) -> (u64, Syndrome) {
        let data = self.raw_data(codeword);
        let received_parity =
            (codeword >> self.data_width) & crate::adder::mask(u64::MAX, self.parity);
        let received_overall = (codeword >> (self.data_width + self.parity)) & 1;

        let expected_parity = self.hamming_parity(data);
        let syndrome = received_parity ^ expected_parity;
        let without_overall =
            codeword & crate::adder::mask(u64::MAX, self.data_width + self.parity);
        let overall_ok = ((without_overall.count_ones() as u64) & 1) == received_overall;

        if syndrome == 0 && overall_ok {
            return (data, Syndrome::Clean);
        }
        if syndrome == 0 && !overall_ok {
            // Only the overall parity bit was flipped; the data is intact.
            return (data, Syndrome::Corrected);
        }
        if overall_ok {
            // Non-zero Hamming syndrome but overall parity matches: two bits flipped.
            return (data, Syndrome::DoubleError);
        }
        // Single-bit error at Hamming position `syndrome`.
        let position = syndrome as u32;
        if position.is_power_of_two() {
            // A parity bit itself was hit; the data is intact.
            return (data, Syndrome::Corrected);
        }
        // Find which data bit lives at that Hamming position.
        let mut corrected = data;
        for data_bit in 0..self.data_width {
            if self.hamming_position_of_data_bit(data_bit) == position {
                corrected ^= 1 << data_bit;
                break;
            }
        }
        (corrected, Syndrome::Corrected)
    }

    /// Convenience: corrected data only.
    pub fn correct(&self, codeword: u64) -> u64 {
        self.decode(codeword).0
    }

    /// Convenience: syndrome classification only.
    pub fn classify(&self, codeword: u64) -> Syndrome {
        self.decode(codeword).1
    }
}

/// The classic (72,64) SECDED code on `u128` codewords.
///
/// The elastic channels of this workspace carry 64-bit words, so the netlist
/// experiments use [`Secded`] with narrower data; this type exists to show
/// the full-width code of the paper works identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Secded72;

impl Secded72 {
    /// Number of Hamming parity bits (7) — the eighth check bit is the
    /// overall parity.
    pub const PARITY_BITS: u8 = 7;
    /// Codeword width: 64 data + 7 Hamming + 1 overall = 72.
    pub const CODEWORD_WIDTH: u8 = 72;

    fn hamming_position_of_data_bit(data_bit: u8) -> u32 {
        let mut position = 1u32;
        let mut seen = 0u8;
        loop {
            if !position.is_power_of_two() {
                if seen == data_bit {
                    return position;
                }
                seen += 1;
            }
            position += 1;
        }
    }

    fn hamming_parity(data: u64) -> u64 {
        let mut parity_word = 0u64;
        for p in 0..Self::PARITY_BITS {
            let parity_position = 1u32 << p;
            let mut parity = 0u64;
            for data_bit in 0..64 {
                if Self::hamming_position_of_data_bit(data_bit) & parity_position != 0 {
                    parity ^= (data >> data_bit) & 1;
                }
            }
            parity_word |= parity << p;
        }
        parity_word
    }

    /// Encodes 64 data bits into a 72-bit codeword.
    pub fn encode(data: u64) -> u128 {
        let parity = Self::hamming_parity(data) as u128;
        let without_overall = data as u128 | (parity << 64);
        let overall = (without_overall.count_ones() as u128) & 1;
        without_overall | (overall << 71)
    }

    /// Decodes a 72-bit codeword into corrected data and a syndrome class.
    pub fn decode(codeword: u128) -> (u64, Syndrome) {
        let data = codeword as u64;
        let received_parity = ((codeword >> 64) & 0x7F) as u64;
        let received_overall = ((codeword >> 71) & 1) as u64;
        let expected_parity = Self::hamming_parity(data);
        let syndrome = received_parity ^ expected_parity;
        let without_overall = codeword & ((1u128 << 71) - 1);
        let overall_ok = ((without_overall.count_ones() as u64) & 1) == received_overall;

        if syndrome == 0 && overall_ok {
            return (data, Syndrome::Clean);
        }
        if syndrome == 0 {
            return (data, Syndrome::Corrected);
        }
        if overall_ok {
            return (data, Syndrome::DoubleError);
        }
        let position = syndrome as u32;
        if position.is_power_of_two() {
            return (data, Syndrome::Corrected);
        }
        let mut corrected = data;
        for data_bit in 0..64 {
            if Self::hamming_position_of_data_bit(data_bit) == position {
                corrected ^= 1 << data_bit;
                break;
            }
        }
        (corrected, Syndrome::Corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_codewords_round_trip() {
        let code = Secded::new(32);
        for data in [0u64, 1, 0xDEAD_BEEF, 0xFFFF_FFFF, 0x1234_5678] {
            let codeword = code.encode(data);
            let (decoded, syndrome) = code.decode(codeword);
            assert_eq!(decoded, data & 0xFFFF_FFFF);
            assert_eq!(syndrome, Syndrome::Clean);
            assert_eq!(code.raw_data(codeword), data & 0xFFFF_FFFF);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected_width_32() {
        let code = Secded::new(32);
        let data = 0xCAFE_F00Du64 & 0xFFFF_FFFF;
        let codeword = code.encode(data);
        for bit in 0..code.codeword_width() {
            let corrupted = codeword ^ (1u64 << bit);
            let (decoded, syndrome) = code.decode(corrupted);
            assert_eq!(syndrome, Syndrome::Corrected, "bit {bit}");
            assert_eq!(decoded, data, "bit {bit}");
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_width_16() {
        let code = Secded::new(16);
        let data = 0xA5A5u64;
        let codeword = code.encode(data);
        let width = code.codeword_width();
        for first in 0..width {
            for second in (first + 1)..width {
                let corrupted = codeword ^ (1u64 << first) ^ (1u64 << second);
                let syndrome = code.classify(corrupted);
                assert_eq!(syndrome, Syndrome::DoubleError, "bits {first},{second}");
            }
        }
    }

    #[test]
    fn codeword_widths_match_core_helper() {
        for width in [4u8, 8, 16, 32, 57] {
            assert_eq!(
                codeword_width(width),
                elastic_core::op::secded_codeword_width(width),
                "width {width}"
            );
        }
        assert_eq!(Secded::new(57).codeword_width(), 64);
        assert_eq!(Secded::new(32).codeword_width(), 39);
    }

    #[test]
    fn full_72_64_code_corrects_single_errors() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let codeword = Secded72::encode(data);
        let (decoded, syndrome) = Secded72::decode(codeword);
        assert_eq!((decoded, syndrome), (data, Syndrome::Clean));
        for bit in 0..Secded72::CODEWORD_WIDTH {
            let corrupted = codeword ^ (1u128 << bit);
            let (decoded, syndrome) = Secded72::decode(corrupted);
            assert_eq!(syndrome, Syndrome::Corrected, "bit {bit}");
            assert_eq!(decoded, data, "bit {bit}");
        }
    }

    #[test]
    fn full_72_64_code_detects_double_errors() {
        let data = 0xFEDC_BA98_7654_3210u64;
        let codeword = Secded72::encode(data);
        for first in [0u8, 13, 40, 63, 64, 70, 71] {
            for second in [5u8, 21, 47, 62, 66, 69] {
                if first == second {
                    continue;
                }
                let corrupted = codeword ^ (1u128 << first) ^ (1u128 << second);
                let (_, syndrome) = Secded72::decode(corrupted);
                assert_eq!(syndrome, Syndrome::DoubleError, "bits {first},{second}");
            }
        }
    }

    #[test]
    fn out_of_range_widths_panic() {
        let result = std::panic::catch_unwind(|| Secded::new(58));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(|| Secded::new(0));
        assert!(result.is_err());
    }

    proptest! {
        #[test]
        fn encode_decode_round_trips(data in any::<u64>(), width in 1u8..=57) {
            let code = Secded::new(width);
            let masked = data & crate::adder::mask(u64::MAX, width);
            let (decoded, syndrome) = code.decode(code.encode(data));
            prop_assert_eq!(decoded, masked);
            prop_assert_eq!(syndrome, Syndrome::Clean);
        }

        #[test]
        fn single_errors_are_corrected(data in any::<u64>(), width in 2u8..=57, bit in 0u8..64) {
            let code = Secded::new(width);
            let bit = bit % code.codeword_width();
            let codeword = code.encode(data) ^ (1u64 << bit);
            let (decoded, syndrome) = code.decode(codeword);
            prop_assert_eq!(syndrome, Syndrome::Corrected);
            prop_assert_eq!(decoded, data & crate::adder::mask(u64::MAX, width));
        }

        #[test]
        fn full_width_code_round_trips(data in any::<u64>()) {
            let (decoded, syndrome) = Secded72::decode(Secded72::encode(data));
            prop_assert_eq!(decoded, data);
            prop_assert_eq!(syndrome, Syndrome::Clean);
        }
    }
}
