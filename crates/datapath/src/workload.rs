//! Reproducible workload generators for the paper's experiments.
//!
//! The paper does not publish concrete workloads; its results are
//! parameterised implicitly by how often speculation succeeds (prediction
//! accuracy, approximation-error rate, soft-error rate). These generators
//! expose those parameters explicitly so every benchmark can sweep them:
//!
//! * [`uniform_operands`] — plain uniform operand streams;
//! * [`approx_error_operands`] — operand pairs whose carry crosses the
//!   speculation boundary with a chosen probability (drives Figure 6);
//! * [`biased_select_values`] — data whose low bit (the branch decision
//!   computed by `G` in Figure 1) is 1 with a chosen probability;
//! * [`soft_error_masks`] — per-cycle single-bit upset masks with a chosen
//!   upset probability (drives Figure 7);
//! * [`encoded_stream`] — SECDED codewords with optional injected upsets.

use crate::adder::{approx_add_error, mask};
use crate::lfsr::Lfsr64;
use crate::secded::Secded;

/// A stream of `len` uniform `width`-bit operands.
pub fn uniform_operands(width: u8, len: usize, seed: u64) -> Vec<u64> {
    let mut lfsr = Lfsr64::new(seed);
    (0..len).map(|_| mask(lfsr.next_word(), width)).collect()
}

/// Operand pairs `(a, b)` for the approximate adder such that the
/// approximation fails (a carry crosses the `spec_bits` boundary) with
/// probability `error_rate`.
///
/// The generator draws uniform operands and then patches the low parts so the
/// boundary carry is forced to the desired outcome, keeping the upper parts
/// untouched — the value distribution stays wide while the error rate is
/// controlled exactly per element.
pub fn approx_error_operands(
    width: u8,
    spec_bits: u8,
    error_rate: f64,
    len: usize,
    seed: u64,
) -> (Vec<u64>, Vec<u64>) {
    assert!(
        spec_bits >= 1 && spec_bits < width,
        "the speculation boundary must lie strictly inside the operand"
    );
    let mut lfsr = Lfsr64::new(seed);
    let mut operands_a = Vec::with_capacity(len);
    let mut operands_b = Vec::with_capacity(len);
    let low_mask = mask(u64::MAX, spec_bits);
    for _ in 0..len {
        let mut a = mask(lfsr.next_word(), width);
        let mut b = mask(lfsr.next_word(), width);
        let want_error = lfsr.next_bool(error_rate);
        if want_error {
            // Force a carry out of the low part: make both low halves large.
            a |= low_mask;
            b = (b & !low_mask) | 1;
        } else {
            // Prevent the carry: clear the top bit of both low halves.
            let no_carry_mask = low_mask >> 1;
            a = (a & !low_mask) | (a & no_carry_mask);
            b = (b & !low_mask) | (b & no_carry_mask);
        }
        debug_assert_eq!(
            approx_add_error(a, b, width, spec_bits) == 1,
            want_error,
            "generator must hit the requested error outcome exactly"
        );
        operands_a.push(a);
        operands_b.push(b);
    }
    (operands_a, operands_b)
}

/// A stream of `width`-bit values whose low bit is 1 with probability
/// `taken_rate` — used to drive the select-computing block `G` of the
/// Figure-1 loop, so `taken_rate` becomes the branch-taken probability.
pub fn biased_select_values(width: u8, taken_rate: f64, len: usize, seed: u64) -> Vec<u64> {
    let mut lfsr = Lfsr64::new(seed);
    (0..len)
        .map(|_| {
            let value = mask(lfsr.next_word(), width) & !1;
            value | u64::from(lfsr.next_bool(taken_rate))
        })
        .collect()
}

/// Per-cycle soft-error masks: each entry is either `0` (no upset) or a
/// single-bit mask within the `codeword_width`-bit codeword, with upset
/// probability `upset_rate` per cycle.
pub fn soft_error_masks(codeword_width: u8, upset_rate: f64, len: usize, seed: u64) -> Vec<u64> {
    let mut lfsr = Lfsr64::new(seed);
    (0..len)
        .map(|_| {
            if lfsr.next_bool(upset_rate) {
                1u64 << lfsr.next_below(u64::from(codeword_width))
            } else {
                0
            }
        })
        .collect()
}

/// A stream of SECDED codewords encoding uniform data, with single-bit upsets
/// injected at the given rate. Returns `(codewords, clean_data)` so tests can
/// check end-to-end correction.
pub fn encoded_stream(
    data_width: u8,
    upset_rate: f64,
    len: usize,
    seed: u64,
) -> (Vec<u64>, Vec<u64>) {
    let code = Secded::new(data_width);
    let mut lfsr = Lfsr64::new(seed);
    let mut codewords = Vec::with_capacity(len);
    let mut clean = Vec::with_capacity(len);
    for _ in 0..len {
        let data = mask(lfsr.next_word(), data_width);
        let mut codeword = code.encode(data);
        if lfsr.next_bool(upset_rate) {
            codeword ^= 1u64 << lfsr.next_below(u64::from(code.codeword_width()));
        }
        codewords.push(codeword);
        clean.push(data);
    }
    (codewords, clean)
}

/// Fraction of entries in `masks` that inject an upset (diagnostic helper for
/// reports and tests).
pub fn observed_upset_rate(masks: &[u64]) -> f64 {
    if masks.is_empty() {
        return 0.0;
    }
    masks.iter().filter(|&&m| m != 0).count() as f64 / masks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::approx_add_error;
    use crate::secded::Syndrome;

    #[test]
    fn uniform_operands_respect_the_width() {
        let ops = uniform_operands(8, 1000, 3);
        assert_eq!(ops.len(), 1000);
        assert!(ops.iter().all(|&v| v < 256));
        assert!(ops.iter().any(|&v| v > 0));
    }

    #[test]
    fn approx_error_operands_hit_the_requested_rate_exactly_at_the_extremes() {
        let (a, b) = approx_error_operands(8, 4, 0.0, 500, 11);
        assert!(a.iter().zip(&b).all(|(&a, &b)| approx_add_error(a, b, 8, 4) == 0));
        let (a, b) = approx_error_operands(8, 4, 1.0, 500, 11);
        assert!(a.iter().zip(&b).all(|(&a, &b)| approx_add_error(a, b, 8, 4) == 1));
    }

    #[test]
    fn approx_error_operands_track_intermediate_rates() {
        let (a, b) = approx_error_operands(8, 4, 0.2, 5000, 17);
        let observed = a.iter().zip(&b).filter(|(&a, &b)| approx_add_error(a, b, 8, 4) == 1).count()
            as f64
            / a.len() as f64;
        assert!((observed - 0.2).abs() < 0.03, "observed error rate {observed}");
    }

    #[test]
    fn biased_select_values_track_the_taken_rate() {
        for rate in [0.0, 0.3, 0.9, 1.0] {
            let values = biased_select_values(8, rate, 4000, 23);
            let observed =
                values.iter().filter(|&&v| v & 1 == 1).count() as f64 / values.len() as f64;
            assert!((observed - rate).abs() < 0.03, "rate {rate} observed {observed}");
        }
    }

    #[test]
    fn soft_error_masks_are_single_bit_and_rate_controlled() {
        let masks = soft_error_masks(39, 0.1, 5000, 5);
        assert!(masks.iter().all(|&m| m == 0 || m.count_ones() == 1));
        assert!(masks.iter().all(|&m| m < (1u64 << 39)));
        let rate = observed_upset_rate(&masks);
        assert!((rate - 0.1).abs() < 0.02, "observed upset rate {rate}");
    }

    #[test]
    fn encoded_stream_is_correctable() {
        let (codewords, clean) = encoded_stream(32, 0.5, 300, 9);
        let code = Secded::new(32);
        for (codeword, data) in codewords.iter().zip(&clean) {
            let (decoded, syndrome) = code.decode(*codeword);
            assert_eq!(decoded, *data);
            assert!(matches!(syndrome, Syndrome::Clean | Syndrome::Corrected));
        }
    }

    #[test]
    fn observed_upset_rate_handles_empty_input() {
        assert_eq!(observed_upset_rate(&[]), 0.0);
    }
}
