//! Candidate enumeration: the cross product of speculation sites, commit
//! depths, recovery buffers, and scheduler policies.
//!
//! A [`SpecConfig`] is a *self-contained* description of one point in the
//! design space: it carries everything [`elastic_core::transform::speculate`]
//! needs, so a configuration returned by the explorer can be re-applied by
//! the caller (and by the soundness harness) without consulting the explorer
//! again. Enumeration order is canonical — sites sorted by multiplexor name,
//! then depth, then scheduler, then recovery placement — so the grid itself
//! never depends on hash-map iteration or netlist id allocation order.

use elastic_analysis::cost::CostModel;
use elastic_analysis::critical;
use elastic_core::kind::{BufferSpec, SchedulerKind};
use elastic_core::transform::{speculate, SpeculateOptions, SpeculationReport};
use elastic_core::{Netlist, NodeId, NodeKind, Result as CoreResult};

use crate::ExploreOptions;

/// What kind of speculation site a multiplexor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// The multiplexor's select input closes a cycle through its output —
    /// the paper's Section 4 target. The commit stage is skipped (the loop's
    /// elastic buffer already decouples the speculation), so commit depth is
    /// not a free axis here.
    SelectLoop,
    /// A feed-forward multiplexor: speculation is forced with
    /// `allow_acyclic` and soundness comes from the in-order commit stage,
    /// whose per-lane depth *is* a free axis.
    FeedForward,
}

impl SiteKind {
    /// Short label used in candidate descriptions.
    pub fn label(self) -> &'static str {
        match self {
            SiteKind::SelectLoop => "select-loop",
            SiteKind::FeedForward => "feed-forward",
        }
    }
}

/// One point of the candidate grid: a single speculation applied to a single
/// multiplexor with fully pinned options.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecConfig {
    /// The multiplexor to speculate.
    pub mux: NodeId,
    /// Its instance name (stable across the clone-and-transform cycle, and
    /// the key used for canonical ordering).
    pub mux_name: String,
    /// Whether the site is a select loop or a feed-forward mux.
    pub site: SiteKind,
    /// Scheduler policy installed in the shared module.
    pub scheduler: SchedulerKind,
    /// Per-lane commit-stage depth (fixed at 1 on select loops, where the
    /// stage is skipped anyway).
    pub commit_depth: u32,
    /// Recovery buffer between the shared module and the multiplexor.
    pub recovery_buffer: Option<BufferSpec>,
    /// Starvation override for the shared module controller.
    pub starvation_limit: Option<u32>,
}

impl SpecConfig {
    /// The [`SpeculateOptions`] this configuration pins.
    pub fn speculate_options(&self) -> SpeculateOptions {
        SpeculateOptions {
            scheduler: self.scheduler.clone(),
            recovery_buffer: self.recovery_buffer,
            starvation_limit: self.starvation_limit,
            allow_acyclic: self.site == SiteKind::FeedForward,
            commit_stage: true,
            commit_depth: self.commit_depth,
        }
    }

    /// Applies this configuration to `netlist` (atomically, like
    /// [`speculate`] itself).
    ///
    /// # Errors
    ///
    /// Propagates the transform's precondition and structural failures; the
    /// netlist is untouched on error.
    pub fn apply(&self, netlist: &mut Netlist) -> CoreResult<SpeculationReport> {
        speculate(netlist, self.mux, &self.speculate_options())
    }

    /// Short label of the recovery-buffer axis.
    fn recovery_label(&self) -> String {
        match &self.recovery_buffer {
            None => "direct".to_string(),
            Some(spec) => format!(
                "eb(Lf{},Lb{},C{})",
                spec.forward_latency, spec.backward_latency, spec.capacity
            ),
        }
    }

    /// Canonical human-readable description, also used as the sort key for
    /// every candidate list the explorer returns.
    pub fn label(&self) -> String {
        format!(
            "{} [{}] depth={} scheduler={:?} recovery={}",
            self.mux_name,
            self.site.label(),
            self.commit_depth,
            self.scheduler,
            self.recovery_label()
        )
    }

    /// Canonical ordering key: mux name, site, depth, scheduler, recovery.
    pub fn rank_key(&self) -> (String, u8, u32, String, String) {
        (
            self.mux_name.clone(),
            self.site as u8,
            self.commit_depth,
            format!("{:?}", self.scheduler),
            self.recovery_label(),
        )
    }
}

/// Enumerates the candidate grid of `netlist` under `options`.
///
/// Sites come from two detectors: [`critical::speculation_candidates`]
/// (multiplexors whose select closes a cycle) and a sweep over the remaining
/// live multiplexors (feed-forward sites, included only when
/// [`ExploreOptions::include_acyclic`] is set). Multiplexors the transform
/// will reject — already-speculated designs, rendezvous conflicts — are
/// *kept in the grid*: the explorer surfaces them as skipped candidates with
/// the transform's own reason, never as silent holes.
pub fn enumerate_candidates(netlist: &Netlist, options: &ExploreOptions) -> Vec<SpecConfig> {
    let model = CostModel::default();
    let loop_sites: Vec<NodeId> =
        critical::speculation_candidates(netlist, &model).iter().map(|c| c.mux).collect();

    let mut sites: Vec<(NodeId, String, SiteKind)> = Vec::new();
    for node in netlist.live_nodes() {
        if !matches!(node.kind, NodeKind::Mux(_)) {
            continue;
        }
        let site = if loop_sites.contains(&node.id) {
            SiteKind::SelectLoop
        } else if options.include_acyclic {
            SiteKind::FeedForward
        } else {
            continue;
        };
        sites.push((node.id, node.name.clone(), site));
    }
    sites.sort_by(|a, b| a.1.cmp(&b.1));

    let mut grid = Vec::new();
    for (mux, mux_name, site) in sites {
        // On a select loop the commit stage is skipped entirely, so depth is
        // not a free axis: enumerating it would produce byte-identical
        // netlists under different labels.
        let depths: &[u32] = match site {
            SiteKind::SelectLoop => &[1],
            SiteKind::FeedForward => &options.depths,
        };
        for &commit_depth in depths {
            for scheduler in &options.schedulers {
                for recovery_buffer in &options.recovery {
                    grid.push(SpecConfig {
                        mux,
                        mux_name: mux_name.clone(),
                        site,
                        scheduler: scheduler.clone(),
                        commit_depth,
                        recovery_buffer: *recovery_buffer,
                        starvation_limit: options.starvation_limit,
                    });
                }
            }
        }
    }
    grid.sort_by_key(SpecConfig::rank_key);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1a, Fig1Config};

    #[test]
    fn fig1a_enumerates_its_select_loop_once_per_policy_axis() {
        let handles = fig1a(&Fig1Config::default());
        let options = ExploreOptions::default();
        let grid = enumerate_candidates(&handles.netlist, &options);
        // One select-loop site, depth pinned to 1: schedulers × recovery.
        let expected = options.schedulers.len() * options.recovery.len();
        assert_eq!(grid.len(), expected);
        assert!(grid.iter().all(|c| c.site == SiteKind::SelectLoop && c.commit_depth == 1));
        assert!(grid.iter().all(|c| c.mux == handles.mux));
    }

    #[test]
    fn the_grid_is_canonically_sorted() {
        let handles = fig1a(&Fig1Config::default());
        let grid = enumerate_candidates(&handles.netlist, &ExploreOptions::default());
        let mut keys: Vec<_> = grid.iter().map(SpecConfig::rank_key).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted);
        keys.dedup();
        assert_eq!(keys.len(), grid.len(), "no duplicate candidates");
    }

    #[test]
    fn configs_reapply_to_fresh_clones() {
        let handles = fig1a(&Fig1Config::default());
        let grid = enumerate_candidates(&handles.netlist, &ExploreOptions::default());
        for config in &grid {
            let mut clone = handles.netlist.clone();
            let report = config.apply(&mut clone).expect("fig1a candidates apply cleanly");
            assert_eq!(report.mux, config.mux);
            clone.validate().expect("transformed netlist validates");
        }
    }
}
