//! Auto-speculation design-space exploration.
//!
//! The paper presents speculation as a correct-by-construction transform
//! whose *profitability* is a search problem: which multiplexor to
//! speculate, how deep the in-order commit stage should run ahead, where the
//! recovery buffer goes, and which scheduler drives the shared module. This
//! crate closes that loop. [`explore`] enumerates the candidate grid
//! ([`grid::enumerate_candidates`]), applies each point with the existing
//! atomic [`elastic_core::transform::speculate`] pass on a cloned netlist,
//! scores survivors by simulated steady-state throughput against the
//! [`elastic_analysis::cost::CostModel`] area/latency estimate, and returns
//! a deterministic Pareto front.
//!
//! # The pruning ladder
//!
//! Scoring every grid point at full horizon would dominate the search cost,
//! so candidates descend a three-rung ladder:
//!
//! 1. **static cost bound** — candidates whose area exceeds
//!    [`ExploreOptions::max_area_ratio`] × the baseline area are dropped
//!    before any simulation;
//! 2. **short-horizon sim** — survivors are measured for
//!    [`ExploreOptions::short_cycles`]; a candidate is dropped only when
//!    another candidate that costs no more area *and* no more cycle time
//!    out-scores it by [`ExploreOptions::short_margin`]×;
//! 3. **full-horizon confirm** — the remainder is measured for
//!    [`ExploreOptions::cycles`] and Pareto-partitioned.
//!
//! Nothing is dropped silently: every rung records what it cut and why in
//! [`ExploreReport::pruned`], transform rejections surface in
//! [`ExploreReport::skipped`] with the transform's own reason, and
//! [`ExploreReport::accounted`] ties the books back to the enumerated grid.
//!
//! # Soundness via the battery
//!
//! A front is only trustworthy if every member is *correct*, not just fast:
//! with [`ExploreOptions::verify`] on (the default), every front member must
//! pass [`elastic_verify::check_transform_battery`] against the input
//! design. Members that fail move to [`ExploreReport::skipped`] and the
//! front is re-partitioned, so the returned front is sound by construction.
//!
//! # Determinism
//!
//! Scores are a pure function of `(netlist, seed, cycles)`: environment
//! grids derive from the explorer seed and sink *names*, dominance and
//! pruning quantify over whole candidate sets, and every returned list is
//! canonically sorted. The front is therefore invariant under worker count
//! ([`ExploreOptions::sequential`] forces a single-threaded search that must
//! agree with the parallel one) and candidate enumeration order
//! ([`ExploreOptions::shuffle_seed`] deliberately scrambles it in tests).
//!
//! ```
//! use elastic_core::library::{fig1a, Fig1Config};
//! use elastic_explore::{explore, ExploreOptions};
//!
//! let handles = fig1a(&Fig1Config::default());
//! let options = ExploreOptions {
//!     cycles: 256,
//!     short_cycles: 64,
//!     environments: 2,
//!     verify: false, // examples keep the doc test cheap; the default is on
//!     ..ExploreOptions::default()
//! };
//! let report = explore(&handles.netlist, &options)?;
//! assert!(!report.front.is_empty());
//! assert_eq!(report.accounted(), report.candidates_enumerated);
//! # Ok::<(), elastic_explore::ExploreError>(())
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod pareto;
pub mod score;

use elastic_analysis::cost::CostModel;
use elastic_core::kind::{BufferSpec, SchedulerKind};
use elastic_core::{CoreError, Netlist};
use elastic_sim::sweep::parallel_map;
use elastic_verify::liveness::LivenessOptions;
use elastic_verify::{check_transform_battery, BatteryOptions};

pub use grid::{enumerate_candidates, SiteKind, SpecConfig};
pub use pareto::{dominates, partition_front, ParetoPoint};
pub use score::{environment_grid, measure, CommitSummary, EnvironmentGrid, Measured};

/// Configuration of one [`explore`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOptions {
    /// Commit depths enumerated on feed-forward sites.
    pub depths: Vec<u32>,
    /// Scheduler policies enumerated per site.
    pub schedulers: Vec<SchedulerKind>,
    /// Recovery-buffer placements enumerated per site (`None` = direct
    /// connection).
    pub recovery: Vec<Option<BufferSpec>>,
    /// Starvation override pinned into every candidate.
    pub starvation_limit: Option<u32>,
    /// Full-horizon measurement length (rung 3).
    pub cycles: u64,
    /// Short-horizon measurement length (rung 2).
    pub short_cycles: u64,
    /// Number of sink back-pressure environments each design is scored
    /// under (clamped to at least 1; environment 0 is always the design's
    /// declared environment).
    pub environments: usize,
    /// Seed of the environment grid.
    pub seed: u64,
    /// Rung-1 bound: candidates whose area exceeds this multiple of the
    /// baseline area are pruned statically.
    pub max_area_ratio: f64,
    /// Rung-2 margin: a candidate is pruned only when a no-costlier
    /// candidate out-scores it by this factor at the short horizon (clamped
    /// to at least 1.25).
    pub short_margin: f64,
    /// Run [`elastic_verify::check_transform_battery`] on every front
    /// member, evicting failures from the front.
    pub verify: bool,
    /// Simulation length of the verification battery.
    pub verify_cycles: u64,
    /// Also enumerate feed-forward multiplexors (sites without a select
    /// cycle, speculated with `allow_acyclic`).
    pub include_acyclic: bool,
    /// Force single-threaded scoring. The result must be identical to the
    /// parallel search — the property tests compare the two.
    pub sequential: bool,
    /// Deliberately shuffle the candidate order before scoring (testing
    /// hook; the report must be invariant under it).
    pub shuffle_seed: Option<u64>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            depths: vec![1, 2, 4],
            schedulers: vec![
                SchedulerKind::Static(0),
                SchedulerKind::LastTaken,
                SchedulerKind::TwoBit,
                SchedulerKind::Confidence { max_confidence: 2 },
            ],
            recovery: vec![None],
            starvation_limit: Some(8),
            cycles: 4096,
            short_cycles: 512,
            environments: 4,
            seed: 0,
            max_area_ratio: 4.0,
            short_margin: 2.0,
            verify: true,
            verify_cycles: 192,
            include_acyclic: true,
            sequential: false,
            shuffle_seed: None,
        }
    }
}

/// A candidate the search could not score: the transform refused it, or its
/// simulation / verification failed. Skips are part of the result — a
/// rejected point is information about the design space, not a silent hole
/// in the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedCandidate {
    /// The configuration that was skipped.
    pub config: SpecConfig,
    /// Why (the transform's own precondition message, the simulation error,
    /// or the battery's violations).
    pub reason: String,
}

/// A candidate cut by the pruning ladder, with the rung and the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedCandidate {
    /// The configuration that was pruned.
    pub config: SpecConfig,
    /// Why this rung cut it.
    pub detail: String,
}

/// Everything the pruning ladder dropped, per rung. [`explore`] never caps
/// or truncates silently: these records (and their counts) are the complete
/// list of candidates that were not fully scored.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PruneLadder {
    /// Rung 1: static area bound.
    pub area_bound: Vec<PrunedCandidate>,
    /// Rung 2: out-scored at the short horizon by a no-costlier candidate.
    pub short_horizon: Vec<PrunedCandidate>,
}

impl PruneLadder {
    /// Total candidates pruned across all rungs.
    pub fn total(&self) -> usize {
        self.area_bound.len() + self.short_horizon.len()
    }

    /// `(rung name, count)` pairs, in ladder order.
    pub fn counts(&self) -> [(&'static str, usize); 2] {
        [("area-bound", self.area_bound.len()), ("short-horizon", self.short_horizon.len())]
    }
}

/// Scores of the unmodified input design under the same grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Mean throughput over the environment grid.
    pub throughput: f64,
    /// Total area (gate equivalents).
    pub area: f64,
    /// Cycle time (logic levels).
    pub latency: f64,
}

/// The result of one [`explore`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// The unmodified design's scores, for reference.
    pub baseline: Baseline,
    /// The Pareto front, canonically sorted. With
    /// [`ExploreOptions::verify`] on, every member passed the transform
    /// battery.
    pub front: Vec<ParetoPoint>,
    /// Fully scored points dominated by the front, canonically sorted.
    pub dominated: Vec<ParetoPoint>,
    /// Candidates the search could not score, with reasons.
    pub skipped: Vec<SkippedCandidate>,
    /// Candidates cut by the pruning ladder, per rung.
    pub pruned: PruneLadder,
    /// Size of the enumerated grid. Always equals [`ExploreReport::accounted`].
    pub candidates_enumerated: usize,
    /// Human-readable coverage notes (per-rung counts, clamps applied).
    pub notes: Vec<String>,
}

impl ExploreReport {
    /// Number of candidates the report accounts for: front + dominated +
    /// skipped + pruned. The explorer guarantees this equals
    /// [`ExploreReport::candidates_enumerated`] — the no-silent-truncation
    /// contract.
    pub fn accounted(&self) -> usize {
        self.front.len() + self.dominated.len() + self.skipped.len() + self.pruned.total()
    }

    /// The front member with the highest throughput (ties broken by the
    /// canonical config order).
    pub fn best_throughput(&self) -> Option<&ParetoPoint> {
        self.front.iter().reduce(|best, p| if p.throughput > best.throughput { p } else { best })
    }

    /// The front member with the highest throughput per unit area (ties
    /// broken by the canonical config order).
    pub fn best_per_area(&self) -> Option<&ParetoPoint> {
        self.front.iter().reduce(|best, p| {
            if p.throughput_per_area() > best.throughput_per_area() {
                p
            } else {
                best
            }
        })
    }
}

/// Failure of the search itself (as opposed to one candidate's failure,
/// which is reported in [`ExploreReport::skipped`]).
#[derive(Debug)]
pub enum ExploreError {
    /// The input netlist does not validate.
    InvalidNetlist(CoreError),
    /// The unmodified input design failed to build or simulate, so there is
    /// no baseline to score against.
    Baseline(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::InvalidNetlist(e) => write!(f, "input netlist does not validate: {e}"),
            ExploreError::Baseline(e) => write!(f, "baseline measurement failed: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// One applied candidate: the transformed clone plus its static costs.
struct Applied {
    config: SpecConfig,
    netlist: Netlist,
    area: f64,
    latency: f64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fisher–Yates driven by a SplitMix64 stream: the testing hook behind
/// [`ExploreOptions::shuffle_seed`].
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        state = mix(state);
        let j = (state % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Maps `f` over `items` — in parallel through the sweep pool, or serially
/// when `sequential` is set. Both paths return input-order results, and `f`
/// is pure per item, so the outputs are identical; the flag exists so tests
/// can prove that.
fn map_candidates<T, R, F>(items: &[T], sequential: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if sequential {
        items.iter().map(&f).collect()
    } else {
        parallel_map(items, |_, item| f(item))
    }
}

/// Explores the speculation design space of `netlist` under `options`.
///
/// See the crate documentation for the candidate grid, the pruning ladder,
/// the soundness contract, and the determinism guarantees.
///
/// # Errors
///
/// Fails only when the *input* is unusable — it does not validate, or its
/// baseline cannot be simulated. Per-candidate failures are reported in
/// [`ExploreReport::skipped`] instead.
pub fn explore(netlist: &Netlist, options: &ExploreOptions) -> Result<ExploreReport, ExploreError> {
    netlist.validate().map_err(ExploreError::InvalidNetlist)?;
    let model = CostModel::default();
    let env = environment_grid(netlist, options.environments, options.seed);
    let short_margin = options.short_margin.max(1.25);

    let (base_area, base_latency) = score::static_cost(netlist, &model);
    let base = measure(netlist, &env, options.cycles).map_err(ExploreError::Baseline)?;
    let baseline = Baseline { throughput: base.throughput, area: base_area, latency: base_latency };

    let mut candidates = enumerate_candidates(netlist, options);
    let candidates_enumerated = candidates.len();
    if let Some(seed) = options.shuffle_seed {
        shuffle(&mut candidates, seed);
    }

    let mut notes = Vec::new();
    let mut skipped: Vec<SkippedCandidate> = Vec::new();
    let mut pruned = PruneLadder::default();

    // Apply phase: one atomic `speculate` per candidate on a fresh clone.
    // Transform rejections become skips carrying the transform's own reason.
    let mut applied: Vec<Applied> = Vec::new();
    for config in candidates {
        let mut clone = netlist.clone();
        match config.apply(&mut clone) {
            Ok(_) => {
                let (area, latency) = score::static_cost(&clone, &model);
                applied.push(Applied { config, netlist: clone, area, latency });
            }
            Err(CoreError::Precondition { reason, .. }) => {
                skipped.push(SkippedCandidate { config, reason });
            }
            Err(other) => {
                skipped.push(SkippedCandidate { config, reason: other.to_string() });
            }
        }
    }

    // Rung 1: static area bound. Complete by construction for the *bound*
    // the caller asked for — everything cut here is recorded.
    let area_cap = options.max_area_ratio * base_area;
    let (survivors, cut): (Vec<Applied>, Vec<Applied>) =
        applied.into_iter().partition(|a| a.area <= area_cap);
    for a in cut {
        pruned.area_bound.push(PrunedCandidate {
            config: a.config,
            detail: format!(
                "area {:.1} GE exceeds the bound {:.1} GE ({}x baseline {:.1} GE)",
                a.area, area_cap, options.max_area_ratio, base_area
            ),
        });
    }

    // Rung 2: short-horizon scores. A candidate is cut only when another
    // candidate that costs no more (area and cycle time) out-scores it by
    // the margin — a set-level rule, independent of candidate order.
    let short: Vec<Result<Measured, String>> =
        map_candidates(&survivors, options.sequential, |a: &Applied| {
            measure(&a.netlist, &env, options.short_cycles)
        });
    let mut scored_short: Vec<(Applied, f64)> = Vec::new();
    for (a, result) in survivors.into_iter().zip(short) {
        match result {
            Ok(measured) => scored_short.push((a, measured.throughput)),
            Err(reason) => skipped.push(SkippedCandidate {
                config: a.config,
                reason: format!("simulation (short horizon): {reason}"),
            }),
        }
    }
    let keep: Vec<bool> = scored_short
        .iter()
        .map(|(a, t)| {
            !scored_short.iter().any(|(b, bt)| {
                !std::ptr::eq(a, b)
                    && b.area <= a.area
                    && b.latency <= a.latency
                    && *bt > 0.0
                    && *bt >= short_margin * t
            })
        })
        .collect();
    let mut finalists: Vec<Applied> = Vec::new();
    for ((a, t), keep) in scored_short.into_iter().zip(keep) {
        if keep {
            finalists.push(a);
        } else {
            pruned.short_horizon.push(PrunedCandidate {
                config: a.config,
                detail: format!(
                    "short-horizon throughput {t:.4} tok/cyc out-scored {short_margin}x by a \
                     no-costlier candidate"
                ),
            });
        }
    }

    // Rung 3: full-horizon confirmation of the finalists.
    let full: Vec<Result<Measured, String>> =
        map_candidates(&finalists, options.sequential, |a: &Applied| {
            measure(&a.netlist, &env, options.cycles)
        });
    let mut points: Vec<(ParetoPoint, Netlist)> = Vec::new();
    for (a, result) in finalists.into_iter().zip(full) {
        match result {
            Ok(measured) => points.push((
                ParetoPoint {
                    config: a.config,
                    throughput: measured.throughput,
                    area: a.area,
                    latency: a.latency,
                    commit_stats: measured.commit,
                },
                a.netlist,
            )),
            Err(reason) => skipped.push(SkippedCandidate {
                config: a.config,
                reason: format!("simulation (full horizon): {reason}"),
            }),
        }
    }

    // Partition, then enforce the soundness contract: every front member
    // must pass the transform battery. Evicting a failure can promote a
    // dominated point onto the front, so the loop re-partitions until the
    // whole front is verified.
    let battery_options = BatteryOptions {
        cycles: options.verify_cycles,
        liveness: LivenessOptions { cycles: options.verify_cycles, ..LivenessOptions::default() },
        check_protocol: true,
    };
    let (mut front, mut dominated) = pareto::partition_front_owned(points);
    if options.verify {
        let mut verified: Vec<String> = Vec::new();
        loop {
            let mut evict: Option<(usize, String)> = None;
            for (i, (point, transformed)) in front.iter().enumerate() {
                let label = point.config.label();
                if verified.contains(&label) {
                    continue;
                }
                match check_transform_battery(netlist, transformed, &battery_options) {
                    Ok(verdict) if verdict.passed() => verified.push(label),
                    Ok(verdict) => {
                        evict =
                            Some((i, format!("verify battery: {}", verdict.violations.join("; "))));
                        break;
                    }
                    Err(e) => {
                        evict = Some((i, format!("verify battery: simulation failed: {e}")));
                        break;
                    }
                }
            }
            match evict {
                None => break,
                Some((i, reason)) => {
                    let (point, _) = front.remove(i);
                    skipped.push(SkippedCandidate { config: point.config, reason });
                    let mut pool: Vec<(ParetoPoint, Netlist)> = Vec::new();
                    pool.append(&mut front);
                    pool.append(&mut dominated);
                    let repartitioned = pareto::partition_front_owned(pool);
                    front = repartitioned.0;
                    dominated = repartitioned.1;
                }
            }
        }
    } else {
        notes.push("front members were NOT verified (ExploreOptions::verify off)".to_string());
    }

    let mut front: Vec<ParetoPoint> = front.into_iter().map(|(p, _)| p).collect();
    let mut dominated: Vec<ParetoPoint> = dominated.into_iter().map(|(p, _)| p).collect();
    front.sort_by_key(|p| p.config.rank_key());
    dominated.sort_by_key(|p| p.config.rank_key());
    skipped.sort_by_key(|s| s.config.rank_key());
    pruned.area_bound.sort_by_key(|p| p.config.rank_key());
    pruned.short_horizon.sort_by_key(|p| p.config.rank_key());

    notes.push(format!(
        "{} candidates enumerated: {} on the front, {} dominated, {} skipped, {} pruned \
         ({} at the area bound, {} at the short horizon)",
        candidates_enumerated,
        front.len(),
        dominated.len(),
        skipped.len(),
        pruned.total(),
        pruned.area_bound.len(),
        pruned.short_horizon.len(),
    ));
    if options.environments == 0 {
        notes.push("environments clamped from 0 to 1 (the declared environment)".to_string());
    }

    let report =
        ExploreReport { baseline, front, dominated, skipped, pruned, candidates_enumerated, notes };
    debug_assert_eq!(report.accounted(), report.candidates_enumerated);
    Ok(report)
}
