//! Pareto ranking over the three explorer objectives: throughput (maximise),
//! area (minimise), and cycle time (minimise).
//!
//! The front computation is a plain O(n²) dominance scan — candidate grids
//! are hundreds of points, not millions — with a canonical final sort so the
//! partition is a pure function of the candidate *set*, independent of
//! enumeration order, worker count, or floating-point tie layout.

use crate::grid::SpecConfig;
use crate::score::CommitSummary;

/// One fully scored point of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The configuration that produced this point.
    pub config: SpecConfig,
    /// Mean sink throughput over the environment grid (tokens per cycle).
    pub throughput: f64,
    /// Total area under the cost model (gate equivalents).
    pub area: f64,
    /// Cycle time under the cost model (logic levels).
    pub latency: f64,
    /// Commit-stage activity under the declared environment.
    pub commit_stats: Option<CommitSummary>,
}

impl ParetoPoint {
    /// Throughput per unit area — the scalar figure of merit the benchmark
    /// tables report alongside the front.
    pub fn throughput_per_area(&self) -> f64 {
        if self.area > 0.0 {
            self.throughput / self.area
        } else {
            f64::INFINITY
        }
    }

    /// Effective cycle time (cycle time divided by tokens per cycle) — the
    /// figure of merit the paper optimises. Speculation typically *lowers*
    /// raw token throughput slightly while shortening the cycle time a lot;
    /// this is the number that shows the win.
    pub fn effective_cycle_time(&self) -> f64 {
        if self.throughput > 0.0 {
            self.latency / self.throughput
        } else {
            f64::INFINITY
        }
    }
}

/// `true` when `a` dominates `b`: at least as good on every objective and
/// strictly better on at least one.
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    let as_good = a.throughput >= b.throughput && a.area <= b.area && a.latency <= b.latency;
    let strictly_better = a.throughput > b.throughput || a.area < b.area || a.latency < b.latency;
    as_good && strictly_better
}

/// Splits scored points into `(front, dominated)`.
///
/// A point joins the front iff no other point dominates it; objective-equal
/// points do not dominate each other, so exact ties all stay on the front.
/// Both halves come back sorted by [`SpecConfig::rank_key`], making the
/// partition canonical.
pub fn partition_front(points: Vec<ParetoPoint>) -> (Vec<ParetoPoint>, Vec<ParetoPoint>) {
    let tagged: Vec<(ParetoPoint, ())> = points.into_iter().map(|p| (p, ())).collect();
    let (front, dominated) = partition_front_owned(tagged);
    (front.into_iter().map(|(p, ())| p).collect(), dominated.into_iter().map(|(p, ())| p).collect())
}

/// A `(front, dominated)` partition of payload-carrying points.
pub(crate) type Partition<P> = (Vec<(ParetoPoint, P)>, Vec<(ParetoPoint, P)>);

/// [`partition_front`] over points carrying a payload (the explorer keeps
/// each point's transformed netlist alongside it for the verify pass). Both
/// halves come back sorted by [`SpecConfig::rank_key`].
pub(crate) fn partition_front_owned<P>(points: Vec<(ParetoPoint, P)>) -> Partition<P> {
    let beaten: Vec<bool> = points
        .iter()
        .enumerate()
        .map(|(i, (point, _))| {
            points.iter().enumerate().any(|(j, (other, _))| j != i && dominates(other, point))
        })
        .collect();
    let mut front = Vec::new();
    let mut dominated = Vec::new();
    for (entry, beaten) in points.into_iter().zip(beaten) {
        if beaten {
            dominated.push(entry);
        } else {
            front.push(entry);
        }
    }
    front.sort_by_key(|(p, _)| p.config.rank_key());
    dominated.sort_by_key(|(p, _)| p.config.rank_key());
    (front, dominated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SiteKind;
    use elastic_core::kind::SchedulerKind;
    use elastic_core::NodeId;

    fn point(name: &str, throughput: f64, area: f64, latency: f64) -> ParetoPoint {
        ParetoPoint {
            config: SpecConfig {
                mux: NodeId::new(1),
                mux_name: name.to_string(),
                site: SiteKind::FeedForward,
                scheduler: SchedulerKind::Static(0),
                commit_depth: 1,
                recovery_buffer: None,
                starvation_limit: None,
            },
            throughput,
            area,
            latency,
            commit_stats: None,
        }
    }

    #[test]
    fn dominance_needs_a_strict_edge() {
        let a = point("a", 0.5, 100.0, 10.0);
        let b = point("b", 0.5, 100.0, 10.0);
        assert!(!dominates(&a, &b), "objective-equal points do not dominate");
        let c = point("c", 0.6, 100.0, 10.0);
        assert!(dominates(&c, &a));
        assert!(!dominates(&a, &c));
    }

    #[test]
    fn the_front_is_mutually_non_dominated_and_complete() {
        let points = vec![
            point("a", 0.6, 100.0, 10.0), // front: fastest
            point("b", 0.4, 50.0, 10.0),  // front: smallest
            point("c", 0.4, 100.0, 10.0), // dominated by both a and b
            point("d", 0.5, 80.0, 8.0),   // front: best latency trade
        ];
        let (front, dominated) = partition_front(points);
        assert_eq!(front.len(), 3);
        assert_eq!(dominated.len(), 1);
        assert_eq!(dominated[0].config.mux_name, "c");
        for p in &front {
            assert!(!front.iter().any(|q| dominates(q, p)));
            assert!(!dominated.iter().any(|q| dominates(q, p)));
        }
    }

    #[test]
    fn the_partition_is_order_invariant() {
        let mut points = vec![
            point("a", 0.6, 100.0, 10.0),
            point("b", 0.4, 50.0, 10.0),
            point("c", 0.4, 100.0, 10.0),
        ];
        let forward = partition_front(points.clone());
        points.reverse();
        let backward = partition_front(points);
        assert_eq!(forward, backward);
    }
}
