//! Scoring: static cost queries plus lane-blocked throughput measurement.
//!
//! The dynamic score of a candidate is its steady-state token throughput,
//! averaged over a deterministic grid of sink back-pressure environments.
//! Environment 0 is always the design's own declared environment; the rest
//! are derived from the explorer seed and the sink's *name* (never its node
//! id), so the same grid applies to the baseline and to every transformed
//! clone, and a score is a pure function of `(netlist, seed, cycles)` —
//! bit-for-bit reproducible regardless of worker count or candidate order.
//!
//! Measurement goes through [`elastic_sim::sweep::lane_map`]: environments
//! are packed 64-per-block into one [`LaneSimulation`] per worker (built
//! once, re-targeted per block through
//! [`LaneSimulation::reset_with_lane_sink_patterns`]), so scoring `E`
//! environments costs one word-parallel simulation, not `E` scalar ones.

use elastic_analysis::cost::CostModel;
use elastic_analysis::timing;
use elastic_core::kind::BackpressurePattern;
use elastic_core::{Netlist, NodeId, NodeKind};
use elastic_sim::sweep::lane_map;
use elastic_sim::{LaneConfig, LaneSimulation, SimulationReport};

/// The deterministic environment grid a design is scored under.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentGrid {
    /// Sink instance names, sorted; resolved against each netlist by name so
    /// the grid survives the clone-and-transform cycle.
    pub sinks: Vec<String>,
    /// `variations[e][s]` is the back-pressure pattern of sink `s` in
    /// environment `e`. Environment 0 keeps every sink's declared pattern.
    pub variations: Vec<Vec<BackpressurePattern>>,
}

/// SplitMix64: the deterministic seed expander used throughout the
/// workspace's sweeps.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a name, for id-independent per-sink seeds.
fn fnv(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds the scoring grid of `netlist`: `environments` sink back-pressure
/// variations (clamped to at least 1), the first being the declared
/// environment.
pub fn environment_grid(netlist: &Netlist, environments: usize, seed: u64) -> EnvironmentGrid {
    let mut sinks: Vec<(String, BackpressurePattern)> = netlist
        .live_nodes()
        .filter_map(|node| match &node.kind {
            NodeKind::Sink(spec) => Some((node.name.clone(), spec.backpressure.clone())),
            _ => None,
        })
        .collect();
    sinks.sort_by(|a, b| a.0.cmp(&b.0));

    let environments = environments.max(1);
    let mut variations = Vec::with_capacity(environments);
    variations.push(sinks.iter().map(|(_, declared)| declared.clone()).collect());
    for e in 1..environments {
        let row = sinks
            .iter()
            .map(|(name, _)| {
                let h = mix(seed ^ mix(fnv(name)) ^ e as u64);
                if e % 2 == 1 {
                    BackpressurePattern::Every(2 + (h % 4) as u32)
                } else {
                    let probability = 0.15 + ((h >> 8) & 0xFF) as f64 / 255.0 * 0.45;
                    BackpressurePattern::Random { probability, seed: h }
                }
            })
            .collect();
        variations.push(row);
    }
    EnvironmentGrid { sinks: sinks.into_iter().map(|(name, _)| name).collect(), variations }
}

/// Static (simulation-free) cost of a design: total area and cycle time.
pub fn static_cost(netlist: &Netlist, model: &CostModel) -> (f64, f64) {
    let area = model.netlist_area(netlist).total();
    let latency = timing::analyze(netlist, model).cycle_time;
    (area, latency)
}

/// Aggregate commit-stage activity of one measured design (summed over
/// stages; peak occupancy averaged), recorded from the design's own
/// environment (grid lane 0).
#[derive(Debug, Clone, PartialEq)]
pub struct CommitSummary {
    /// Tokens committed in operand order across all stages.
    pub commits: u64,
    /// Wrong-path results squashed in place across all stages.
    pub squashes: u64,
    /// Mean of the per-stage mean peak lane occupancies, when any stage
    /// reported one.
    pub mean_peak_occupancy: Option<f64>,
}

fn summarize_commits(report: &SimulationReport) -> Option<CommitSummary> {
    if report.commit_stats.is_empty() {
        return None;
    }
    let commits = report.commit_stats.values().map(|s| s.total_commits()).sum();
    let squashes = report.commit_stats.values().map(|s| s.total_squashes()).sum();
    let peaks: Vec<f64> =
        report.commit_stats.values().filter_map(|s| s.mean_peak_occupancy()).collect();
    let mean_peak_occupancy =
        if peaks.is_empty() { None } else { Some(peaks.iter().sum::<f64>() / peaks.len() as f64) };
    Some(CommitSummary { commits, squashes, mean_peak_occupancy })
}

/// Result of one throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// Mean sink throughput (tokens per cycle, summed over sinks) across the
    /// environment grid.
    pub throughput: f64,
    /// Per-environment throughput, in grid order.
    pub per_env: Vec<f64>,
    /// Commit-stage activity under the declared environment (`None` when the
    /// design has no commit stage).
    pub commit: Option<CommitSummary>,
}

/// Measures `netlist` for `cycles` under every environment of `grid`.
///
/// # Errors
///
/// Returns the (stringified) simulation failure of the first environment
/// block that failed to build or run — callers surface it as a skipped
/// candidate, never a panic.
pub fn measure(netlist: &Netlist, grid: &EnvironmentGrid, cycles: u64) -> Result<Measured, String> {
    let sink_ids: Vec<NodeId> =
        grid.sinks.iter().filter_map(|name| netlist.find_node(name).map(|node| node.id)).collect();
    if sink_ids.len() != grid.sinks.len() {
        return Err("a grid sink is missing from the netlist".to_string());
    }
    let env_indices: Vec<usize> = (0..grid.variations.len()).collect();
    let config = LaneConfig { record_trace: false, ..LaneConfig::default() };

    type EnvResult = Result<(f64, Option<CommitSummary>), String>;
    let per_env: Vec<EnvResult> = lane_map(
        &env_indices,
        || LaneSimulation::new(netlist, &config).map_err(|e| e.to_string()),
        |scratch, start, block| {
            let sim = match scratch {
                Ok(sim) => sim,
                Err(e) => return block.iter().map(|_| Err(e.clone())).collect(),
            };
            let overrides: Vec<(NodeId, Vec<BackpressurePattern>)> = sink_ids
                .iter()
                .enumerate()
                .map(|(s, &id)| {
                    (id, block.iter().map(|&e| grid.variations[e][s].clone()).collect())
                })
                .collect();
            sim.reset_with_lane_sink_patterns(&overrides);
            if let Err(e) = sim.run(cycles) {
                return block.iter().map(|_| Err(e.to_string())).collect();
            }
            block
                .iter()
                .enumerate()
                .map(|(lane, _)| {
                    let report = sim.report(lane);
                    let transfers: u64 = sink_ids.iter().map(|&id| report.sink_transfers(id)).sum();
                    let commit = if start + lane == 0 { summarize_commits(&report) } else { None };
                    Ok((transfers as f64 / cycles as f64, commit))
                })
                .collect()
        },
    );

    let mut throughputs = Vec::with_capacity(per_env.len());
    let mut commit = None;
    for result in per_env {
        let (throughput, env_commit) = result?;
        throughputs.push(throughput);
        if commit.is_none() {
            commit = env_commit;
        }
    }
    let mean = throughputs.iter().sum::<f64>() / throughputs.len() as f64;
    Ok(Measured { throughput: mean, per_env: throughputs, commit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::library::{fig1a, Fig1Config};

    #[test]
    fn the_grid_keeps_the_declared_environment_first_and_is_seed_deterministic() {
        let handles = fig1a(&Fig1Config::default());
        let a = environment_grid(&handles.netlist, 4, 7);
        let b = environment_grid(&handles.netlist, 4, 7);
        assert_eq!(a, b, "same seed, same grid");
        assert_eq!(a.variations.len(), 4);
        let declared: Vec<BackpressurePattern> = handles
            .netlist
            .live_nodes()
            .filter_map(|n| match &n.kind {
                NodeKind::Sink(spec) => Some(spec.backpressure.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(a.variations[0], declared);
        let c = environment_grid(&handles.netlist, 4, 8);
        assert_ne!(a.variations[1..], c.variations[1..], "different seed, different grid");
    }

    #[test]
    fn measurement_is_bit_for_bit_reproducible() {
        let handles = fig1a(&Fig1Config::default());
        let grid = environment_grid(&handles.netlist, 4, 0);
        let a = measure(&handles.netlist, &grid, 256).unwrap();
        let b = measure(&handles.netlist, &grid, 256).unwrap();
        assert_eq!(a, b);
        assert!(a.throughput > 0.0);
        assert_eq!(a.per_env.len(), 4);
    }

    #[test]
    fn more_than_one_lane_block_still_scores_every_environment() {
        let handles = fig1a(&Fig1Config::default());
        let grid = environment_grid(&handles.netlist, 70, 3);
        let measured = measure(&handles.netlist, &grid, 64).unwrap();
        assert_eq!(measured.per_env.len(), 70);
        assert!(measured.per_env.iter().all(|t| t.is_finite()));
    }
}
