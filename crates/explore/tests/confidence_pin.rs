//! Regression pin for confidence-adaptive commit scheduling (the ROADMAP
//! carry-over from the commit-depth benchmark).
//!
//! On the PR-5 biased-consumer workload, unthrottled run-ahead *loses*
//! throughput at commit depth 4 versus depth 2 (deep lanes fill with
//! wrong-path results that each cost a squash round-trip). The
//! confidence-throttled scheduler (`SchedulerKind::Confidence`) recovers
//! that loss by hedging the unlikely channel on an evidence-scaled cadence —
//! and the explorer must surface exactly this picture: depth 4 with
//! throttling at least matches depth 2, while the losing unthrottled
//! depth-4 config stays visible in the dominated set.

use elastic_core::kind::{
    BackpressurePattern, DataStream, MuxSpec, SchedulerKind, SinkSpec, SourcePattern, SourceSpec,
};
use elastic_core::{Netlist, Port};
use elastic_explore::{explore, ExploreOptions, ParetoPoint, SiteKind};

/// The PR-5 biased workload: the consumer commits channel 0 seven cycles
/// out of eight, and the sink accepts in bursts (2 of every 5 cycles).
fn biased_workload() -> Netlist {
    let mut n = Netlist::new("pin_biased");
    let sel = n.add_source(
        "sel",
        SourceSpec {
            pattern: SourcePattern::Always,
            data: DataStream::List(vec![0, 0, 0, 0, 0, 0, 1, 0]),
            consume_on_kill: true,
        },
    );
    let a = n.add_source("a", SourceSpec { data: DataStream::Counter, ..SourceSpec::always() });
    let b = n.add_source("b", SourceSpec { data: DataStream::Const(0x5A), ..SourceSpec::always() });
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let f = n.add_op("f", elastic_core::op::opaque("F", 6, 120));
    let sink = n.add_sink(
        "sink",
        SinkSpec { backpressure: BackpressurePattern::List(vec![true, true, false, false, false]) },
    );
    n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
    n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
    n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
    n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
    n.validate().unwrap();
    n
}

fn scored(report: &elastic_explore::ExploreReport) -> Vec<&ParetoPoint> {
    report.front.iter().chain(report.dominated.iter()).collect()
}

#[test]
fn throttled_depth_4_recovers_the_depth_2_throughput_on_the_biased_workload() {
    let netlist = biased_workload();
    let options = ExploreOptions {
        cycles: 8192,
        short_cycles: 512,
        environments: 1, // exactly the declared PR-5 environment
        verify: true,
        verify_cycles: 192,
        // The depth-4 commit stage costs ~4.5x the (tiny) baseline's area;
        // the default 4x scope bound would cut it before scoring, and this
        // pin is precisely about scoring it.
        max_area_ratio: 6.0,
        ..ExploreOptions::default()
    };
    let report = explore(&netlist, &options).unwrap();
    assert_eq!(report.accounted(), report.candidates_enumerated);
    assert!(!report.front.is_empty());
    assert!(
        report.front.iter().all(|p| p.config.site == SiteKind::FeedForward),
        "the only site is the feed-forward mux"
    );

    let all = scored(&report);
    let best_at = |depth: u32| -> &ParetoPoint {
        all.iter()
            .filter(|p| p.config.commit_depth == depth)
            .reduce(|best, p| if p.throughput > best.throughput { p } else { best })
            .unwrap_or_else(|| panic!("no scored candidate at depth {depth}"))
    };

    // The carry-over: with confidence throttling in the grid, depth 4 no
    // longer loses to depth 2.
    let best_d2 = best_at(2);
    let best_d4 = best_at(4);
    assert!(
        best_d4.throughput >= best_d2.throughput - 2e-3,
        "depth 4 must recover the depth-2 throughput: d4 {} = {:.4} vs d2 {} = {:.4}",
        best_d4.config.label(),
        best_d4.throughput,
        best_d2.config.label(),
        best_d2.throughput
    );
    assert!(
        matches!(best_d4.config.scheduler, SchedulerKind::Confidence { .. }),
        "the recovery comes from the throttled scheduler, not luck: {}",
        best_d4.config.label()
    );
    // The hand-picked PR-5 best (unthrottled depth 2, last-taken) reached
    // 0.48 tok/cyc; the throttled policy beats it outright.
    assert!(
        best_d4.throughput > 0.50,
        "throttled depth 4 beats the 0.48 hand-pick ({:.4})",
        best_d4.throughput
    );

    // The losing unthrottled depth-4 config must stay *visible* in the
    // dominated set — evidence, not a silent hole.
    let unthrottled_d4 = report
        .dominated
        .iter()
        .find(|p| p.config.commit_depth == 4 && p.config.scheduler == SchedulerKind::LastTaken)
        .expect("the unthrottled depth-4 config is scored and dominated");
    assert!(
        unthrottled_d4.throughput < best_d4.throughput - 0.02,
        "unthrottled depth 4 visibly loses: {:.4} vs throttled {:.4}",
        unthrottled_d4.throughput,
        best_d4.throughput
    );

    // Commit-stage evidence rides along on scored points.
    assert!(best_d4.commit_stats.is_some(), "feed-forward speculation reports commit-stage stats");
}
