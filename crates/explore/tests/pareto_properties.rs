//! Property tests for the explorer's Pareto invariants.
//!
//! Over seed-varied feed-forward workloads (and fig1a's select loop), the
//! front must be mutually non-dominated, *complete* — no candidate the
//! search discarded, including pruned ones scored here at full horizon,
//! dominates a front member — and deterministic across worker counts and
//! shuffled candidate enumeration order. The pruning ladder must account for
//! every cut, never truncating silently.

use elastic_core::kind::{
    BackpressurePattern, DataStream, MuxSpec, SinkSpec, SourcePattern, SourceSpec,
};
use elastic_core::{Netlist, Port};
use elastic_explore::{dominates, environment_grid, explore, measure, ExploreOptions, ParetoPoint};
use proptest::prelude::*;

/// A feed-forward mux pipeline whose select bias and sink back-pressure are
/// derived from a test seed — the same shape as the PR-5 commit-depth
/// workload, with the workload knobs made generative.
fn biased_feedforward(seed: u64) -> Netlist {
    let select: Vec<u64> = (0..8).map(|i| (seed >> i) & 1).collect();
    let mut stalls: Vec<bool> = (0..5).map(|i| (seed >> (8 + i)) & 1 == 1).collect();
    stalls[0] = false; // the sink must accept sometimes, or every score is 0

    let mut n = Netlist::new("explore_prop");
    let sel = n.add_source(
        "sel",
        SourceSpec {
            pattern: SourcePattern::Always,
            data: DataStream::List(select),
            consume_on_kill: true,
        },
    );
    let a = n.add_source("a", SourceSpec { data: DataStream::Counter, ..SourceSpec::always() });
    let b = n.add_source("b", SourceSpec { data: DataStream::Const(0x77), ..SourceSpec::always() });
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let f = n.add_op("f", elastic_core::op::opaque("F", 6, 120));
    let sink = n.add_sink("sink", SinkSpec { backpressure: BackpressurePattern::List(stalls) });
    n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
    n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
    n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
    n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
    n.validate().unwrap();
    n
}

fn small_options(seed: u64) -> ExploreOptions {
    ExploreOptions {
        cycles: 256,
        short_cycles: 64,
        environments: 2,
        seed,
        verify: false, // the soundness properties have their own (slower) tests
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn the_front_is_mutually_non_dominated_and_complete(seed in any::<u64>()) {
        let netlist = biased_feedforward(seed);
        let options = small_options(seed);
        let report = explore(&netlist, &options).unwrap();
        prop_assert_eq!(report.accounted(), report.candidates_enumerated);
        prop_assert!(!report.front.is_empty());

        // Mutually non-dominated.
        for p in &report.front {
            for q in &report.front {
                prop_assert!(!dominates(p, q), "front member {} dominates {}",
                    p.config.label(), q.config.label());
            }
        }
        // No fully scored discard dominates a front member.
        for d in &report.dominated {
            for p in &report.front {
                prop_assert!(!dominates(d, p), "dominated {} dominates front {}",
                    d.config.label(), p.config.label());
            }
        }
        // Completeness of the ladder: score every pruned candidate at the
        // full horizon and check none of them dominates a front member.
        let env = environment_grid(&netlist, options.environments, options.seed);
        let model = elastic_analysis::cost::CostModel::default();
        let pruned_configs = report
            .pruned
            .area_bound
            .iter()
            .chain(report.pruned.short_horizon.iter());
        for cut in pruned_configs {
            let mut clone = netlist.clone();
            cut.config.apply(&mut clone).expect("pruned candidates applied once already");
            let measured = measure(&clone, &env, options.cycles).unwrap();
            let point = ParetoPoint {
                config: cut.config.clone(),
                throughput: measured.throughput,
                area: model.netlist_area(&clone).total(),
                latency: elastic_analysis::timing::analyze(&clone, &model).cycle_time,
                commit_stats: measured.commit,
            };
            for p in &report.front {
                prop_assert!(!dominates(&point, p),
                    "pruned candidate {} ({}) dominates front member {}",
                    point.config.label(), cut.detail, p.config.label());
            }
        }
    }

    #[test]
    fn the_report_is_invariant_under_workers_and_enumeration_order(seed in any::<u64>()) {
        let netlist = biased_feedforward(seed);
        let parallel = explore(&netlist, &small_options(seed)).unwrap();
        let sequential = explore(
            &netlist,
            &ExploreOptions { sequential: true, ..small_options(seed) },
        )
        .unwrap();
        prop_assert_eq!(&parallel, &sequential, "worker count changed the report");
        let shuffled = explore(
            &netlist,
            &ExploreOptions { shuffle_seed: Some(seed ^ 0xA5A5), ..small_options(seed) },
        )
        .unwrap();
        prop_assert_eq!(&parallel, &shuffled, "enumeration order changed the report");
    }

    #[test]
    fn scores_are_bit_for_bit_reproducible_from_the_seed(seed in any::<u64>()) {
        let netlist = biased_feedforward(seed);
        let a = explore(&netlist, &small_options(seed)).unwrap();
        let b = explore(&netlist, &small_options(seed)).unwrap();
        // PartialEq on the report compares every f64 exactly.
        prop_assert_eq!(a, b);
    }
}

#[test]
fn fig1a_explores_to_a_sound_verified_front() {
    // The paper's fig1 evaluation uses a strongly biased (predictable)
    // select stream; an unpredictable one genuinely makes speculation a bad
    // deal, which is the explorer's call to make, not this test's.
    let handles = elastic_sim::scenarios::build_fig1(&elastic_sim::scenarios::Fig1Scenario {
        variant: elastic_sim::scenarios::Fig1Variant::NonSpeculative,
        taken_rate: 0.05,
        scheduler: elastic_core::kind::SchedulerKind::LastTaken,
        cycles: 512,
        seed: 42,
    });
    let options = ExploreOptions {
        cycles: 512,
        short_cycles: 128,
        environments: 1, // the declared environment, as in the experiments
        verify: true,
        verify_cycles: 128,
        ..ExploreOptions::default()
    };
    let report = explore(&handles.netlist, &options).unwrap();
    assert_eq!(report.accounted(), report.candidates_enumerated);
    assert!(!report.front.is_empty(), "fig1a has a select loop to speculate");
    assert!(
        report.front.iter().all(|p| p.config.mux == handles.mux),
        "the only site is the fig1a mux"
    );
    // The speculated design must beat the non-speculative baseline on the
    // paper's figure of merit: effective cycle time. (Raw token throughput
    // *drops* on fig1a — the win is the much shorter critical path once the
    // slow select computation leaves the cycle.)
    let baseline_ect = report.baseline.latency / report.baseline.throughput;
    let best_ect =
        report.front.iter().map(|p| p.effective_cycle_time()).fold(f64::INFINITY, f64::min);
    assert!(
        best_ect < baseline_ect,
        "explorer best effective cycle time {best_ect:.2} vs baseline {baseline_ect:.2}"
    );
}

#[test]
fn a_tight_area_bound_prunes_non_vacuously_and_is_fully_accounted() {
    let netlist = biased_feedforward(0x00F5);
    let options = ExploreOptions {
        max_area_ratio: 1.0, // speculation always adds hardware
        ..small_options(3)
    };
    let report = explore(&netlist, &options).unwrap();
    assert!(!report.pruned.area_bound.is_empty(), "the rung-1 cut must be recorded, not silent");
    assert_eq!(report.accounted(), report.candidates_enumerated);
    let counts = report.pruned.counts();
    assert_eq!(counts[0].0, "area-bound");
    assert_eq!(counts[0].1, report.pruned.area_bound.len());
    assert!(
        report.notes.iter().any(|n| n.contains("at the area bound")),
        "prune counts surface in the notes"
    );
    for cut in &report.pruned.area_bound {
        assert!(cut.detail.contains("exceeds the bound"), "detail: {}", cut.detail);
    }
}

#[test]
fn short_horizon_pruning_cuts_hopeless_schedulers_and_records_them() {
    // Select is constantly 0: a Static(1) scheduler mispredicts every token,
    // while Static(0) (same area, same cycle time) never does — a >2x gap,
    // so rung 2 must cut the hopeless config and record it.
    let select = DataStream::List(vec![0]);
    let mut n = Netlist::new("const_select");
    let sel = n.add_source(
        "sel",
        SourceSpec { pattern: SourcePattern::Always, data: select, consume_on_kill: true },
    );
    let a = n.add_source("a", SourceSpec { data: DataStream::Counter, ..SourceSpec::always() });
    let b = n.add_source("b", SourceSpec { data: DataStream::Const(1), ..SourceSpec::always() });
    let mux = n.add_mux("mux", MuxSpec::lazy(2));
    let f = n.add_op("f", elastic_core::op::opaque("F", 6, 120));
    let sink = n.add_sink("sink", SinkSpec::always_ready());
    n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
    n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
    n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
    n.connect(Port::output(mux, 0), Port::input(f, 0), 8).unwrap();
    n.connect(Port::output(f, 0), Port::input(sink, 0), 8).unwrap();
    n.validate().unwrap();

    let options = ExploreOptions {
        schedulers: vec![
            elastic_core::kind::SchedulerKind::Static(0),
            elastic_core::kind::SchedulerKind::Static(1),
        ],
        environments: 1, // the declared (never-stalling) environment only
        ..small_options(0)
    };
    let report = explore(&n, &options).unwrap();
    assert!(
        !report.pruned.short_horizon.is_empty(),
        "Static(1) on a constant-0 select must fall to the short-horizon rung; notes: {:?}",
        report.notes
    );
    assert_eq!(report.accounted(), report.candidates_enumerated);
    for cut in &report.pruned.short_horizon {
        assert!(cut.detail.contains("short-horizon throughput"), "detail: {}", cut.detail);
    }
}
