//! Mutation-style fault-injection campaign: every injected fault must be
//! *detected* by a named runtime monitor within a bounded window or *provably
//! masked*.
//!
//! The campaign closes the loop between the fault injector of `elastic-sim`
//! ([`elastic_sim::FaultPlan`]) and the runtime monitors of `elastic-verify`
//! ([`elastic_verify::standard_monitors`], [`elastic_verify::ScoreboardMonitor`]):
//!
//! 1. a **clean reference run** records every sink's output stream;
//! 2. a **negative control** re-runs the clean design under the full monitor
//!    set — any trip means the monitors are unsound for this design and the
//!    campaign aborts;
//! 3. each **injection** seeds one parameterized fault (stuck-at handshake
//!    signals, token drop/duplication, data bit-flips, transient stall
//!    storms) into a monitored replay. The run must end in exactly one of:
//!    * **detected** — a monitor trips with a `(channel, cycle, invariant)`
//!      locus, no earlier than the fault window opens and (for the per-cycle
//!      monitors) no later than `detection_window` cycles after it closes;
//!    * **masked** — every monitor stays silent *and* the scoreboard proves
//!      every sink reproduced the full clean reference stream bit-identically
//!      (the run gets the fault duration plus `drain_slack` extra cycles, so
//!      a transient perturbation may reshuffle timing but not values);
//!    * **trapped** — an internal simulator assertion panicked, i.e. the
//!      fault was contained fail-stop before any monitor could name it.
//!      Counted on the detection side of the ledger (nothing corrupted
//!      silently), reported separately.
//!
//!    Anything else — a hung case past its wall-clock deadline, a monitor
//!    firing outside its bounded window, a non-monitor simulation error — is
//!    a [`CampaignFailure`] carrying the seeded [`FaultSpec`] reproducer.
//! 4. designs with shared modules additionally face a **byzantine scheduler
//!    sub-campaign**: feedback-ignoring random grants must leave the output
//!    streams bit-identical (the controller enforces the leads-to discipline,
//!    Section 4.1.1) or trip a monitor.
//!
//! [`run_stall_storm_recovery`] is the strict transient variant used for the
//! paper designs: environment stall storms only, and every one must be
//! **masked** — after the storm drains, the design delivers the exact
//! reference streams bit-identically. Sinks whose declared contract forbids
//! stalling are hardened first via the speculative isolation-buffer
//! placement (see that function's docs), so the storm never silently voids
//! an assumption the design's own analysis depends on.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use elastic_core::kind::BackpressurePattern;
use elastic_core::transform::place_isolation_buffers;
use elastic_core::{ChannelId, Netlist, NodeId, NodeKind, Port, Scheduler};
use elastic_sim::{
    ByzantineScheduler, CycleMonitor, FaultKind, FaultPlan, FaultSpec, SimConfig, SimError,
    Simulation, SimulationReport,
};
use elastic_verify::{standard_monitors, MonitorOptions, ScoreboardMonitor};

use crate::rng::GenRng;

/// Parameters of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignOptions {
    /// Number of seeded fault injections.
    pub injections: usize,
    /// Cycles of the clean reference run; faulted replays get the capped
    /// fault duration plus [`CampaignOptions::drain_slack`] on top.
    pub cycles: u64,
    /// Extra cycles appended to every monitored run so transient faults can
    /// drain before the scoreboard's completeness check.
    pub drain_slack: u64,
    /// Maximum number of cycles between the end of the fault window and a
    /// per-cycle monitor trip for the detection to count (the scoreboard's
    /// end-of-run completeness check is exempt — a dropped token is only
    /// provable at the horizon).
    pub detection_window: u64,
    /// Wall-clock watchdog per monitored run; a case exceeding it fails the
    /// campaign rather than hanging it.
    pub case_deadline: Duration,
    /// Byzantine-scheduler runs per design with shared modules (0 disables).
    pub byzantine_runs: usize,
    /// Options of the standard monitor set.
    pub monitors: MonitorOptions,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            injections: 64,
            cycles: 192,
            drain_slack: 96,
            detection_window: 256,
            case_deadline: Duration::from_secs(10),
            byzantine_runs: 4,
            monitors: MonitorOptions::default(),
        }
    }
}

/// How one monitored, faulted run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// A monitor tripped with a locus inside the bounded detection window.
    Detected {
        /// Name of the monitor that fired.
        monitor: &'static str,
        /// The violated invariant.
        invariant: &'static str,
        /// Cycle of the violation locus.
        cycle: u64,
    },
    /// An internal simulator assertion panicked: the fault was contained
    /// fail-stop before any monitor could observe a violation.
    Trapped {
        /// The panic payload.
        message: String,
    },
    /// Every monitor stayed silent and the scoreboard proved every sink
    /// reproduced the full reference stream bit-identically.
    Masked,
}

impl FaultOutcome {
    /// `true` when the fault did not corrupt outputs silently because the
    /// system stopped it: a monitor trip or a fail-stop assertion.
    pub fn is_detected(&self) -> bool {
        !matches!(self, FaultOutcome::Masked)
    }

    /// `true` when the fault was proven observationally harmless.
    pub fn is_masked(&self) -> bool {
        matches!(self, FaultOutcome::Masked)
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOutcome::Detected { monitor, invariant, cycle } => {
                write!(f, "detected by [{monitor}] {invariant} at cycle {cycle}")
            }
            FaultOutcome::Trapped { message } => write!(f, "trapped fail-stop: {message}"),
            FaultOutcome::Masked => write!(f, "masked (reference streams bit-identical)"),
        }
    }
}

/// One injection of the campaign: the seeded fault and how the run ended.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Injection index (position in the campaign's rng stream).
    pub index: usize,
    /// The injected fault.
    pub fault: FaultSpec,
    /// How the monitored run ended.
    pub outcome: FaultOutcome,
    /// `true` when the injection never actually changed a signal (the forced
    /// level matched the wire); such runs are masked by definition.
    pub vacuous: bool,
}

/// A campaign-level failure: a fault that was neither detected nor provably
/// masked, a hung case, or a broken setup. Carries the seeded [`FaultSpec`]
/// so the offending run replays with [`elastic_sim::Simulation::arm_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignFailure {
    /// Index of the offending injection, when one was in flight.
    pub injection: Option<usize>,
    /// The injected fault, when one was in flight.
    pub fault: Option<FaultSpec>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CampaignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault campaign failed")?;
        if let Some(index) = self.injection {
            write!(f, " at injection #{index}")?;
        }
        if let Some(fault) = &self.fault {
            write!(f, " ({fault})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for CampaignFailure {}

/// The ledger of a completed campaign: every injection ended detected,
/// trapped or provably masked.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// One record per injection, in rng order.
    pub records: Vec<InjectionRecord>,
    /// Byzantine-scheduler runs executed (0 when the design has no shared
    /// module or the sub-campaign was disabled).
    pub byzantine_runs: usize,
    /// Byzantine runs that tripped a monitor (the rest were bit-identical).
    pub byzantine_detections: usize,
}

impl CampaignReport {
    /// Injections detected by a monitor trip.
    pub fn detected(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, FaultOutcome::Detected { .. })).count()
    }

    /// Injections contained fail-stop by an internal assertion.
    pub fn trapped(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, FaultOutcome::Trapped { .. })).count()
    }

    /// Injections proven observationally harmless.
    pub fn masked(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_masked()).count()
    }

    /// Masked injections that never perturbed a signal at all.
    pub fn vacuous(&self) -> usize {
        self.records.iter().filter(|r| r.vacuous).count()
    }

    /// Per fault class: `(detected-or-trapped, masked)` counts.
    pub fn by_kind(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut ledger: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for record in &self.records {
            let slot = ledger.entry(record.fault.kind.name()).or_default();
            if record.outcome.is_detected() {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
        ledger
    }

    /// One-line human summary of the ledger.
    pub fn summary(&self) -> String {
        let per_kind = self
            .by_kind()
            .into_iter()
            .map(|(kind, (detected, masked))| format!("{kind} {detected}d/{masked}m"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut line = format!(
            "{} injections: {} detected, {} trapped, {} masked ({} vacuous) [{per_kind}]",
            self.records.len(),
            self.detected(),
            self.trapped(),
            self.masked(),
            self.vacuous(),
        );
        if self.byzantine_runs > 0 {
            line.push_str(&format!(
                "; byzantine scheduler: {} run(s), {} detection(s)",
                self.byzantine_runs, self.byzantine_detections
            ));
        }
        line
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// The standard monitor set plus a reference scoreboard requiring complete,
/// bit-identical sink streams.
fn armed_monitors(
    netlist: &Netlist,
    reference: &SimulationReport,
    monitors: &MonitorOptions,
) -> Vec<Box<dyn CycleMonitor>> {
    let mut set = standard_monitors(netlist, monitors);
    set.push(Box::new(ScoreboardMonitor::from_reference(netlist, reference, true)));
    set
}

/// Samples one fault: a channel, a class, a window.
fn sample_fault(
    rng: &mut GenRng,
    channels: &[(ChannelId, u8)],
    options: &CampaignOptions,
) -> FaultSpec {
    let &(channel, width) = rng.pick(channels);
    let (kind, duration) = match rng.below(6) {
        0 => (FaultKind::StuckValid { level: rng.chance(0.5) }, u64::MAX),
        1 => (FaultKind::StuckStop { level: rng.chance(0.5) }, u64::MAX),
        2 => (FaultKind::DropToken, rng.range(1, 2)),
        3 => (FaultKind::DuplicateToken, rng.range(1, 2)),
        4 => {
            let bit = rng.below(u64::from(width.clamp(1, 64)));
            (FaultKind::BitFlip { mask: 1u64 << bit }, rng.range(1, 4))
        }
        _ => (FaultKind::StallStorm, rng.range(8, 32)),
    };
    let from_cycle = rng.range(4, options.cycles / 2);
    FaultSpec { channel, kind, from_cycle, duration }
}

/// Runs one armed, monitored replay and classifies the outcome.
fn run_injection(
    sim: &mut Simulation,
    netlist: &Netlist,
    reference: &SimulationReport,
    index: usize,
    fault: FaultSpec,
    options: &CampaignOptions,
) -> Result<InjectionRecord, CampaignFailure> {
    let fail =
        |message: String| CampaignFailure { injection: Some(index), fault: Some(fault), message };

    sim.reset();
    sim.arm_faults(&FaultPlan::single(fault)).map_err(|error| fail(error.to_string()))?;
    let capped_duration = fault.duration.min(options.cycles);
    let total = options.cycles + capped_duration + options.drain_slack;
    let deadline = Instant::now() + options.case_deadline;
    let mut monitors = armed_monitors(netlist, reference, &options.monitors);
    let run =
        catch_unwind(AssertUnwindSafe(|| sim.run_monitored(total, Some(deadline), &mut monitors)));
    sim.disarm_faults();

    let (outcome, vacuous) = match run {
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            (FaultOutcome::Trapped { message }, false)
        }
        Ok(Err(SimError::MonitorTripped(violation))) => {
            // The locus must fall inside the bounded detection window:
            // never before the fault window opens (Retry+ reports at the
            // cycle *preceding* the retraction, hence the +1), and — for
            // the per-cycle monitors — at most `detection_window` cycles
            // after it closes. The scoreboard's completeness shortfall is
            // exempt: a dropped token is only provable at the run horizon.
            if violation.cycle + 1 < fault.from_cycle {
                return Err(fail(format!(
                    "monitor fired before the fault window opened: {violation}"
                )));
            }
            let fault_end = fault.from_cycle.saturating_add(capped_duration);
            if violation.invariant != "ReferenceStream"
                && violation.cycle > fault_end.saturating_add(options.detection_window)
            {
                return Err(fail(format!(
                    "detection landed outside the bounded window (fault ends at cycle \
                     {fault_end}, window {}): {violation}",
                    options.detection_window
                )));
            }
            (
                FaultOutcome::Detected {
                    monitor: violation.monitor,
                    invariant: violation.invariant,
                    cycle: violation.cycle,
                },
                false,
            )
        }
        Ok(Err(error)) => return Err(fail(format!("simulation error: {error}"))),
        Ok(Ok(report)) => {
            if report.deadline_exceeded {
                return Err(fail(format!(
                    "case exceeded its {:?} wall-clock deadline",
                    options.case_deadline
                )));
            }
            (FaultOutcome::Masked, report.faults.total_events() == 0)
        }
    };
    Ok(InjectionRecord { index, fault, outcome, vacuous })
}

fn campaign_core(
    netlist: &Netlist,
    seed: u64,
    options: &CampaignOptions,
) -> Result<CampaignReport, CampaignFailure> {
    let setup_fail = |message: String| CampaignFailure { injection: None, fault: None, message };

    let channels: Vec<(ChannelId, u8)> = netlist.live_channels().map(|c| (c.id, c.width)).collect();
    if channels.is_empty() {
        return Err(setup_fail("the netlist has no channels to inject faults into".into()));
    }

    let mut sim = Simulation::new(netlist, &SimConfig::default())
        .map_err(|error| setup_fail(format!("simulation build failed: {error}")))?;
    let reference = sim
        .run(options.cycles)
        .map_err(|error| setup_fail(format!("clean reference run failed: {error}")))?;

    // Negative control: the clean design must pass the full monitor set.
    sim.reset();
    let mut monitors = armed_monitors(netlist, &reference, &options.monitors);
    let control = sim
        .run_monitored(
            options.cycles + options.drain_slack,
            Some(Instant::now() + options.case_deadline),
            &mut monitors,
        )
        .map_err(|error| {
            setup_fail(format!("negative control: the clean design trips a monitor: {error}"))
        })?;
    if control.deadline_exceeded {
        return Err(setup_fail("negative control exceeded the wall-clock deadline".into()));
    }

    let mut rng = GenRng::new(seed);
    let mut report = CampaignReport::default();
    for index in 0..options.injections {
        let fault = sample_fault(&mut rng, &channels, options);
        report.records.push(run_injection(&mut sim, netlist, &reference, index, fault, options)?);
    }

    // Byzantine scheduler sub-campaign: random feedback-ignoring grants must
    // leave the output streams bit-identical (the shared controller enforces
    // the leads-to discipline) or trip a monitor with a locus.
    let shared: Vec<_> = netlist
        .live_nodes()
        .filter_map(|node| match &node.kind {
            NodeKind::Shared(spec) => Some((node.id, spec.users)),
            _ => None,
        })
        .collect();
    if !shared.is_empty() {
        for _run in 0..options.byzantine_runs {
            let byz_seed = rng.next_u64();
            sim.reset_with_schedulers(
                shared
                    .iter()
                    .map(|&(id, users)| {
                        (
                            id,
                            Box::new(ByzantineScheduler::new(users, byz_seed))
                                as Box<dyn Scheduler>,
                        )
                    })
                    .collect(),
            );
            let mut monitors = armed_monitors(netlist, &reference, &options.monitors);
            let run = sim.run_monitored(
                options.cycles + options.drain_slack,
                Some(Instant::now() + options.case_deadline),
                &mut monitors,
            );
            report.byzantine_runs += 1;
            match run {
                Err(SimError::MonitorTripped(_)) => report.byzantine_detections += 1,
                Err(error) => {
                    return Err(setup_fail(format!(
                        "byzantine run (seed {byz_seed:#x}) failed outside the monitors: {error}"
                    )));
                }
                Ok(run_report) if run_report.deadline_exceeded => {
                    return Err(setup_fail(format!(
                        "byzantine run (seed {byz_seed:#x}) exceeded the wall-clock deadline"
                    )));
                }
                Ok(_) => {}
            }
        }
    }
    Ok(report)
}

/// Runs the full fault-injection campaign on one netlist.
///
/// Every injection must end **detected** (a monitor trip with a bounded
/// locus), **trapped** (fail-stop assertion) or **provably masked**
/// (bit-identical reference streams); anything else is a [`CampaignFailure`]
/// carrying the seeded reproducer. See the module docs for the protocol.
///
/// # Errors
///
/// The first injection (or setup stage) violating the campaign contract.
pub fn run_fault_campaign(
    netlist: &Netlist,
    seed: u64,
    options: &CampaignOptions,
) -> Result<CampaignReport, CampaignFailure> {
    campaign_core(netlist, seed, options)
}

/// The strict transient variant for the paper designs: every storm must be
/// **masked** — after it drains, the design delivers the exact clean
/// reference streams, bit-identically.
///
/// A stall storm models the *environment* misbehaving, not a wire breaking:
/// each injection replaces one sink's back-pressure pattern with a transient
/// all-stall burst (a legal SELF behaviour that participates in the settle,
/// unlike the post-settle wire corruption of
/// [`elastic_sim::FaultKind::StallStorm`], which an elastic design is
/// entitled to *detect* rather than absorb). The full monitor set rides
/// along; the scoreboard's completeness check proves every sink delivered
/// the reference streams bit-identically once the storm drained. Each
/// record's [`InjectionRecord::fault`] names the stormed sink's input
/// channel and the burst window.
///
/// ## Contract-aware hardening
///
/// A sink whose declared back-pressure contract can never stall is a
/// load-bearing assumption of the speculative isolation-buffer placement
/// (see [`elastic_core::transform::backpressure_may_stall`]): storming such
/// a sink anyway exposes every stallable fork in a speculative retraction
/// cone to phantom-token duplication — the harness would be blaming the
/// design for an environment it explicitly declared impossible. The storm
/// harness therefore *re-negotiates the contract first*: each injection
/// bakes its burst into the victim sink's declared pattern on a working
/// copy and re-runs [`elastic_core::transform::place_isolation_buffers`]
/// for every multiplexor, so the design is hardened exactly as the paper's
/// methodology demands for that environment (a no-op for designs that
/// already tolerate sink stalls). Reference and storm runs both use the
/// hardened copy, so the bit-identity claim stays an apples-to-apples
/// comparison.
///
/// # Errors
///
/// A storm that tripped a monitor, hung past the wall-clock deadline, or
/// perturbed the output streams.
pub fn run_stall_storm_recovery(
    netlist: &Netlist,
    seed: u64,
    options: &CampaignOptions,
) -> Result<CampaignReport, CampaignFailure> {
    let setup_fail = |message: String| CampaignFailure { injection: None, fault: None, message };

    // Every sink, with its input channel (the record locus) and its
    // original back-pressure pattern.
    let sinks: Vec<(NodeId, ChannelId, BackpressurePattern)> = netlist
        .live_nodes()
        .filter_map(|node| match &node.kind {
            NodeKind::Sink(spec) => {
                let channel = netlist.channel_into(Port::input(node.id, 0))?;
                Some((node.id, channel.id, spec.backpressure.clone()))
            }
            _ => None,
        })
        .collect();
    if sinks.is_empty() {
        return Err(setup_fail("the netlist has no sink to storm".into()));
    }

    let mut rng = GenRng::new(seed);
    let mut report = CampaignReport::default();
    for index in 0..options.injections {
        let victim = rng.below(sinks.len() as u64) as usize;
        let from_cycle = rng.range(4, options.cycles / 2);
        let duration = rng.range(8, 32);
        let fault = FaultSpec {
            channel: sinks[victim].1,
            kind: FaultKind::StallStorm,
            from_cycle,
            duration,
        };
        let total = options.cycles + duration + options.drain_slack;
        let fail = |message: String| CampaignFailure {
            injection: Some(index),
            fault: Some(fault),
            message,
        };

        // One transient burst: stall for `duration` cycles starting at
        // `from_cycle`, then accept for the rest of the run (the pattern
        // repeats when exhausted, so the quiet tail must cover the run).
        let mut burst = vec![false; from_cycle as usize];
        burst.extend(std::iter::repeat_n(true, duration as usize));
        burst.extend(std::iter::repeat_n(false, total as usize));
        let burst = BackpressurePattern::List(burst);

        // Re-negotiate the environment contract: the victim's declared
        // pattern becomes the burst, and the isolation-buffer placement is
        // re-run under it (see the function docs).
        let mut hardened = netlist.clone();
        if let Some(node) = hardened.node_mut(sinks[victim].0) {
            if let NodeKind::Sink(spec) = &mut node.kind {
                spec.backpressure = burst.clone();
            }
        }
        let muxes: Vec<NodeId> = hardened
            .live_nodes()
            .filter(|node| matches!(node.kind, NodeKind::Mux(_)))
            .map(|node| node.id)
            .collect();
        for mux in muxes {
            place_isolation_buffers(&mut hardened, mux).map_err(|error| {
                fail(format!("isolation hardening for the storm contract failed: {error}"))
            })?;
        }

        // The clean reference of the *hardened* design: same netlist, the
        // victim's original (storm-free) contract.
        let mut sim = Simulation::new(&hardened, &SimConfig::default())
            .map_err(|error| fail(format!("hardened simulation build failed: {error}")))?;
        sim.reset_with_sink_patterns(&[(sinks[victim].0, sinks[victim].2.clone())]);
        let reference = sim
            .run(options.cycles)
            .map_err(|error| fail(format!("clean reference run failed: {error}")))?;
        sim.reset_with_sink_patterns(&[(sinks[victim].0, burst)]);

        // A D-cycle storm legitimately stretches every bounded-wait
        // guarantee by O(D): the stall itself, plus the wrong-path replay a
        // stalled speculative loop performs while draining. Widen the
        // bounded-liveness windows by 2·D for this run; the *bit-identical
        // delivery* claim is untouched — it lives in the scoreboard.
        let slack = 2 * duration;
        let mut widened = options.monitors;
        widened.protocol.starvation_window += slack as usize;
        widened.progress_window += slack as usize;
        widened.leads_to_horizon += slack;
        let mut monitors = armed_monitors(&hardened, &reference, &widened);
        let run =
            sim.run_monitored(total, Some(Instant::now() + options.case_deadline), &mut monitors);
        match run {
            Err(error) => {
                return Err(fail(format!(
                    "a transient stall storm must drain without a trace: {error}"
                )));
            }
            Ok(run_report) if run_report.deadline_exceeded => {
                return Err(fail(format!(
                    "storm case exceeded its {:?} wall-clock deadline",
                    options.case_deadline
                )));
            }
            Ok(_) => {
                report.records.push(InjectionRecord {
                    index,
                    fault,
                    outcome: FaultOutcome::Masked,
                    vacuous: false,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};

    #[test]
    fn the_campaign_classifies_every_injection_on_a_generated_design() {
        let generated = generate(0xCA_0001, &GenConfig::default());
        let options = CampaignOptions { injections: 12, ..CampaignOptions::default() };
        let report = run_fault_campaign(&generated.netlist, 0xCA_0002, &options)
            .unwrap_or_else(|failure| panic!("{failure}"));
        assert_eq!(report.records.len(), 12);
        assert_eq!(report.detected() + report.trapped() + report.masked(), 12);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn storm_recovery_requires_masked_outcomes_only() {
        let generated = generate(0xCA_0003, &GenConfig::default());
        let options = CampaignOptions { injections: 6, ..CampaignOptions::default() };
        let report = run_stall_storm_recovery(&generated.netlist, 0xCA_0004, &options)
            .unwrap_or_else(|failure| panic!("{failure}"));
        assert!(report.records.iter().all(|r| r.outcome.is_masked()));
    }
}
