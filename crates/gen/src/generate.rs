//! Seeded, valid-by-construction random netlist generation.
//!
//! The generator grows a netlist from a *frontier* of open output ports.
//! Every growth step consumes open ports and produces new ones, so the graph
//! stays connected and feed-forward by construction; the only cycles are the
//! ones the dedicated **select-loop gadget** builds deliberately — a
//! generalized Figure-1(a) feedback loop whose every instance is eligible for
//! [`elastic_core::transform::speculate`] and is guaranteed live (exactly one
//! standard elastic buffer holding one token on the loop, so the loop can
//! neither deadlock nor fail to settle combinationally).
//!
//! Validity invariants maintained by construction:
//!
//! * every port of every node ends up connected to exactly one channel (the
//!   frontier is drained into sinks at the end);
//! * every cycle contains a standard (`Lf = 1, Lb = 1`) elastic buffer, so
//!   the control network has no combinational loop in either direction;
//! * buffers satisfy `C >= Lf + Lb` and only use `Lf = 1` (the simulator's
//!   supported configuration);
//! * environment patterns always make progress: list patterns are forced to
//!   contain at least one offer (resp. one non-stall) entry, random offer
//!   probabilities stay ≥ 0.3 and random stall probabilities ≤ 0.6, so the
//!   liveness checkers' progress windows are meaningful;
//! * mux select channels are 1 bit wide (producers mask data to the channel
//!   width, and the mux controller reduces the select value modulo its data
//!   input count, so any select producer is safe);
//! * shared modules carry a small starvation limit so the leads-to property
//!   holds within a short horizon for every scheduler.

use elastic_core::kind::{
    BackpressurePattern, BufferSpec, DataStream, ForkSpec, FunctionSpec, MuxSpec, NodeKind,
    SchedulerKind, SharedSpec, SinkSpec, SourcePattern, SourceSpec, VarLatencySpec,
};
use elastic_core::op::opaque;
use elastic_core::transform::ill_formed_lazy_forks;
use elastic_core::{Netlist, NodeId, Op, Port};

use crate::rng::GenRng;

/// Configuration of the generation space.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Minimum number of frontier growth steps.
    pub min_growth_steps: usize,
    /// Maximum number of frontier growth steps.
    pub max_growth_steps: usize,
    /// Extra sources seeded into the initial frontier (beyond the first).
    pub max_extra_sources: usize,
    /// Minimum number of select-loop gadgets (speculation-eligible feedback
    /// loops à la Figure 1(a)).
    pub min_select_loops: usize,
    /// Maximum number of select-loop gadgets.
    pub max_select_loops: usize,
    /// Probability of a feed-forward speculation-eligible mux gadget
    /// (source-fed data inputs, function block after the mux — the
    /// `allow_acyclic` speculation target).
    pub feedforward_mux_chance: f64,
    /// Probability weight of shared-module growth steps.
    pub shared_chance: f64,
    /// Probability that a shared-module growth step uses two operands per
    /// user (`inputs_per_user = 2`, the Figure-7(b) adder shape) instead of
    /// one.
    pub multi_operand_shared_chance: f64,
    /// Probability weight of variable-latency growth steps.
    pub varlatency_chance: f64,
    /// Probability that a fork growth step emits a *lazy* fork. Lazy forks
    /// reconverging at joins have a live and a dead settle fixpoint; the
    /// engines resolve them with the optimistic seeding pass (ROADMAP
    /// lazy-to-lazy item), so they are back in the generation space.
    pub lazy_fork_chance: f64,
    /// Probability that a select-loop gadget places its fork *before* the
    /// loop's elastic buffer — putting the fork inside the speculative mux's
    /// combinational cone, with the continuation branch free to stall (the
    /// ROADMAP "cyclic speculation into a stallable fork cone" corner).
    pub stallable_loop_fork_chance: f64,
    /// Probability that a fork branch or a join operand **mutates its
    /// channel width** — the branch/operand channel is declared at a freshly
    /// drawn width instead of inheriting the producer's. Every producer
    /// masks its data to the channel it drives (the simulator's signal layer
    /// truncates exactly like the Verilog wire the channel emits to), so
    /// width-converting forks and joins are valid designs; what the knob
    /// buys is fuzz coverage of that masking — transforms that re-site
    /// producers (retiming, speculation's shared module) must preserve the
    /// conversion points (the PR-3/PR-4 fuzz-scaling leftover).
    pub width_mutation_chance: f64,
    /// Probability that a mux gadget (select-loop or feed-forward) declares
    /// its **output wire narrower than its data inputs** — a width-converting
    /// (narrowing) multiplexor. The wire is then a masking point every
    /// selected token passes through, and the speculation pass must preserve
    /// it when Shannon decomposition moves the downstream block onto the data
    /// inputs (it re-masks the moved block's operands to the old output
    /// width). The roll is drawn from the builder's *auxiliary* rng stream,
    /// so seeds whose gadgets do not narrow regenerate byte-identically to
    /// the pre-knob space.
    pub narrowing_mux_chance: f64,
    /// Allow zero-backward-latency (`Lb = 0`) buffers outside loops.
    pub allow_zero_backward: bool,
    /// Allow stochastic environment patterns (seeded, still deterministic).
    pub randomized_environments: bool,
    /// Maximum data channel width in bits.
    pub max_width: u8,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_growth_steps: 6,
            max_growth_steps: 16,
            max_extra_sources: 2,
            min_select_loops: 0,
            max_select_loops: 1,
            feedforward_mux_chance: 0.5,
            shared_chance: 0.35,
            multi_operand_shared_chance: 0.3,
            varlatency_chance: 0.3,
            lazy_fork_chance: 0.25,
            stallable_loop_fork_chance: 0.4,
            width_mutation_chance: 0.25,
            narrowing_mux_chance: 0.25,
            allow_zero_backward: true,
            randomized_environments: true,
            max_width: 32,
        }
    }
}

impl GenConfig {
    /// Pure feed-forward pipelines and DAGs: no loops, no muxes, no shared
    /// modules — the engine-differential and bubble/retime workhorse.
    pub fn pipelines() -> Self {
        GenConfig {
            min_select_loops: 0,
            max_select_loops: 0,
            feedforward_mux_chance: 0.0,
            shared_chance: 0.0,
            varlatency_chance: 0.0,
            ..GenConfig::default()
        }
    }

    /// Loop-heavy space: every netlist carries at least one select cycle, the
    /// habitat of the composite speculation pass.
    pub fn loops() -> Self {
        GenConfig {
            min_select_loops: 1,
            max_select_loops: 2,
            feedforward_mux_chance: 0.3,
            ..GenConfig::default()
        }
    }

    /// Small netlists for quick exploration and doc examples.
    pub fn small() -> Self {
        GenConfig {
            min_growth_steps: 2,
            max_growth_steps: 6,
            max_extra_sources: 1,
            ..GenConfig::default()
        }
    }
}

/// What the generator built, beyond the netlist itself.
#[derive(Debug, Clone, Default)]
pub struct GenProfile {
    /// The seed the netlist was derived from.
    pub seed: u64,
    /// Muxes sitting on a generated select-feedback loop (eligible for the
    /// full [`elastic_core::transform::speculate`] pass).
    pub select_loop_muxes: Vec<NodeId>,
    /// Feed-forward muxes with source-fed data inputs and a function block on
    /// their output (eligible for speculation with `allow_acyclic`).
    pub feedforward_muxes: Vec<NodeId>,
    /// Shared modules placed directly by the generator.
    pub shared_modules: Vec<NodeId>,
    /// Shared modules with more than one operand per user.
    pub multi_operand_shared: Vec<NodeId>,
    /// Lazy forks emitted by fork growth steps.
    pub lazy_forks: Vec<NodeId>,
    /// Loop-gadget forks placed *before* the loop buffer — inside the
    /// speculative mux's combinational cone (ROADMAP stallable-cone corner).
    pub stallable_loop_forks: Vec<NodeId>,
    /// Forks with at least one branch whose channel width differs from the
    /// input channel's (the branch wire narrows or widens the token).
    pub width_mutated_forks: Vec<NodeId>,
    /// Joins (two-operand function blocks) with at least one operand channel
    /// declared at a mutated width.
    pub width_mutated_joins: Vec<NodeId>,
    /// The subset of [`GenProfile::width_mutated_joins`] where an operand
    /// channel *narrowed* — the truncating direction, which is the masking
    /// corner the knob exists to soak. (Recorded at generation time: unlike
    /// forks, a join operand's pre-mutation width is not reconstructible
    /// from the finished netlist.)
    pub narrowing_joins: Vec<NodeId>,
    /// Gadget muxes whose output wire was declared narrower than their data
    /// inputs (see [`GenConfig::narrowing_mux_chance`]) — width-converting
    /// speculation sites the `speculate` pass must handle by re-masking.
    pub narrowing_muxes: Vec<NodeId>,
}

/// A generated netlist plus its generation profile.
#[derive(Debug, Clone)]
pub struct GeneratedNetlist {
    /// The netlist (validated before being returned).
    pub netlist: Netlist,
    /// Structural annotations collected while generating.
    pub profile: GenProfile,
}

/// An output port awaiting a consumer, with the width its channel should use.
#[derive(Debug, Clone, Copy)]
struct OpenPort {
    port: Port,
    width: u8,
}

struct Builder<'a> {
    n: Netlist,
    rng: GenRng,
    /// Auxiliary stream for knobs added after the corpus was seeded: drawing
    /// from a separate stream keeps the *main* stream's consumption order —
    /// and with it every pre-knob structural decision — byte-identical for
    /// existing seeds. Only netlists whose aux rolls fire change at all.
    aux: GenRng,
    config: &'a GenConfig,
    open: Vec<OpenPort>,
    profile: GenProfile,
}

impl<'a> Builder<'a> {
    fn data_width(&mut self) -> u8 {
        self.rng.range(2, u64::from(self.config.max_width.max(2))) as u8
    }

    fn source_spec(&mut self) -> SourceSpec {
        let pattern = match self.rng.below(if self.config.randomized_environments { 5 } else { 4 })
        {
            0 | 1 => SourcePattern::Always,
            2 => SourcePattern::Every(self.rng.range(2, 4) as u32),
            3 => {
                let len = self.rng.range(3, 6) as usize;
                let mut offers: Vec<bool> = (0..len).map(|_| self.rng.chance(0.6)).collect();
                offers[0] = true; // at least one offer per period
                SourcePattern::List(offers)
            }
            _ => SourcePattern::Random {
                probability: 0.3 + self.rng.below(60) as f64 / 100.0,
                seed: self.rng.next_u64(),
            },
        };
        let data = match self.rng.below(4) {
            0 => DataStream::Counter,
            1 => DataStream::Const(self.rng.next_u64()),
            2 => {
                let len = self.rng.range(4, 10) as usize;
                DataStream::List((0..len).map(|_| self.rng.next_u64()).collect())
            }
            _ => DataStream::Random { seed: self.rng.next_u64() },
        };
        SourceSpec { pattern, data, consume_on_kill: true }
    }

    fn sink_spec(&mut self) -> SinkSpec {
        let backpressure =
            match self.rng.below(if self.config.randomized_environments { 5 } else { 4 }) {
                0 | 1 => BackpressurePattern::Never,
                2 => BackpressurePattern::Every(self.rng.range(2, 5) as u32),
                3 => {
                    let len = self.rng.range(3, 6) as usize;
                    let mut stalls: Vec<bool> = (0..len).map(|_| self.rng.chance(0.4)).collect();
                    stalls[0] = false; // at least one accepting cycle per period
                    BackpressurePattern::List(stalls)
                }
                _ => BackpressurePattern::Random {
                    probability: self.rng.below(60) as f64 / 100.0,
                    seed: self.rng.next_u64(),
                },
            };
        SinkSpec { backpressure }
    }

    fn unary_op(&mut self) -> Op {
        match self.rng.below(8) {
            0 => Op::Identity,
            1 => Op::Not,
            2 => Op::Neg,
            3 => Op::Inc,
            4 => Op::Dec,
            5 => Op::Mask { width: self.rng.range(1, 16) as u8 },
            6 => Op::Lut((0..self.rng.range(4, 8)).map(|_| self.rng.next_u64()).collect()),
            _ => opaque("blk", self.rng.range(2, 9) as u32, self.rng.range(20, 200) as u32),
        }
    }

    fn binary_op(&mut self) -> Op {
        match self.rng.below(8) {
            0 => Op::Sub,
            1 => Op::Eq,
            2 => Op::Ne,
            3 => Op::Lt,
            4 => Op::Add,
            5 => Op::Xor,
            6 => Op::And,
            _ => Op::RippleAdd { width: self.rng.range(4, 16) as u8 },
        }
    }

    fn buffer_spec(&mut self) -> BufferSpec {
        match self.rng.below(if self.config.allow_zero_backward { 5 } else { 4 }) {
            0 | 1 => BufferSpec::standard(0),
            2 => BufferSpec::standard(1).with_init_value(self.rng.below(256)),
            3 => BufferSpec { capacity: 3, ..BufferSpec::standard(0) },
            _ => BufferSpec::zero_backward(0),
        }
    }

    /// Takes a random open port, creating a fresh source when the frontier is
    /// empty.
    fn pop_open(&mut self) -> OpenPort {
        if self.open.is_empty() {
            let width = self.data_width();
            let spec = self.source_spec();
            let source = self.n.add_source("src", spec);
            return OpenPort { port: Port::output(source, 0), width };
        }
        let index = self.rng.below(self.open.len() as u64) as usize;
        self.open.swap_remove(index)
    }

    fn push_open(&mut self, port: Port, width: u8) {
        self.open.push(OpenPort { port, width });
    }

    /// Rolls the width-mutation knob on an open port: with
    /// [`GenConfig::width_mutation_chance`], the port's next channel is
    /// declared at a freshly drawn width instead of the inherited one.
    /// Returns the (possibly re-widthed) port, whether the width actually
    /// changed, and whether it narrowed (the truncating direction).
    fn maybe_mutate_width(&mut self, port: OpenPort) -> (OpenPort, bool, bool) {
        if !self.rng.chance(self.config.width_mutation_chance) {
            return (port, false, false);
        }
        let width = self.data_width();
        (OpenPort { width, ..port }, width != port.width, width < port.width)
    }

    /// Rolls the narrowing-mux knob for a gadget mux whose data inputs are
    /// `width` bits wide: with [`GenConfig::narrowing_mux_chance`], the mux's
    /// output wire is declared strictly narrower — the mux becomes a
    /// width-converting masking point (and thus a speculation site that
    /// exercises the re-masking path of Shannon decomposition). Drawn from
    /// the auxiliary stream so the main generation stream is undisturbed.
    fn maybe_narrow_mux_wire(&mut self, width: u8) -> (u8, bool) {
        if width < 3 || !self.aux.chance(self.config.narrowing_mux_chance) {
            return (width, false);
        }
        (self.aux.range(2, u64::from(width) - 1) as u8, true)
    }

    fn connect(&mut self, from: OpenPort, to: Port) {
        self.n.connect(from.port, to, from.width).expect("builder ports are fresh and in range");
    }

    // ------------------------------------------------------------------
    // Growth steps
    // ------------------------------------------------------------------

    fn step_function1(&mut self) {
        let input = self.pop_open();
        let op = self.unary_op();
        let out_width = op.output_width().unwrap_or(input.width);
        let block = self.n.add_function("f", FunctionSpec::with_inputs(op, 1));
        self.connect(input, Port::input(block, 0));
        self.push_open(Port::output(block, 0), out_width);
    }

    fn step_join(&mut self) {
        let a = self.pop_open();
        let b = self.pop_open();
        let op = self.binary_op();
        let out_width = op.output_width().unwrap_or(a.width.max(b.width));
        let block = self.n.add_function("join", FunctionSpec::with_inputs(op, 2));
        // Width mutation: an operand channel may be declared at a freshly
        // drawn width — the producer masks to the wire it drives, so the
        // join sees the truncated operand exactly as synthesized hardware
        // would.
        let (a, a_mutated, a_narrowed) = self.maybe_mutate_width(a);
        let (b, b_mutated, b_narrowed) = self.maybe_mutate_width(b);
        if a_mutated || b_mutated {
            self.profile.width_mutated_joins.push(block);
        }
        if a_narrowed || b_narrowed {
            self.profile.narrowing_joins.push(block);
        }
        self.connect(a, Port::input(block, 0));
        self.connect(b, Port::input(block, 1));
        self.push_open(Port::output(block, 0), out_width);
    }

    fn step_buffer(&mut self) {
        let input = self.pop_open();
        let spec = self.buffer_spec();
        let buffer = self.n.add_buffer("eb", spec);
        let width = input.width;
        self.connect(input, Port::input(buffer, 0));
        self.push_open(Port::output(buffer, 0), width);
    }

    fn step_fork(&mut self) {
        let input = self.pop_open();
        let outputs = self.rng.range(2, 3) as usize;
        // Lazy forks whose branches reconverge at a join form a
        // combinational valid↔stop cycle with a live and a dead solution;
        // the engines' optimistic seeding pass steers the settle phase into
        // the live one (see `elastic_sim`'s engine docs), so lazy forks are
        // part of the generation space again — the fuzzer's job is exactly
        // to keep that composition honest.
        let lazy = self.rng.chance(self.config.lazy_fork_chance);
        let spec = if lazy { ForkSpec::lazy(outputs) } else { ForkSpec::eager(outputs) };
        let fork = self.n.add_fork(if lazy { "lzfork" } else { "fork" }, spec);
        if lazy {
            self.profile.lazy_forks.push(fork);
        }
        let width = input.width;
        self.connect(input, Port::input(fork, 0));
        // Width mutation: a branch may re-declare its channel width — the
        // fork masks each branch's copy to the wire it drives (like the
        // per-branch assigns of the emitted Verilog), so branches of one
        // token may legitimately carry different truncations of it.
        let mut mutated = false;
        for branch in 0..outputs {
            let (open, branch_mutated, _narrowed) =
                self.maybe_mutate_width(OpenPort { port: Port::output(fork, branch), width });
            mutated |= branch_mutated;
            self.push_open(open.port, open.width);
        }
        if mutated {
            self.profile.width_mutated_forks.push(fork);
        }
    }

    fn step_mux(&mut self) {
        let select = self.pop_open();
        let a = self.pop_open();
        let b = self.pop_open();
        let mux = self.n.add_mux("mux", MuxSpec::lazy(2));
        // Producers mask data to the channel width, so a 1-bit select channel
        // keeps the select value in range for two data inputs.
        self.connect(OpenPort { width: 1, ..select }, Port::input(mux, 0));
        let out_width = a.width.max(b.width);
        self.connect(a, Port::input(mux, 1));
        self.connect(b, Port::input(mux, 2));
        self.push_open(Port::output(mux, 0), out_width);
    }

    fn scheduler(&mut self) -> SchedulerKind {
        match self.rng.below(5) {
            0 => SchedulerKind::Static(0),
            1 => SchedulerKind::Static(1),
            2 => SchedulerKind::RoundRobin,
            3 => SchedulerKind::LastTaken,
            _ => SchedulerKind::TwoBit,
        }
    }

    fn step_shared(&mut self) {
        // Multi-operand users (the Figure-7(b) adder shape) join two operand
        // streams per user before the shared logic.
        let inputs_per_user =
            if self.rng.chance(self.config.multi_operand_shared_chance) { 2 } else { 1 };
        let op = if inputs_per_user == 2 { self.binary_op() } else { self.unary_op() };
        let operands: Vec<OpenPort> = (0..2 * inputs_per_user).map(|_| self.pop_open()).collect();
        let out_width = op
            .output_width()
            .unwrap_or_else(|| operands.iter().map(|p| p.width).max().unwrap_or(8));
        let scheduler = self.scheduler();
        let spec = SharedSpec {
            users: 2,
            inputs_per_user,
            op,
            scheduler,
            // A tight starvation override keeps the leads-to horizon short
            // even for adversarial schedulers, so generated designs stay
            // checkable with small liveness windows.
            starvation_limit: Some(self.rng.range(4, 16) as u32),
        };
        let shared = self.n.add_shared("shared", spec);
        for (index, operand) in operands.into_iter().enumerate() {
            self.connect(operand, Port::input(shared, index));
        }
        self.profile.shared_modules.push(shared);
        if inputs_per_user > 1 {
            self.profile.multi_operand_shared.push(shared);
        }
        // Buffer each user's output before it joins the frontier: the two
        // outputs are mutually exclusive by construction (one user holds the
        // unit per cycle), so letting them reconverge at a join *unbuffered*
        // deadlocks — the join waits for both at once. The paper's
        // composition (and its refinement proof) is shared module ∘ EB;
        // with the EBs in place, downstream reconvergence is live because
        // the starvation override keeps alternating the users.
        for user in 0..2 {
            let buffer = self.n.add_buffer("sheb", BufferSpec::standard(0));
            self.n
                .connect(Port::output(shared, user), Port::input(buffer, 0), out_width)
                .expect("fresh shared output");
            self.push_open(Port::output(buffer, 0), out_width);
        }
    }

    fn step_varlatency(&mut self) {
        let width = self.rng.range(4, 16) as u8;
        let spec_bits = self.rng.range(1, u64::from(width) - 1) as u8;
        let a = self.pop_open();
        let b = self.pop_open();
        let unit = self.n.add_var_latency(
            "vlu",
            VarLatencySpec {
                exact: Op::RippleAdd { width },
                approx: Op::ApproxAdd { width, spec_bits },
                error: Op::ApproxAddErr { width, spec_bits },
                inputs: 2,
            },
        );
        self.connect(OpenPort { width, ..a }, Port::input(unit, 0));
        self.connect(OpenPort { width, ..b }, Port::input(unit, 1));
        self.push_open(Port::output(unit, 0), (width + 1).min(64));
    }

    // ------------------------------------------------------------------
    // Gadgets
    // ------------------------------------------------------------------

    /// The generalized Figure-1(a) select-feedback loop:
    ///
    /// ```text
    /// src0 ─► mux ─► F ─► EB(1 token) ─► …bubbles… ─► fork ─► (continuation)
    /// src1 ─►  │                                       │
    ///          └────────── gk ◄── … ◄── g1 ◄───────────┘
    /// ```
    ///
    /// Exactly one token circulates; the loop contains one standard EB, so it
    /// is live and free of combinational control cycles by construction. The
    /// continuation branch joins the regular frontier.
    /// With [`GenConfig::stallable_loop_fork_chance`] the fork moves *before*
    /// the loop's elastic buffer:
    ///
    /// ```text
    /// src0 ─► mux ─► F ─► fork ─► EB(1 token) ─► …bubbles… ─► gk… ─► select
    /// src1 ─►  │           │
    ///          └───────────┴─► (continuation, free to stall)
    /// ```
    ///
    /// which puts an eager fork with a stallable branch inside the
    /// speculative mux's combinational cone — the ROADMAP's second
    /// unverified corner. The retraction-domain analysis must then isolate
    /// exactly that fork when the mux is speculated.
    fn select_loop_gadget(&mut self) {
        let width = self.data_width();
        let src0 = {
            let spec = self.source_spec();
            self.n.add_source("lsrc", spec)
        };
        let src1 = {
            let spec = self.source_spec();
            self.n.add_source("lsrc", spec)
        };
        let mux = self.n.add_mux("lmux", MuxSpec::lazy(2));
        let f_op = self.unary_op();
        let f_width = f_op.output_width().unwrap_or(width);
        let f = self.n.add_function("lf", FunctionSpec::with_inputs(f_op, 1));
        let eb =
            self.n.add_buffer("leb", BufferSpec::standard(1).with_init_value(self.rng.below(256)));
        let fork_before_eb = self.rng.chance(self.config.stallable_loop_fork_chance);
        let fork =
            self.n.add_fork(if fork_before_eb { "lcfork" } else { "lfork" }, ForkSpec::eager(2));

        self.n.connect(Port::output(src0, 0), Port::input(mux, 1), width).unwrap();
        self.n.connect(Port::output(src1, 0), Port::input(mux, 2), width).unwrap();
        // The mux→F wire may narrow (a width-converting mux): the loop body
        // then computes on tokens masked to the wire, and speculating the mux
        // must preserve exactly that truncation.
        let (wire_width, narrowed) = self.maybe_narrow_mux_wire(width);
        if narrowed {
            self.profile.narrowing_muxes.push(mux);
        }
        self.n.connect(Port::output(mux, 0), Port::input(f, 0), wire_width).unwrap();

        // Loop body order: either F → EB → bubbles → fork (the fork sits
        // behind the registered boundary, outside the mux's cone) or
        // F → fork → EB → bubbles (the fork is combinationally exposed).
        let loop_tail = if fork_before_eb {
            self.n.connect(Port::output(f, 0), Port::input(fork, 0), f_width).unwrap();
            self.n.connect(Port::output(fork, 0), Port::input(eb, 0), f_width).unwrap();
            let mut forward = Port::output(eb, 0);
            for _ in 0..self.rng.below(3) {
                let bubble = self.n.add_buffer("lbub", BufferSpec::standard(0));
                self.n.connect(forward, Port::input(bubble, 0), f_width).unwrap();
                forward = Port::output(bubble, 0);
            }
            self.profile.stallable_loop_forks.push(fork);
            forward
        } else {
            self.n.connect(Port::output(f, 0), Port::input(eb, 0), f_width).unwrap();
            let mut forward = Port::output(eb, 0);
            for _ in 0..self.rng.below(3) {
                let bubble = self.n.add_buffer("lbub", BufferSpec::standard(0));
                self.n.connect(forward, Port::input(bubble, 0), f_width).unwrap();
                forward = Port::output(bubble, 0);
            }
            self.n.connect(forward, Port::input(fork, 0), f_width).unwrap();
            Port::output(fork, 0)
        };

        // Return path through 0..=2 unary blocks, entering the select as a
        // 1-bit channel (the producer masks, keeping the select in range).
        let mut back = loop_tail;
        for _ in 0..self.rng.below(3) {
            let op = self.unary_op();
            let g = self.n.add_function("lg", FunctionSpec::with_inputs(op, 1));
            self.n.connect(back, Port::input(g, 0), f_width).unwrap();
            back = Port::output(g, 0);
        }
        self.n.connect(back, Port::input(mux, 0), 1).unwrap();

        self.profile.select_loop_muxes.push(mux);
        self.push_open(Port::output(fork, 1), f_width);
    }

    /// A feed-forward mux whose data inputs come straight from sources and
    /// whose output feeds a function block: the `allow_acyclic` speculation
    /// shape (the paper's SECDED pipeline is this shape).
    fn feedforward_mux_gadget(&mut self) {
        let width = self.data_width();
        let sel = {
            let spec = self.source_spec();
            self.n.add_source("fsel", spec)
        };
        let src0 = {
            let spec = self.source_spec();
            self.n.add_source("fsrc", spec)
        };
        let src1 = {
            let spec = self.source_spec();
            self.n.add_source("fsrc", spec)
        };
        let mux = self.n.add_mux("fmux", MuxSpec::lazy(2));
        let op = self.unary_op();
        let out_width = op.output_width().unwrap_or(width);
        let block = self.n.add_function("ff", FunctionSpec::with_inputs(op, 1));

        self.n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        self.n.connect(Port::output(src0, 0), Port::input(mux, 1), width).unwrap();
        self.n.connect(Port::output(src1, 0), Port::input(mux, 2), width).unwrap();
        // As in the loop gadget, the mux output wire may narrow — the
        // `allow_acyclic` speculation then hits a width-converting mux.
        let (wire_width, narrowed) = self.maybe_narrow_mux_wire(width);
        if narrowed {
            self.profile.narrowing_muxes.push(mux);
        }
        self.n.connect(Port::output(mux, 0), Port::input(block, 0), wire_width).unwrap();

        self.profile.feedforward_muxes.push(mux);
        self.push_open(Port::output(block, 0), out_width);
    }

    fn grow(&mut self) {
        let steps = self
            .rng
            .range(self.config.min_growth_steps as u64, self.config.max_growth_steps as u64);
        for _ in 0..steps {
            let shared_roll = self.rng.chance(self.config.shared_chance);
            let varlat_roll = self.rng.chance(self.config.varlatency_chance);
            match self.rng.below(10) {
                0..=2 => self.step_function1(),
                3 => self.step_join(),
                4 | 5 => self.step_buffer(),
                6 => self.step_fork(),
                7 => self.step_mux(),
                8 if shared_roll => self.step_shared(),
                9 if varlat_roll => self.step_varlatency(),
                _ => self.step_function1(),
            }
        }
    }

    fn close(&mut self) {
        while let Some(open) = self.open.pop() {
            let spec = self.sink_spec();
            let sink = self.n.add_sink("sink", spec);
            self.n.connect(open.port, Port::input(sink, 0), open.width).unwrap();
        }
    }
}

/// Generates one netlist from a seed.
///
/// Generation is fully deterministic: the same `(seed, config)` pair always
/// yields the same netlist, node for node and channel for channel — the
/// foundation of the corpus replay and of shrinking.
///
/// # Panics
///
/// Panics if the generated netlist fails structural validation — that is a
/// bug in the generator, not in the caller, and the fuzzing harness must not
/// silently skip such seeds.
pub fn generate(seed: u64, config: &GenConfig) -> GeneratedNetlist {
    let mut builder = Builder {
        n: Netlist::new(format!("gen_{seed:016x}")),
        rng: GenRng::new(seed),
        aux: GenRng::new(seed ^ 0x6E61_7272_6F77_6D78),
        config,
        open: Vec::new(),
        profile: GenProfile { seed, ..GenProfile::default() },
    };

    // Seed the frontier.
    let initial_sources = 1 + builder.rng.below(config.max_extra_sources as u64 + 1);
    for _ in 0..initial_sources {
        let width = builder.data_width();
        let spec = builder.source_spec();
        let source = builder.n.add_source("src", spec);
        builder.push_open(Port::output(source, 0), width);
    }

    // Gadgets first: they seed the frontier with their continuations.
    if config.max_select_loops > 0 {
        let loops =
            builder.rng.range(config.min_select_loops as u64, config.max_select_loops as u64);
        for _ in 0..loops {
            builder.select_loop_gadget();
        }
    }
    if builder.rng.chance(config.feedforward_mux_chance) {
        builder.feedforward_mux_gadget();
    }

    builder.grow();
    builder.close();

    // Structural lint (ROADMAP lazy-to-lazy item): a lazy fork whose
    // branches reconverge with unequal storage, or whose rendezvous region
    // contains a memory-keeping consumer, is dead by construction — no
    // settle policy can revive it. The frontier wires branches wherever the
    // rng takes them, so instead of constraining growth the builder demotes
    // the offending forks to eager after the fact, keeping the surviving
    // lazy forks exactly the well-formed rendezvous the optimistic settle
    // seed is meant to resolve. Demotion runs to a fixpoint: turning an
    // inner fork eager plants a memory-keeping consumer inside an outer
    // lazy fork's region, which may now be ill-formed itself (found by the
    // 20k-case soak as a nested-fork diamond deadlock).
    loop {
        let ill_formed = ill_formed_lazy_forks(&builder.n);
        if ill_formed.is_empty() {
            break;
        }
        for fork in ill_formed {
            if let Some(node) = builder.n.node_mut(fork) {
                if let NodeKind::Fork(spec) = &mut node.kind {
                    spec.eager = true;
                }
            }
            builder.profile.lazy_forks.retain(|&id| id != fork);
        }
    }

    builder
        .n
        .validate()
        .expect("generated netlists are valid by construction; a failure here is a generator bug");
    GeneratedNetlist { netlist: builder.n, profile: builder.profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::NodeKind;
    use elastic_core::transform::find_select_cycles;

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::default();
        for seed in 0..12 {
            let a = generate(seed, &config);
            let b = generate(seed, &config);
            assert_eq!(a.netlist, b.netlist, "seed {seed} must regenerate identically");
        }
    }

    #[test]
    fn generated_netlists_validate_across_the_space() {
        for (config, seeds) in [
            (GenConfig::default(), 0..40u64),
            (GenConfig::pipelines(), 100..130),
            (GenConfig::loops(), 200..230),
            (GenConfig::small(), 300..330),
        ] {
            for seed in seeds {
                let generated = generate(seed, &config);
                assert!(generated.netlist.validate().is_ok());
                assert!(generated.netlist.node_count() >= 2);
            }
        }
    }

    #[test]
    fn loop_gadgets_produce_select_cycles() {
        let config = GenConfig::loops();
        let mut with_cycles = 0;
        for seed in 0..20 {
            let generated = generate(seed, &config);
            for &mux in &generated.profile.select_loop_muxes {
                let cycles = find_select_cycles(&generated.netlist, mux).unwrap();
                assert!(!cycles.is_empty(), "seed {seed}: loop mux must sit on a select cycle");
                with_cycles += 1;
            }
        }
        assert!(with_cycles >= 20, "the loops() config must actually emit loops");
    }

    #[test]
    fn pipeline_config_emits_no_cycles() {
        let config = GenConfig::pipelines();
        for seed in 0..20 {
            let generated = generate(seed, &config);
            assert!(generated.profile.select_loop_muxes.is_empty());
            for node in generated.netlist.live_nodes() {
                if matches!(node.kind, NodeKind::Mux(_)) {
                    let cycles = find_select_cycles(&generated.netlist, node.id).unwrap();
                    assert!(cycles.is_empty(), "seed {seed}: pipelines must be cycle-free");
                }
            }
        }
    }

    #[test]
    fn generated_netlists_cover_the_node_kinds() {
        use std::collections::BTreeSet;
        let config = GenConfig::default();
        let mut kinds_seen: BTreeSet<&'static str> = BTreeSet::new();
        for seed in 0..60 {
            let generated = generate(seed, &config);
            for node in generated.netlist.live_nodes() {
                kinds_seen.insert(node.kind.kind_name());
            }
        }
        for kind in ["source", "sink", "function", "buffer", "fork", "mux", "shared", "varlatency"]
        {
            assert!(kinds_seen.contains(kind), "the space never produced a {kind} node");
        }
    }
}
