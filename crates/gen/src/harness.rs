//! The differential fuzzing harness: one generated netlist in, a verdict (or
//! a shrinkable failure) out.
//!
//! Every case runs the same gauntlet the hand-built paper scenarios face in
//! the unit tests, but on arbitrary generated structures:
//!
//! 1. **structural validation** — a generated netlist that fails
//!    `validate()` is a generator bug, reported as its own stage;
//! 2. **engine differential** — the event-driven worklist engine against the
//!    [`SettleStrategy::FullSweep`] oracle, cycle for cycle: bit-identical
//!    traces, identical sink streams, kills and node statistics; with
//!    [`HarnessOptions::lane_differential`] set (the `ELASTIC_FUZZ_LANES`
//!    smoke leg), the 64-lane bit-parallel engine joins the differential —
//!    all broadcast lanes must match the scalar run bit-for-bit; with
//!    [`HarnessOptions::compiled_differential`] set (the
//!    `ELASTIC_FUZZ_COMPILED` smoke leg), the compiled settle backend
//!    ([`SettleStrategy::Compiled`]) joins too;
//! 3. **base-design properties** — deadlock freedom, the shared-module
//!    leads-to property, token conservation and the per-channel SELF
//!    protocol checks on the untransformed design;
//! 4. **transform equivalence** — every applicable transformation
//!    (`insert_bubble`, buffer insertion/`split_empty_buffer`,
//!    `make_zero_backward`, retiming, and the composite `speculate` pass on
//!    every eligible mux — select loops *and*, by default, feed-forward
//!    muxes) is applied to a clone and checked behaviorally equivalent,
//!    live and token-conserving versus the original via
//!    [`elastic_verify::battery`]; speculated designs are additionally
//!    swept across schedulers and injected environment variations, and
//!    structural transforms get their own environment-injection sweep, all
//!    on one simulation build per design. Injected environments respect
//!    each node's declared liveness contract (see
//!    `environment_variations` in the source).
//!
//! A failure carries the offending netlist; [`shrink_failure`] replays the
//! failing stage while [`crate::shrink`] minimizes the netlist, and the
//! resulting [`Reproducer`] serializes as a runnable Rust snippet.

use std::time::{Duration, Instant};

use elastic_core::kind::{BackpressurePattern, NodeKind, SourcePattern};
use elastic_core::transform::{
    find_select_cycles, insert_bubble, insert_buffer_on_channel, make_zero_backward,
    retime_backward, retime_forward, speculate, split_empty_buffer, SpeculateOptions,
};
use elastic_core::{BufferSpec, CoreError, Netlist, NodeId, SchedulerKind};
use elastic_explore::{dominates, explore, ExploreOptions};
use elastic_sim::{LaneConfig, LaneSimulation, SettleStrategy, SimConfig, Simulation};
use elastic_verify::battery::{
    check_equivalence_across_schedulers, check_equivalence_under_environments,
    check_transform_battery, BatteryOptions, EnvironmentOverride,
};
use elastic_verify::conservation::check_shared_module_conservation;
use elastic_verify::liveness::{check_deadlock_freedom, check_leads_to, LivenessOptions};
use elastic_verify::properties::{check_netlist_protocol, ProtocolOptions};

use crate::generate::{generate, GenConfig, GeneratedNetlist};
use crate::rng::GenRng;
use crate::shrink::{shrink_netlist, ShrinkOptions};
use crate::snippet::to_rust_snippet;

/// Configuration of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Cycles simulated per check.
    pub cycles: u64,
    /// Environment variations injected per speculated design (0 disables the
    /// injection sweep).
    pub environment_variations: usize,
    /// Environment variations injected per *structural* (non-speculation)
    /// transform — retiming, buffer insertion and friends previously only
    /// ran under the generated design's own environments; a variation here
    /// replays their equivalence check under perturbed source offer and
    /// sink back-pressure patterns too (0 disables).
    pub structural_environment_variations: usize,
    /// Maximum number of structural (non-speculation) transforms per case.
    pub max_structural_transforms: usize,
    /// Schedulers injected into speculated designs.
    pub schedulers: Vec<SchedulerKind>,
    /// Maximum commit-stage depth injected into speculations (the per-case
    /// rng draws a depth in `1..=max_commit_depth` for every speculated mux,
    /// so the multi-entry lane paths — several in-flight wrong-path results
    /// squashing in sequence, zero-backward acceptance on a full deep lane —
    /// are soaked alongside the classic depth-1 configuration). 1 restores
    /// the pre-sweep behaviour.
    pub max_commit_depth: u32,
    /// Wall-clock watchdog per case: `run_netlist` checks the elapsed time
    /// between stages (and between transforms) and fails the case at stage
    /// `watchdog` instead of letting a pathological netlist hang the whole
    /// fuzzing sweep. Stage granularity keeps the check free of threads or
    /// signals; a single stage that hangs *inside* the simulator is caught
    /// by the engine's own oscillation/settle guards.
    pub case_deadline: Duration,
    /// Also run the 64-lane bit-parallel engine against the scalar engine
    /// on every case ([`lanes_agree`]): all 64 broadcast lanes must
    /// reproduce the scalar trace and report bit-for-bit. Off by default
    /// (the scalar differential already runs twice per case); the fuzz
    /// smoke test switches it on via `ELASTIC_FUZZ_LANES`.
    pub lane_differential: bool,
    /// Also run the compiled settle backend against the event-driven engine
    /// on every case ([`compiled_agrees`]): the fused micro-op plan must
    /// reproduce the worklist engine bit-for-bit. Off by default for the
    /// same reason as the lane leg; the fuzz smoke test switches it on via
    /// `ELASTIC_FUZZ_COMPILED`.
    pub compiled_differential: bool,
    /// Also exercise `speculate` with `allow_acyclic` on feed-forward muxes.
    ///
    /// On by default since the feed-forward soundness work landed: the
    /// in-order commit stage keeps shared results observable strictly in
    /// program order under any scheduler, and the retraction-domain
    /// analysis places isolation buffers exactly where a stallable fork
    /// could commit a phantom token. (Historically off: the blanket
    /// isolation bubble alone left generated feed-forward cases reordering
    /// results and livelocking under adversarial static schedulers aligned
    /// with sink back-pressure — see `crates/gen/corpus/0009…0011`.)
    pub include_acyclic_speculation: bool,
    /// Also run the auto-speculation design-space explorer
    /// ([`elastic_explore::explore`]) on every case and hold it to its three
    /// contracts: every front config re-applies cleanly on a fresh clone and
    /// passes the transform battery; the front is non-dominated and
    /// invariant under worker count and candidate enumeration order; and
    /// scores reproduce bit-for-bit from the seed. Off by default (the stage
    /// runs the search four times per case); the fuzz smoke test switches it
    /// on via `ELASTIC_FUZZ_EXPLORE`.
    pub explorer_soundness: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            cycles: 192,
            environment_variations: 2,
            structural_environment_variations: 1,
            // The catalogue emits at most 7 structural entries (three
            // channel insertions, split_empty_buffer, make_zero_backward,
            // two retimings) in a fixed order; the cap must not silently
            // truncate the tail or the retime transforms would never be
            // fuzzed on buffer-bearing netlists.
            max_structural_transforms: 8,
            schedulers: vec![
                SchedulerKind::Static(0),
                SchedulerKind::Static(1),
                SchedulerKind::LastTaken,
                SchedulerKind::TwoBit,
            ],
            max_commit_depth: 4,
            case_deadline: Duration::from_secs(30),
            lane_differential: false,
            compiled_differential: false,
            include_acyclic_speculation: true,
            explorer_soundness: false,
        }
    }
}

impl HarnessOptions {
    fn battery(&self) -> BatteryOptions {
        BatteryOptions {
            cycles: self.cycles,
            liveness: LivenessOptions {
                cycles: self.cycles,
                progress_window: 96,
                leads_to_horizon: 96,
            },
            check_protocol: true,
        }
    }

    fn liveness(&self) -> LivenessOptions {
        self.battery().liveness
    }

    /// The (deliberately small) explorer configuration of the
    /// `explorer_soundness` stage. `verify` stays off inside the search
    /// because the stage re-applies every front config itself and runs the
    /// battery on the fresh clone — that checks the *returned configuration*
    /// is self-contained, not just the netlist the search happened to hold —
    /// and because the three determinism re-runs would otherwise pay for the
    /// battery four times over.
    fn explorer(&self, seed: u64) -> ExploreOptions {
        ExploreOptions {
            depths: vec![1, 2],
            schedulers: vec![
                SchedulerKind::Static(0),
                SchedulerKind::LastTaken,
                SchedulerKind::Confidence { max_confidence: 2 },
            ],
            cycles: self.cycles,
            short_cycles: (self.cycles / 3).max(16),
            environments: 2,
            seed,
            verify: false,
            include_acyclic: self.include_acyclic_speculation,
            ..ExploreOptions::default()
        }
    }
}

/// A passed case: what was checked.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// The case seed.
    pub seed: u64,
    /// Names of the transformations that were applied and verified.
    pub transforms: Vec<String>,
    /// Coverage notes accumulated across all checks (vacuous checks,
    /// transforms skipped because their preconditions did not hold, …).
    pub notes: Vec<String>,
}

/// A failed case: which stage failed, on which netlist.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The case seed (drives the rng-dependent harness decisions on replay).
    pub seed: u64,
    /// The failing stage.
    pub stage: &'static str,
    /// Name of the offending transformation, for transform-stage failures.
    pub transform: Option<String>,
    /// Human-readable description of the violation.
    pub details: String,
    /// The (untransformed) netlist exhibiting the failure.
    pub netlist: Netlist,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {:#018x}, stage `{}`", self.seed, self.stage)?;
        if let Some(transform) = &self.transform {
            write!(f, ", transform `{transform}`")?;
        }
        write!(f, ": {}", self.details)
    }
}

/// A shrunk, serializable reproducer.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The minimized netlist.
    pub netlist: Netlist,
    /// Runnable Rust fragment rebuilding [`Reproducer::netlist`].
    pub snippet: String,
    /// The failure the reproducer still exhibits.
    pub stage: &'static str,
}

/// Runs the event-driven engine against the full-sweep oracle.
///
/// # Errors
///
/// Returns a description of the first observed divergence (or simulation
/// error).
pub fn engines_agree(netlist: &Netlist, cycles: u64) -> Result<(), String> {
    strategies_agree(netlist, cycles, SettleStrategy::FullSweep, "worklist", "full-sweep")
}

/// Runs the event-driven engine against the compiled settle backend
/// ([`SettleStrategy::Compiled`]): the fused micro-op plan must reproduce
/// the worklist engine's trace and report bit-for-bit — including on
/// netlists with lazy forks, where the compiled strategy transparently
/// falls back to the event-driven settle.
///
/// # Errors
///
/// Returns a description of the first observed divergence (or simulation
/// error).
pub fn compiled_agrees(netlist: &Netlist, cycles: u64) -> Result<(), String> {
    strategies_agree(netlist, cycles, SettleStrategy::Compiled, "worklist", "compiled")
}

fn strategies_agree(
    netlist: &Netlist,
    cycles: u64,
    candidate: SettleStrategy,
    reference_name: &str,
    candidate_name: &str,
) -> Result<(), String> {
    let run = |strategy: SettleStrategy| {
        let config = SimConfig { settle: strategy, ..SimConfig::default() };
        let mut sim = Simulation::new(netlist, &config)
            .map_err(|error| format!("{strategy:?} build failed: {error}"))?;
        let report =
            sim.run(cycles).map_err(|error| format!("{strategy:?} run failed: {error}"))?;
        Ok::<_, String>((sim, report))
    };
    let (event_sim, event_report) = run(SettleStrategy::EventDriven)?;
    let (sweep_sim, sweep_report) = run(candidate)?;

    if event_sim.trace() != sweep_sim.trace() {
        let divergence = (0..event_sim.trace().len())
            .find(|&cycle| {
                let event: Option<Vec<_>> = event_sim.trace().states_at(cycle).map(|s| s.collect());
                let sweep: Option<Vec<_>> = sweep_sim.trace().states_at(cycle).map(|s| s.collect());
                event != sweep
            })
            .unwrap_or(0);
        return Err(format!(
            "{reference_name} and {candidate_name} traces diverge at cycle {divergence} of \
             {cycles}"
        ));
    }
    if event_report.sink_streams != sweep_report.sink_streams {
        return Err(format!(
            "sink transfer streams differ between the {reference_name} and {candidate_name} \
             engines"
        ));
    }
    if event_report.source_kills != sweep_report.source_kills {
        return Err(format!(
            "source kill counts differ between the {reference_name} and {candidate_name} engines"
        ));
    }
    if event_report.node_stats != sweep_report.node_stats {
        return Err(format!(
            "per-node statistics differ between the {reference_name} and {candidate_name} engines"
        ));
    }
    if event_report.shared_stats != sweep_report.shared_stats {
        return Err(format!(
            "shared-module statistics differ between the {reference_name} and {candidate_name} \
             engines"
        ));
    }
    if event_report.commit_stats != sweep_report.commit_stats {
        return Err(format!(
            "commit-stage lane statistics differ between the {reference_name} and \
             {candidate_name} engines"
        ));
    }
    Ok(())
}

/// Runs the scalar event-driven engine against the 64-lane bit-parallel
/// engine in broadcast mode: every lane sees the same environment, so all
/// 64 lanes must reproduce the scalar trace and report bit-for-bit — the
/// lane-0 identity contract of [`elastic_sim::lanes`], checked here on
/// arbitrary generated structures instead of the hand-built paper designs.
///
/// # Errors
///
/// Returns a description of the first observed divergence (or simulation
/// error).
pub fn lanes_agree(netlist: &Netlist, cycles: u64) -> Result<(), String> {
    let mut scalar = Simulation::new(netlist, &SimConfig::default())
        .map_err(|error| format!("scalar build failed: {error}"))?;
    let scalar_report =
        scalar.run(cycles).map_err(|error| format!("scalar run failed: {error}"))?;

    let lane_config = LaneConfig { track_divergence: true, ..LaneConfig::default() };
    let mut lanes = LaneSimulation::new(netlist, &lane_config)
        .map_err(|error| format!("lane build failed: {error}"))?;
    lanes.run(cycles).map_err(|error| format!("lane run failed: {error}"))?;

    let divergent = lanes.divergent_lanes();
    if divergent != 0 {
        return Err(format!("broadcast lanes diverged from lane 0 (lane mask {divergent:#018x})"));
    }
    if lanes.trace(0) != scalar.trace() {
        let divergence = (0..scalar.trace().len())
            .find(|&cycle| {
                let lane: Option<Vec<_>> = lanes.trace(0).states_at(cycle).map(|s| s.collect());
                let reference: Option<Vec<_>> =
                    scalar.trace().states_at(cycle).map(|s| s.collect());
                lane != reference
            })
            .unwrap_or(0);
        return Err(format!(
            "lane-0 trace diverges from the scalar engine at cycle {divergence} of {cycles}"
        ));
    }
    let lane_report = lanes.report(0);
    if lane_report.sink_streams != scalar_report.sink_streams {
        return Err("lane-0 sink transfer streams differ from the scalar engine".into());
    }
    if lane_report.source_kills != scalar_report.source_kills {
        return Err("lane-0 source kill counts differ from the scalar engine".into());
    }
    if lane_report.node_stats != scalar_report.node_stats {
        return Err("lane-0 per-node statistics differ from the scalar engine".into());
    }
    if lane_report.shared_stats != scalar_report.shared_stats {
        return Err("lane-0 shared-module statistics differ from the scalar engine".into());
    }
    if lane_report.commit_stats != scalar_report.commit_stats {
        return Err("lane-0 commit-stage statistics differ from the scalar engine".into());
    }
    Ok(())
}

/// The kind-and-site name of one transformation attempt, e.g.
/// `"speculate(lmux)"`. The kind prefix (up to the parenthesis) is what
/// failure replay matches on, because sites shift while shrinking.
fn transform_kind(name: &str) -> &str {
    name.split('(').next().unwrap_or(name)
}

/// A boxed transformation application, named for failure reports.
type TransformFn = Box<dyn Fn(&mut Netlist) -> Result<(), CoreError>>;

struct TransformCase {
    name: String,
    apply: TransformFn,
}

/// Builds the transformation catalogue for one netlist, deterministically
/// from the case seed. Sites are chosen by the rng; transformations whose
/// preconditions fail at apply time are skipped with a note.
fn transform_catalogue(
    netlist: &Netlist,
    rng: &mut GenRng,
    options: &HarnessOptions,
) -> Vec<TransformCase> {
    let mut catalogue: Vec<TransformCase> = Vec::new();

    // Speculation on every mux that sits on a select cycle; `allow_acyclic`
    // on feed-forward muxes whose shape supports it (the precondition check
    // inside `speculate` rejects the rest — those become skip notes).
    for node in netlist.live_nodes() {
        let NodeKind::Mux(spec) = &node.kind else { continue };
        if spec.early_eval {
            continue;
        }
        let mux = node.id;
        let on_cycle = find_select_cycles(netlist, mux).map(|c| !c.is_empty()).unwrap_or(false);
        if !on_cycle && !options.include_acyclic_speculation {
            continue;
        }
        let scheduler = options
            .schedulers
            .get(rng.below(options.schedulers.len().max(1) as u64) as usize)
            .cloned()
            .unwrap_or_default();
        let with_recovery = rng.chance(0.5);
        let commit_depth = rng.range(1, u64::from(options.max_commit_depth.max(1))) as u32;
        let speculate_options = SpeculateOptions {
            scheduler,
            recovery_buffer: with_recovery.then(|| BufferSpec::zero_backward(0)),
            starvation_limit: Some(8),
            allow_acyclic: !on_cycle,
            commit_depth,
            ..SpeculateOptions::default()
        };
        // The depth only materialises on feed-forward muxes (select loops
        // skip the commit stage), but drawing it unconditionally keeps the
        // per-seed rng stream independent of the cycle classification.
        let label = if on_cycle { "speculate" } else { "speculate_acyclic" };
        catalogue.push(TransformCase {
            name: if on_cycle {
                format!("{label}({})", node.name)
            } else {
                format!("{label}({},d{commit_depth})", node.name)
            },
            apply: Box::new(move |n: &mut Netlist| {
                speculate(n, mux, &speculate_options).map(|_| ())
            }),
        });
    }

    // Structural transforms on rng-chosen sites.
    let channels: Vec<_> = netlist.live_channels().map(|c| (c.id, c.name.clone())).collect();
    let empty_standard_buffers: Vec<NodeId> = netlist
        .live_nodes()
        .filter(|n| {
            matches!(&n.kind, NodeKind::Buffer(spec)
                if spec.init_tokens == 0 && spec.backward_latency >= 1)
        })
        .map(|n| n.id)
        .collect();
    let zeroable_buffers: Vec<NodeId> = netlist
        .live_nodes()
        .filter(|n| {
            // `make_zero_backward` keeps the token count but drops the init
            // value, so only buffers whose initial data is 0 stay equivalent.
            matches!(&n.kind, NodeKind::Buffer(spec)
                if (0..=1).contains(&spec.init_tokens) && spec.init_value == 0)
        })
        .map(|n| n.id)
        .collect();
    // Retiming accepts both function blocks and muxes; include both so the
    // mux arms of the retime side conditions stay fuzzed.
    let retimable_blocks: Vec<NodeId> = netlist
        .live_nodes()
        .filter(|n| matches!(n.kind, NodeKind::Function(_) | NodeKind::Mux(_)))
        .map(|n| n.id)
        .collect();

    let mut structural: Vec<TransformCase> = Vec::new();
    if !channels.is_empty() {
        for _ in 0..2 {
            let (channel, name) = rng.pick(&channels).clone();
            structural.push(TransformCase {
                name: format!("insert_bubble({name})"),
                apply: Box::new(move |n: &mut Netlist| insert_bubble(n, channel).map(|_| ())),
            });
        }
        let (channel, name) = rng.pick(&channels).clone();
        structural.push(TransformCase {
            name: format!("insert_zero_backward({name})"),
            apply: Box::new(move |n: &mut Netlist| {
                insert_buffer_on_channel(n, channel, BufferSpec::zero_backward(0)).map(|_| ())
            }),
        });
    }
    if !empty_standard_buffers.is_empty() {
        let buffer = *rng.pick(&empty_standard_buffers);
        structural.push(TransformCase {
            name: format!("split_empty_buffer({buffer})"),
            apply: Box::new(move |n: &mut Netlist| split_empty_buffer(n, buffer).map(|_| ())),
        });
    }
    if !zeroable_buffers.is_empty() {
        let buffer = *rng.pick(&zeroable_buffers);
        structural.push(TransformCase {
            name: format!("make_zero_backward({buffer})"),
            apply: Box::new(move |n: &mut Netlist| make_zero_backward(n, buffer).map(|_| ())),
        });
    }
    if !retimable_blocks.is_empty() {
        let block = *rng.pick(&retimable_blocks);
        structural.push(TransformCase {
            name: format!("retime_backward({block})"),
            apply: Box::new(move |n: &mut Netlist| retime_backward(n, block).map(|_| ())),
        });
        let block = *rng.pick(&retimable_blocks);
        structural.push(TransformCase {
            name: format!("retime_forward({block})"),
            apply: Box::new(move |n: &mut Netlist| retime_forward(n, block).map(|_| ())),
        });
    }
    structural.truncate(options.max_structural_transforms);
    catalogue.extend(structural);
    catalogue
}

/// Environment variations for the injection sweep, derived from the
/// netlist's environment nodes and the case rng. Every variation overrides
/// *all* sources and sinks (overrides persist across resets, so partial
/// variations would leak into each other).
///
/// Variations respect each environment's **declared contract**: a sink
/// whose specification promises never to stall keeps that promise, and a
/// source that promises a token every cycle keeps offering. The contracts
/// are load-bearing — the retraction-domain analysis classifies fork
/// stallability from them when placing isolation buffers (Figure 7(b)'s
/// cone is only non-stallable because its observer never back-pressures),
/// so an injection that broke a declared contract would be testing a
/// different design, not a different environment.
fn environment_variations(
    netlist: &Netlist,
    rng: &mut GenRng,
    count: usize,
) -> Vec<EnvironmentOverride> {
    let sources: Vec<(String, bool)> = netlist
        .live_nodes()
        .filter_map(|n| match &n.kind {
            NodeKind::Source(spec) => {
                Some((n.name.clone(), matches!(spec.pattern, SourcePattern::Always)))
            }
            _ => None,
        })
        .collect();
    let sinks: Vec<(String, bool)> = netlist
        .live_nodes()
        .filter_map(|n| match &n.kind {
            NodeKind::Sink(spec) => Some((
                n.name.clone(),
                // Semantic contract, matching the retraction-domain
                // analysis: a List of all-false or probability-0 Random
                // never stalls even though it is not spelled `Never`.
                !elastic_core::transform::backpressure_may_stall(&spec.backpressure),
            )),
            _ => None,
        })
        .collect();
    (0..count)
        .map(|index| EnvironmentOverride {
            label: format!("variation {index}"),
            sources: sources
                .iter()
                .map(|(name, always)| {
                    let pattern = match rng.below(3) {
                        _ if *always => SourcePattern::Always,
                        0 => SourcePattern::Always,
                        1 => SourcePattern::Every(rng.range(2, 3) as u32),
                        _ => SourcePattern::List(vec![true, rng.chance(0.5), true]),
                    };
                    (name.clone(), pattern)
                })
                .collect(),
            sinks: sinks
                .iter()
                .map(|(name, never_stalls)| {
                    let pattern = match rng.below(3) {
                        _ if *never_stalls => BackpressurePattern::Never,
                        0 => BackpressurePattern::Never,
                        1 => BackpressurePattern::Every(rng.range(2, 4) as u32),
                        _ => BackpressurePattern::List(vec![rng.chance(0.5), false]),
                    };
                    (name.clone(), pattern)
                })
                .collect(),
        })
        .collect()
}

/// Runs the full gauntlet on one netlist.
///
/// `seed` drives every rng-dependent harness decision (transform sites,
/// injected environments), so a failure replays deterministically on the
/// same netlist — and on its shrunken descendants.
///
/// # Errors
///
/// Returns the first [`CaseFailure`] encountered. (The error variant
/// deliberately carries the whole offending netlist — it is the input to
/// shrinking — and failures are cold, so the large-`Err` lint is waived.)
#[allow(clippy::result_large_err)]
pub fn run_netlist(
    netlist: &Netlist,
    seed: u64,
    options: &HarnessOptions,
) -> Result<CaseReport, CaseFailure> {
    let fail = |stage: &'static str, transform: Option<String>, details: String| CaseFailure {
        seed,
        stage,
        transform,
        details,
        netlist: netlist.clone(),
    };
    let started = Instant::now();
    let watchdog = |after: &'static str| {
        let elapsed = started.elapsed();
        if elapsed > options.case_deadline {
            Err(fail(
                "watchdog",
                None,
                format!(
                    "case exceeded its {:?} wall-clock deadline after the `{after}` stage \
                     ({elapsed:?} elapsed)",
                    options.case_deadline
                ),
            ))
        } else {
            Ok(())
        }
    };

    if let Err(error) = netlist.validate() {
        return Err(fail("validate", None, error.to_string()));
    }

    engines_agree(netlist, options.cycles)
        .map_err(|details| fail("engine-differential", None, details))?;
    watchdog("engine-differential")?;

    if options.lane_differential {
        lanes_agree(netlist, options.cycles)
            .map_err(|details| fail("lane-differential", None, details))?;
        watchdog("lane-differential")?;
    }

    if options.compiled_differential {
        compiled_agrees(netlist, options.cycles)
            .map_err(|details| fail("compiled-differential", None, details))?;
        watchdog("compiled-differential")?;
    }

    let mut report = CaseReport { seed, ..CaseReport::default() };

    // Base-design properties.
    let liveness = options.liveness();
    match check_deadlock_freedom(netlist, &liveness) {
        Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
        Ok(verdict) => return Err(fail("base-liveness", None, verdict.to_string())),
        Err(error) => return Err(fail("base-liveness", None, error.to_string())),
    }
    let has_shared = netlist.live_nodes().any(|n| matches!(n.kind, NodeKind::Shared(_)));
    if has_shared {
        match check_leads_to(netlist, &liveness) {
            Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
            Ok(verdict) => return Err(fail("base-liveness", None, verdict.to_string())),
            Err(error) => return Err(fail("base-liveness", None, error.to_string())),
        }
        match check_shared_module_conservation(netlist, options.cycles) {
            Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
            Ok(verdict) => return Err(fail("base-conservation", None, verdict.to_string())),
            Err(error) => return Err(fail("base-conservation", None, error.to_string())),
        }
    }
    match check_netlist_protocol(netlist, options.cycles, &ProtocolOptions::default()) {
        Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
        Ok(verdict) => return Err(fail("base-protocol", None, verdict.to_string())),
        Err(error) => return Err(fail("base-protocol", None, error.to_string())),
    }

    watchdog("base-properties")?;

    // Transformations.
    let mut rng = GenRng::new(seed ^ 0x7A61_D5A2_27F3_90C1);
    let battery = options.battery();
    for case in transform_catalogue(netlist, &mut rng, options) {
        watchdog("transform")?;
        let mut transformed = netlist.clone();
        match (case.apply)(&mut transformed) {
            Ok(()) => {}
            Err(CoreError::Precondition { reason, .. }) => {
                report.notes.push(format!("skipped {}: {reason}", case.name));
                continue;
            }
            Err(error) => {
                return Err(fail("transform-apply", Some(case.name), error.to_string()));
            }
        }
        if let Err(error) = transformed.validate() {
            return Err(fail(
                "transform-validate",
                Some(case.name),
                format!("transformed netlist no longer validates: {error}"),
            ));
        }

        match check_transform_battery(netlist, &transformed, &battery) {
            Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
            Ok(verdict) => {
                return Err(fail("transform-equivalence", Some(case.name), verdict.to_string()))
            }
            Err(error) => {
                return Err(fail("transform-simulation", Some(case.name), error.to_string()))
            }
        }

        // Environment injection for structural transforms: equivalence must
        // survive perturbed offer/back-pressure patterns, not just the
        // generated design's own environments (previously speculation-only —
        // the ROADMAP fuzz-scaling item).
        if !transform_kind(&case.name).starts_with("speculate")
            && options.structural_environment_variations > 0
        {
            let variations = environment_variations(
                netlist,
                &mut rng,
                options.structural_environment_variations,
            );
            match check_equivalence_under_environments(
                netlist,
                &transformed,
                &variations,
                options.cycles,
            ) {
                Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
                Ok(verdict) => {
                    return Err(fail(
                        "transform-environment-sweep",
                        Some(case.name),
                        verdict.to_string(),
                    ))
                }
                Err(error) => {
                    return Err(fail("transform-simulation", Some(case.name), error.to_string()))
                }
            }
        }

        // Injection sweeps for speculated designs.
        if transform_kind(&case.name).starts_with("speculate") {
            match check_equivalence_across_schedulers(
                netlist,
                &transformed,
                &options.schedulers,
                options.cycles,
            ) {
                Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
                Ok(verdict) => {
                    return Err(fail(
                        "transform-scheduler-sweep",
                        Some(case.name),
                        verdict.to_string(),
                    ))
                }
                Err(error) => {
                    return Err(fail("transform-simulation", Some(case.name), error.to_string()))
                }
            }
            let variations =
                environment_variations(netlist, &mut rng, options.environment_variations);
            match check_equivalence_under_environments(
                netlist,
                &transformed,
                &variations,
                options.cycles,
            ) {
                Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
                Ok(verdict) => {
                    return Err(fail(
                        "transform-environment-sweep",
                        Some(case.name),
                        verdict.to_string(),
                    ))
                }
                Err(error) => {
                    return Err(fail("transform-simulation", Some(case.name), error.to_string()))
                }
            }
        }
        report.transforms.push(case.name);
    }

    // Explorer soundness (the `ELASTIC_FUZZ_EXPLORE` leg): run the
    // design-space explorer on the generated netlist and hold it to its
    // contracts on arbitrary structures, not just the hand-built scenarios.
    if options.explorer_soundness {
        watchdog("transforms")?;
        let explorer = options.explorer(seed);
        let search = match explore(netlist, &explorer) {
            Ok(search) => search,
            Err(error) => return Err(fail("explorer-search", None, error.to_string())),
        };
        watchdog("explorer-search")?;

        // No silent truncation: the report must account for the whole grid.
        if search.accounted() != search.candidates_enumerated {
            return Err(fail(
                "explorer-accounting",
                None,
                format!(
                    "{} candidates enumerated but {} accounted for (front {}, dominated {}, \
                     skipped {}, pruned {})",
                    search.candidates_enumerated,
                    search.accounted(),
                    search.front.len(),
                    search.dominated.len(),
                    search.skipped.len(),
                    search.pruned.total()
                ),
            ));
        }

        // (b) the front is actually non-dominated: no scored point — front
        // or dominated — beats a front member.
        for point in &search.front {
            if let Some(beater) = search
                .front
                .iter()
                .chain(search.dominated.iter())
                .find(|other| dominates(other, point))
            {
                return Err(fail(
                    "explorer-front-dominated",
                    Some(point.config.label()),
                    format!("front member is dominated by {}", beater.config.label()),
                ));
            }
        }

        // (a) every returned config re-applies cleanly on a fresh clone and
        // the re-applied design passes the full transform battery.
        for point in &search.front {
            let mut transformed = netlist.clone();
            if let Err(error) = point.config.apply(&mut transformed) {
                return Err(fail(
                    "explorer-reapply",
                    Some(point.config.label()),
                    format!("front config did not re-apply: {error}"),
                ));
            }
            if let Err(error) = transformed.validate() {
                return Err(fail(
                    "explorer-reapply",
                    Some(point.config.label()),
                    format!("re-applied netlist no longer validates: {error}"),
                ));
            }
            match check_transform_battery(netlist, &transformed, &battery) {
                Ok(verdict) if verdict.passed() => report.notes.extend(verdict.notes),
                Ok(verdict) => {
                    return Err(fail(
                        "explorer-front-battery",
                        Some(point.config.label()),
                        verdict.to_string(),
                    ))
                }
                Err(error) => {
                    return Err(fail(
                        "explorer-front-battery",
                        Some(point.config.label()),
                        error.to_string(),
                    ))
                }
            }
            watchdog("explorer-front-battery")?;
        }

        // (b) continued: the report is invariant under worker count and
        // candidate enumeration order.
        let single_threaded =
            match explore(netlist, &ExploreOptions { sequential: true, ..explorer.clone() }) {
                Ok(search) => search,
                Err(error) => return Err(fail("explorer-search", None, error.to_string())),
            };
        if single_threaded != search {
            return Err(fail(
                "explorer-determinism",
                None,
                "the single-threaded search disagrees with the parallel one".to_string(),
            ));
        }
        watchdog("explorer-determinism")?;
        let shuffled = match explore(
            netlist,
            &ExploreOptions { shuffle_seed: Some(seed ^ 0x0EDE_5EED), ..explorer.clone() },
        ) {
            Ok(search) => search,
            Err(error) => return Err(fail("explorer-search", None, error.to_string())),
        };
        if shuffled != search {
            return Err(fail(
                "explorer-determinism",
                None,
                "shuffling the candidate enumeration order changed the report".to_string(),
            ));
        }
        watchdog("explorer-determinism")?;

        // (c) scores are reproducible bit-for-bit from the seed (PartialEq
        // on the report compares every f64 exactly).
        let replay = match explore(netlist, &explorer) {
            Ok(search) => search,
            Err(error) => return Err(fail("explorer-search", None, error.to_string())),
        };
        if replay != search {
            return Err(fail(
                "explorer-reproducibility",
                None,
                "two identical searches disagree: scores are not a pure function of the seed"
                    .to_string(),
            ));
        }
        watchdog("explorer-reproducibility")?;

        // Rejected candidates surface as skips, like any other transform
        // the harness could not run; the search summary rides the notes.
        for skip in &search.skipped {
            report.notes.push(format!("explorer skipped {}: {}", skip.config.label(), skip.reason));
        }
        report.notes.extend(search.notes.iter().map(|note| format!("explorer: {note}")));
        report.transforms.push(format!("explore ({} on the front)", search.front.len()));
    }

    Ok(report)
}

/// Generates the netlist for `seed` and runs the gauntlet on it.
///
/// # Errors
///
/// Returns the first [`CaseFailure`] encountered (see [`run_netlist`] on
/// why the error variant is large by design).
#[allow(clippy::result_large_err)]
pub fn run_case(
    seed: u64,
    config: &GenConfig,
    options: &HarnessOptions,
) -> Result<CaseReport, CaseFailure> {
    let generated: GeneratedNetlist = generate(seed, config);
    run_netlist(&generated.netlist, seed, options)
}

/// Shrinks a failing case to a minimal reproducer.
///
/// The predicate replays the harness on each shrink candidate and requires a
/// failure at the same stage (and, for transform failures, the same
/// transformation *kind* — sites shift while the netlist shrinks).
pub fn shrink_failure(
    failure: &CaseFailure,
    options: &HarnessOptions,
    shrink_options: &ShrinkOptions,
) -> Reproducer {
    let expected_kind = failure.transform.as_deref().map(transform_kind).map(str::to_owned);
    let predicate = |candidate: &Netlist| match run_netlist(candidate, failure.seed, options) {
        Ok(_) => false,
        Err(replayed) => {
            replayed.stage == failure.stage
                && match (&expected_kind, &replayed.transform) {
                    (None, _) => true,
                    (Some(kind), Some(name)) => transform_kind(name) == kind,
                    (Some(_), None) => false,
                }
        }
    };
    let netlist = shrink_netlist(&failure.netlist, predicate, shrink_options);
    let snippet = to_rust_snippet(&netlist);
    Reproducer { netlist, snippet, stage: failure.stage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GenConfig;

    #[test]
    fn a_spread_of_default_seeds_passes_the_gauntlet() {
        let config = GenConfig::default();
        let options = HarnessOptions::default();
        for seed in 0..6 {
            let report =
                run_case(seed, &config, &options).unwrap_or_else(|failure| panic!("{failure}"));
            assert_eq!(report.seed, seed);
        }
    }

    #[test]
    fn loop_seeds_exercise_the_speculation_path() {
        let config = GenConfig::loops();
        let options = HarnessOptions::default();
        let mut speculated = 0;
        for seed in 0..6 {
            let report =
                run_case(seed, &config, &options).unwrap_or_else(|failure| panic!("{failure}"));
            speculated +=
                report.transforms.iter().filter(|name| transform_kind(name) == "speculate").count();
        }
        assert!(speculated >= 4, "only {speculated} speculations across 6 loop seeds");
    }

    #[test]
    fn the_watchdog_fails_a_case_that_overruns_its_deadline() {
        let options = HarnessOptions { case_deadline: Duration::ZERO, ..HarnessOptions::default() };
        let failure = run_case(0, &GenConfig::default(), &options)
            .expect_err("a zero deadline trips on the first stage boundary");
        assert_eq!(failure.stage, "watchdog");
        assert!(failure.details.contains("wall-clock deadline"), "{}", failure.details);
    }

    #[test]
    fn engine_differential_is_part_of_every_case() {
        // A direct call on a generated netlist, for the error-path shape.
        let generated = generate(3, &GenConfig::default());
        engines_agree(&generated.netlist, 100).unwrap();
    }

    #[test]
    fn the_lane_differential_holds_on_generated_netlists() {
        // Direct lane-vs-scalar checks on a spread of generated structures,
        // plus a gauntlet run with the lane differential armed — the same
        // path the ELASTIC_FUZZ_LANES smoke leg takes.
        for seed in 0..4 {
            let generated = generate(seed, &GenConfig::default());
            lanes_agree(&generated.netlist, 100)
                .unwrap_or_else(|details| panic!("seed {seed}: {details}"));
        }
        let options = HarnessOptions { lane_differential: true, ..HarnessOptions::default() };
        run_case(1, &GenConfig::loops(), &options).unwrap_or_else(|failure| panic!("{failure}"));
    }

    #[test]
    fn the_compiled_differential_holds_on_generated_netlists() {
        // Direct compiled-vs-worklist checks on a spread of generated
        // structures, plus a gauntlet run with the compiled differential
        // armed — the same path the ELASTIC_FUZZ_COMPILED smoke leg takes.
        for seed in 0..4 {
            let generated = generate(seed, &GenConfig::default());
            compiled_agrees(&generated.netlist, 100)
                .unwrap_or_else(|details| panic!("seed {seed}: {details}"));
        }
        let options = HarnessOptions { compiled_differential: true, ..HarnessOptions::default() };
        run_case(1, &GenConfig::loops(), &options).unwrap_or_else(|failure| panic!("{failure}"));
    }

    #[test]
    fn failures_replay_deterministically() {
        // Break a transform by hand: an "equivalence" claim that inserts an
        // increment is caught, and the failure replays on the same netlist.
        let generated = generate(11, &GenConfig::small());
        let failure = CaseFailure {
            seed: 11,
            stage: "transform-equivalence",
            transform: Some("broken(x)".into()),
            details: String::new(),
            netlist: generated.netlist.clone(),
        };
        // Predicate parity: shrink with a stage that never reproduces returns
        // the netlist unchanged (the budget burns, nothing regresses).
        let reproducer =
            shrink_failure(&failure, &HarnessOptions::default(), &ShrinkOptions { max_checks: 8 });
        assert_eq!(reproducer.netlist, generated.netlist);
        assert!(reproducer.snippet.contains("Netlist::new"));
    }
}
