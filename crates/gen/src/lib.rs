//! # elastic-gen
//!
//! Randomized elastic-netlist generation and differential fuzzing for the
//! *Speculation in Elastic Systems* reproduction.
//!
//! The hand-built paper scenarios (the Figure-1 variants, Figure 7(b),
//! Table 1) pin the transform pipeline to the circuits the paper drew; this
//! crate un-pins it. A seeded, deterministic generator ([`generate()`]) emits
//! *valid-by-construction* elastic netlists across a configurable space —
//! linear pipelines, fork/join DAGs, mux/branch feedback loops with select
//! cycles eligible for `speculate`, variable-latency and shared units, mixed
//! channel widths, randomized source/sink patterns — and a differential
//! harness ([`harness::run_case`]) drives every generated netlist through:
//!
//! * the worklist engine vs. the `FullSweep` oracle, cycle for cycle;
//! * every applicable transformation, checked for behavioral equivalence,
//!   liveness and token conservation against the untransformed design via
//!   `elastic-verify`'s battery (plus scheduler- and environment-injection
//!   sweeps for speculated designs);
//! * on failure, a shrinker ([`shrink::shrink_netlist`]) that minimizes the
//!   netlist by cone pruning, node bypass/cauterization and pattern
//!   bisection, serializing the result as a runnable Rust snippet
//!   ([`snippet::to_rust_snippet`]).
//!
//! The negative half lives in [`mutate`]: single structural defects applied
//! to generated netlists, asserted to be rejected by `validate()` with the
//! right complaint. [`proptest_bridge::any_netlist`] exposes the generator
//! as a `proptest` strategy; `crates/gen/corpus/` holds regression seeds
//! replayed as unit tests.
//!
//! ```
//! use elastic_gen::{generate, GenConfig};
//!
//! let generated = generate(42, &GenConfig::default());
//! assert!(generated.netlist.validate().is_ok());
//! assert!(generated.netlist.node_count() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod generate;
pub mod harness;
pub mod mutate;
pub mod proptest_bridge;
pub mod rng;
pub mod shrink;
pub mod snippet;

pub use campaign::{
    run_fault_campaign, run_stall_storm_recovery, CampaignFailure, CampaignOptions, CampaignReport,
    FaultOutcome, InjectionRecord,
};
pub use generate::{generate, GenConfig, GenProfile, GeneratedNetlist};
pub use harness::{
    compiled_agrees, engines_agree, lanes_agree, run_case, run_netlist, shrink_failure,
    CaseFailure, CaseReport, HarnessOptions, Reproducer,
};
pub use mutate::{apply_mutation, Mutation};
pub use rng::GenRng;
pub use shrink::{shrink_netlist, ShrinkOptions};
pub use snippet::to_rust_snippet;
