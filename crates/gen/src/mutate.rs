//! Invalidity mutations: controlled ways to break a valid netlist.
//!
//! The positive half of the fuzzing story generates valid-by-construction
//! netlists; this module is the negative half. Each [`Mutation`] applies one
//! structural defect that `elastic_core::validate` is documented to reject —
//! the negative-validation tests then assert that every mutation of every
//! generated netlist is rejected *with the right complaint*, so validation
//! coverage grows with the generator instead of being pinned to hand-built
//! bad examples.

use elastic_core::kind::{BackpressurePattern, NodeKind, SourcePattern};
use elastic_core::{ChannelId, Netlist, NodeId, Op};

use crate::rng::GenRng;

/// One way to make a valid netlist invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove a channel, leaving both endpoint ports dangling.
    DropChannel,
    /// Set a channel's width to 0 (unsupported).
    ZeroWidthChannel,
    /// Set a channel's width above 64 bits (unsupported).
    OverWideChannel,
    /// Declare a port count that contradicts the function's operation arity.
    FunctionArityMismatch,
    /// Reduce a multiplexor to a single data input.
    DegenerateMux,
    /// Reduce a fork to a single branch.
    DegenerateFork,
    /// Shrink a buffer's capacity below `Lf + Lb`.
    UndersizedBuffer,
    /// Initialize a buffer with more tokens than it can hold.
    OverfilledBuffer,
    /// Give a stochastic source an out-of-range offer probability.
    BadSourceProbability,
    /// Give a stochastic sink an out-of-range stall probability.
    BadSinkProbability,
}

impl Mutation {
    /// Every mutation, for exhaustive sweeps.
    pub fn all() -> [Mutation; 10] {
        [
            Mutation::DropChannel,
            Mutation::ZeroWidthChannel,
            Mutation::OverWideChannel,
            Mutation::FunctionArityMismatch,
            Mutation::DegenerateMux,
            Mutation::DegenerateFork,
            Mutation::UndersizedBuffer,
            Mutation::OverfilledBuffer,
            Mutation::BadSourceProbability,
            Mutation::BadSinkProbability,
        ]
    }

    /// The fragment `validate()`'s complaint must contain for this defect.
    pub fn expected_complaint(self) -> &'static str {
        match self {
            Mutation::DropChannel => "unconnected",
            Mutation::ZeroWidthChannel | Mutation::OverWideChannel => "unsupported width",
            Mutation::FunctionArityMismatch => "operand(s)",
            Mutation::DegenerateMux => "two data inputs",
            Mutation::DegenerateFork => "two branches",
            Mutation::UndersizedBuffer | Mutation::OverfilledBuffer => "capacity",
            Mutation::BadSourceProbability | Mutation::BadSinkProbability => "probability",
        }
    }
}

fn random_channel(netlist: &Netlist, rng: &mut GenRng) -> Option<ChannelId> {
    let channels: Vec<ChannelId> = netlist.live_channels().map(|c| c.id).collect();
    if channels.is_empty() {
        return None;
    }
    Some(*rng.pick(&channels))
}

fn random_node_of(
    netlist: &Netlist,
    rng: &mut GenRng,
    matches_kind: impl Fn(&NodeKind) -> bool,
) -> Option<NodeId> {
    let nodes: Vec<NodeId> =
        netlist.live_nodes().filter(|n| matches_kind(&n.kind)).map(|n| n.id).collect();
    if nodes.is_empty() {
        return None;
    }
    Some(*rng.pick(&nodes))
}

/// Applies `mutation` to a random applicable site of `netlist`.
///
/// Returns `false` (leaving the netlist untouched) when the netlist offers no
/// applicable site — e.g. [`Mutation::DegenerateMux`] on a mux-free design.
pub fn apply_mutation(netlist: &mut Netlist, mutation: Mutation, rng: &mut GenRng) -> bool {
    match mutation {
        Mutation::DropChannel => {
            let Some(channel) = random_channel(netlist, rng) else { return false };
            netlist.remove_channel(channel).is_ok()
        }
        Mutation::ZeroWidthChannel | Mutation::OverWideChannel => {
            let Some(channel) = random_channel(netlist, rng) else { return false };
            let width = if mutation == Mutation::ZeroWidthChannel { 0 } else { 65 };
            match netlist.channel_mut(channel) {
                Some(channel) => {
                    channel.width = width;
                    true
                }
                None => false,
            }
        }
        Mutation::FunctionArityMismatch => {
            let Some(node) = random_node_of(
                netlist,
                rng,
                |kind| matches!(kind, NodeKind::Function(spec) if spec.op.arity().is_some()),
            ) else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Function(spec) = &mut target.kind else { return false };
            // Swap in an op whose fixed arity contradicts the declared ports,
            // leaving the port count (and hence the connectivity) untouched.
            spec.op = if spec.inputs == 1 { Op::Sub } else { Op::Inc };
            true
        }
        Mutation::DegenerateMux => {
            let Some(node) = random_node_of(netlist, rng, |kind| matches!(kind, NodeKind::Mux(_)))
            else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Mux(spec) = &mut target.kind else { return false };
            spec.data_inputs = 1;
            true
        }
        Mutation::DegenerateFork => {
            let Some(node) = random_node_of(netlist, rng, |kind| matches!(kind, NodeKind::Fork(_)))
            else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Fork(spec) = &mut target.kind else { return false };
            spec.outputs = 1;
            true
        }
        Mutation::UndersizedBuffer => {
            let Some(node) =
                random_node_of(netlist, rng, |kind| matches!(kind, NodeKind::Buffer(_)))
            else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Buffer(spec) = &mut target.kind else { return false };
            spec.capacity = 0;
            true
        }
        Mutation::OverfilledBuffer => {
            let Some(node) =
                random_node_of(netlist, rng, |kind| matches!(kind, NodeKind::Buffer(_)))
            else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Buffer(spec) = &mut target.kind else { return false };
            spec.init_tokens = spec.capacity as i32 + 1;
            true
        }
        Mutation::BadSourceProbability => {
            let Some(node) =
                random_node_of(netlist, rng, |kind| matches!(kind, NodeKind::Source(_)))
            else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Source(spec) = &mut target.kind else { return false };
            spec.pattern = SourcePattern::Random { probability: 1.5, seed: 1 };
            true
        }
        Mutation::BadSinkProbability => {
            let Some(node) = random_node_of(netlist, rng, |kind| matches!(kind, NodeKind::Sink(_)))
            else {
                return false;
            };
            let Some(target) = netlist.node_mut(node) else { return false };
            let NodeKind::Sink(spec) = &mut target.kind else { return false };
            spec.backpressure = BackpressurePattern::Random { probability: -0.25, seed: 1 };
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};

    #[test]
    fn every_applicable_mutation_invalidates_a_generated_netlist() {
        let generated = generate(5, &GenConfig::loops());
        let mut rng = GenRng::new(99);
        let mut applied = 0;
        for mutation in Mutation::all() {
            let mut mutant = generated.netlist.clone();
            if !apply_mutation(&mut mutant, mutation, &mut rng) {
                continue;
            }
            applied += 1;
            let error =
                mutant.validate().expect_err(&format!("{mutation:?} must invalidate the netlist"));
            assert!(
                error.to_string().contains(mutation.expected_complaint()),
                "{mutation:?}: `{error}` does not mention `{}`",
                mutation.expected_complaint()
            );
        }
        assert!(applied >= 7, "only {applied} mutations were applicable");
    }

    #[test]
    fn inapplicable_mutations_leave_the_netlist_untouched() {
        // A plain source→sink pair has no mux, fork or buffer to mutate.
        let mut n = Netlist::new("plain");
        let src = n.add_source("src", elastic_core::SourceSpec::always());
        let sink = n.add_sink("sink", elastic_core::SinkSpec::always_ready());
        n.connect(elastic_core::Port::output(src, 0), elastic_core::Port::input(sink, 0), 8)
            .unwrap();
        let reference = n.clone();
        let mut rng = GenRng::new(1);
        for mutation in
            [Mutation::DegenerateMux, Mutation::DegenerateFork, Mutation::UndersizedBuffer]
        {
            assert!(!apply_mutation(&mut n, mutation, &mut rng));
            assert_eq!(n, reference);
        }
    }
}
