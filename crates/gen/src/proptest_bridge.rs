//! Bridge into the `proptest` property-testing harness.
//!
//! [`any_netlist`] exposes the generator as a `proptest` [`Strategy`], so
//! property tests can draw whole elastic netlists the same way they draw
//! integers:
//!
//! ```ignore
//! use elastic_gen::proptest_bridge::any_netlist;
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn engines_agree_on_any_netlist(generated in any_netlist()) {
//!         elastic_gen::harness::engines_agree(&generated.netlist, 100).unwrap();
//!     }
//! }
//! ```
//!
//! The strategy samples a fresh `u64` seed from the proptest RNG and runs the
//! deterministic generator on it, so a failing case's debug output (printed
//! by the `proptest!` macro) pins the exact netlist via
//! [`GenProfile::seed`](crate::generate::GenProfile::seed) — add the seed to
//! `crates/gen/corpus/` to make the regression permanent.

use proptest::{Strategy, TestRng};

use crate::generate::{generate, GenConfig, GeneratedNetlist};

/// A [`Strategy`] producing generated netlists.
#[derive(Debug, Clone)]
pub struct NetlistStrategy {
    config: GenConfig,
}

impl Strategy for NetlistStrategy {
    type Value = GeneratedNetlist;

    fn sample(&self, rng: &mut TestRng) -> GeneratedNetlist {
        generate(rng.next_u64(), &self.config)
    }
}

/// Netlists drawn from the default generation space.
pub fn any_netlist() -> NetlistStrategy {
    NetlistStrategy { config: GenConfig::default() }
}

/// Netlists drawn from an explicit generation space.
pub fn netlist_with(config: GenConfig) -> NetlistStrategy {
    NetlistStrategy { config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_strategy_samples_valid_netlists() {
        let strategy = any_netlist();
        let mut rng = TestRng::new(1234);
        for _ in 0..10 {
            let generated = Strategy::sample(&strategy, &mut rng);
            assert!(generated.netlist.validate().is_ok());
        }
    }

    #[test]
    fn sampling_is_deterministic_in_the_test_rng() {
        let strategy = netlist_with(GenConfig::loops());
        let a = Strategy::sample(&strategy, &mut TestRng::new(7));
        let b = Strategy::sample(&strategy, &mut TestRng::new(7));
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.profile.seed, b.profile.seed);
    }
}
