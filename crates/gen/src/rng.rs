//! The deterministic generator RNG.
//!
//! A splitmix64 stream: tiny, dependency-free and — crucially — *stable*.
//! Every generated netlist, every harness decision and every corpus entry is
//! identified by a single `u64` seed, so the stream implementation is part of
//! the reproducibility contract: changing it invalidates the corpus. Do not
//! "improve" the constants.

/// Deterministic splitmix64 generator driving all randomized decisions of
/// this crate.
#[derive(Debug, Clone)]
pub struct GenRng {
    state: u64,
}

impl GenRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        GenRng { state: seed ^ 0xA076_1D64_78BD_642F }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A derived, independent stream (used to give sub-generators their own
    /// seeds without entangling their consumption order).
    pub fn fork(&mut self) -> GenRng {
        GenRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = GenRng::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = GenRng::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = GenRng::new(43);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut rng = GenRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
            let value = rng.range(3, 9);
            assert!((3..=9).contains(&value));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = GenRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits} hits for p=0.3");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut rng = GenRng::new(5);
        let mut forked = rng.fork();
        let from_fork: Vec<u64> = (0..4).map(|_| forked.next_u64()).collect();
        let from_main: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_ne!(from_fork, from_main);
    }
}
