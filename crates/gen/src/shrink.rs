//! Greedy netlist shrinking: reduce a failing netlist to a minimal
//! reproducer while a caller-supplied predicate keeps failing.
//!
//! The shrinker knows nothing about *why* the netlist fails; the predicate
//! (typically "re-running the harness stage still reports a violation")
//! carries all the semantics. Reductions are structural and always produce
//! validating netlists:
//!
//! * **upstream pruning** — replace the entire producer cone of a channel by
//!   fresh always-offering sources (the big hammer: whole subgraphs vanish);
//! * **downstream pruning** — replace the entire consumer cone of a channel
//!   by fresh always-ready sinks;
//! * **bypass** — splice a 1-in/1-out node (buffer, unary function) out of
//!   its path;
//! * **cauterize** — delete one node, capping its severed channels with
//!   fresh environment nodes;
//! * **pair removal** — drop a source that feeds a sink directly when
//!   neither has any other connection;
//! * **pattern bisection** — simplify environment specifications (halve list
//!   patterns, collapse stochastic patterns to `Always`/`Never`, shorten
//!   data streams).
//!
//! Each accepted reduction must strictly decrease the size metric
//! `(nodes, channels, pattern complexity)`, so the loop terminates; the
//! predicate-evaluation budget bounds total work because every check usually
//! costs a handful of simulations.

use std::collections::BTreeSet;

use elastic_core::kind::{
    BackpressurePattern, DataStream, NodeKind, SinkSpec, SourcePattern, SourceSpec,
};
use elastic_core::{ChannelId, Netlist, NodeId, Port};

/// Options of [`shrink_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkOptions {
    /// Upper bound on predicate evaluations (each usually simulates).
    pub max_checks: usize,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { max_checks: 192 }
    }
}

/// `(nodes, channels, environment-pattern complexity)` — the strictly
/// decreasing metric of the shrink loop.
fn size_metric(netlist: &Netlist) -> (usize, usize, usize) {
    let mut pattern_complexity = 0usize;
    for node in netlist.live_nodes() {
        pattern_complexity += match &node.kind {
            NodeKind::Source(spec) => {
                let pattern = match &spec.pattern {
                    SourcePattern::Always => 0,
                    SourcePattern::Every(_) => 1,
                    SourcePattern::List(offers) => 1 + offers.len(),
                    SourcePattern::Random { .. } => 2,
                    _ => 1,
                };
                let data = match &spec.data {
                    DataStream::Counter => 0,
                    DataStream::Const(_) => 1,
                    DataStream::List(values) => 1 + values.len(),
                    DataStream::Random { .. } => 2,
                    _ => 1,
                };
                pattern + data
            }
            NodeKind::Sink(spec) => match &spec.backpressure {
                BackpressurePattern::Never => 0,
                BackpressurePattern::Every(_) => 1,
                BackpressurePattern::List(stalls) => 1 + stalls.len(),
                BackpressurePattern::Random { .. } => 2,
                _ => 1,
            },
            _ => 0,
        };
    }
    (netlist.node_count(), netlist.channel_count(), pattern_complexity)
}

/// Nodes from which `target` is reachable (inclusive).
fn upstream_closure(netlist: &Netlist, target: NodeId) -> BTreeSet<NodeId> {
    let mut closure = BTreeSet::new();
    let mut stack = vec![target];
    while let Some(node) = stack.pop() {
        if closure.insert(node) {
            stack.extend(netlist.predecessors(node));
        }
    }
    closure
}

/// Nodes reachable from `start` (inclusive).
fn downstream_closure(netlist: &Netlist, start: NodeId) -> BTreeSet<NodeId> {
    let mut closure = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(node) = stack.pop() {
        if closure.insert(node) {
            stack.extend(netlist.successors(node));
        }
    }
    closure
}

/// Deletes the node set `doomed`, removing internal channels and capping
/// boundary channels with fresh environment nodes. Returns `None` when the
/// surgery is impossible (it never should be) or removes everything.
fn delete_set(netlist: &Netlist, doomed: &BTreeSet<NodeId>) -> Option<Netlist> {
    if doomed.len() >= netlist.node_count() {
        return None;
    }
    let mut candidate = netlist.clone();
    let channels: Vec<(ChannelId, Port, Port)> =
        candidate.live_channels().map(|c| (c.id, c.from, c.to)).collect();
    for (id, from, to) in channels {
        match (doomed.contains(&from.node), doomed.contains(&to.node)) {
            (true, true) => {
                candidate.remove_channel(id).ok()?;
            }
            (true, false) => {
                let source = candidate.add_source("shrink_src", SourceSpec::always());
                candidate.set_channel_source(id, Port::output(source, 0)).ok()?;
            }
            (false, true) => {
                let sink = candidate.add_sink("shrink_sink", SinkSpec::always_ready());
                candidate.set_channel_target(id, Port::input(sink, 0)).ok()?;
            }
            (false, false) => {}
        }
    }
    for &node in doomed {
        candidate.remove_node(node).ok()?;
    }
    Some(candidate)
}

/// Splices a 1-in/1-out node out of its path.
fn bypass(netlist: &Netlist, node: NodeId) -> Option<Netlist> {
    let target = netlist.node(node)?;
    if target.input_count() != 1 || target.output_count() != 1 {
        return None;
    }
    let input = netlist.channel_into(Port::input(node, 0))?.id;
    let (output, consumer) = {
        let c = netlist.channel_from(Port::output(node, 0))?;
        (c.id, c.to)
    };
    // A self-loop (buffer feeding itself) cannot be bypassed.
    if netlist.channel(input)?.from.node == node {
        return None;
    }
    let mut candidate = netlist.clone();
    candidate.remove_channel(output).ok()?;
    candidate.set_channel_target(input, consumer).ok()?;
    candidate.remove_node(node).ok()?;
    Some(candidate)
}

/// Removes a direct source→sink pair with no other connections.
fn drop_pair(netlist: &Netlist, channel: ChannelId) -> Option<Netlist> {
    let (from, to) = {
        let c = netlist.channel(channel)?;
        (c.from.node, c.to.node)
    };
    let source = netlist.node(from)?;
    let sink = netlist.node(to)?;
    if !matches!(source.kind, NodeKind::Source(_)) || !matches!(sink.kind, NodeKind::Sink(_)) {
        return None;
    }
    if netlist.node_count() <= 2 {
        return None;
    }
    let mut candidate = netlist.clone();
    candidate.remove_channel(channel).ok()?;
    candidate.remove_node(from).ok()?;
    candidate.remove_node(to).ok()?;
    Some(candidate)
}

/// Environment-pattern simplification candidates for one node.
fn simplified_environments(netlist: &Netlist, node: NodeId) -> Vec<Netlist> {
    let mut candidates = Vec::new();
    let Some(target) = netlist.node(node) else { return candidates };
    match &target.kind {
        NodeKind::Source(spec) => {
            if spec.pattern != SourcePattern::Always {
                let mut candidate = netlist.clone();
                if let Some(n) = candidate.node_mut(node) {
                    n.kind = NodeKind::Source(SourceSpec {
                        pattern: SourcePattern::Always,
                        ..spec.clone()
                    });
                }
                candidates.push(candidate);
            }
            if let SourcePattern::List(offers) = &spec.pattern {
                if offers.len() > 1 {
                    let mut candidate = netlist.clone();
                    if let Some(n) = candidate.node_mut(node) {
                        n.kind = NodeKind::Source(SourceSpec {
                            pattern: SourcePattern::List(offers[..offers.len() / 2].to_vec()),
                            ..spec.clone()
                        });
                    }
                    candidates.push(candidate);
                }
            }
            match &spec.data {
                DataStream::Counter => {}
                DataStream::List(values) if values.len() > 1 => {
                    let mut candidate = netlist.clone();
                    if let Some(n) = candidate.node_mut(node) {
                        n.kind = NodeKind::Source(SourceSpec {
                            data: DataStream::List(values[..values.len() / 2].to_vec()),
                            ..spec.clone()
                        });
                    }
                    candidates.push(candidate);
                }
                _ => {
                    let mut candidate = netlist.clone();
                    if let Some(n) = candidate.node_mut(node) {
                        n.kind = NodeKind::Source(SourceSpec {
                            data: DataStream::Counter,
                            ..spec.clone()
                        });
                    }
                    candidates.push(candidate);
                }
            }
        }
        NodeKind::Sink(spec) if spec.backpressure != BackpressurePattern::Never => {
            let mut candidate = netlist.clone();
            if let Some(n) = candidate.node_mut(node) {
                n.kind = NodeKind::Sink(SinkSpec { backpressure: BackpressurePattern::Never });
            }
            candidates.push(candidate);
        }
        _ => {}
    }
    candidates
}

/// Shrinks `netlist` while `still_failing` holds, returning the smallest
/// failing netlist found within the check budget.
///
/// The input netlist itself is assumed to fail (callers obtain it from a
/// failing harness case); if it does not, it is returned unchanged.
pub fn shrink_netlist(
    netlist: &Netlist,
    still_failing: impl Fn(&Netlist) -> bool,
    options: &ShrinkOptions,
) -> Netlist {
    let mut current = netlist.clone();
    let mut checks = 0usize;

    let accept = |candidate: Netlist, current: &mut Netlist, checks: &mut usize| -> bool {
        if *checks >= options.max_checks {
            return false;
        }
        if candidate.validate().is_err() {
            return false;
        }
        if size_metric(&candidate) >= size_metric(current) {
            return false;
        }
        *checks += 1;
        if still_failing(&candidate) {
            *current = candidate;
            true
        } else {
            false
        }
    };

    loop {
        let mut progressed = false;

        // 1. Prune cones: most aggressive first.
        let channel_ids: Vec<ChannelId> = current.live_channels().map(|c| c.id).collect();
        'outer: for &channel in &channel_ids {
            let Some((producer, consumer)) =
                current.channel(channel).map(|c| (c.from.node, c.to.node))
            else {
                continue;
            };
            for doomed in
                [upstream_closure(&current, producer), downstream_closure(&current, consumer)]
            {
                if let Some(candidate) = delete_set(&current, &doomed) {
                    if accept(candidate, &mut current, &mut checks) {
                        progressed = true;
                        break 'outer;
                    }
                }
            }
        }

        // 2. Splice out pass-through nodes, then single nodes.
        if !progressed {
            let node_ids: Vec<NodeId> = current.live_nodes().map(|n| n.id).collect();
            'nodes: for &node in &node_ids {
                if let Some(candidate) = bypass(&current, node) {
                    if accept(candidate, &mut current, &mut checks) {
                        progressed = true;
                        break 'nodes;
                    }
                }
                let single: BTreeSet<NodeId> = [node].into_iter().collect();
                if let Some(candidate) = delete_set(&current, &single) {
                    if accept(candidate, &mut current, &mut checks) {
                        progressed = true;
                        break 'nodes;
                    }
                }
            }
        }

        // 3. Garbage-collect isolated source→sink pairs.
        if !progressed {
            let channel_ids: Vec<ChannelId> = current.live_channels().map(|c| c.id).collect();
            for &channel in &channel_ids {
                if let Some(candidate) = drop_pair(&current, channel) {
                    if accept(candidate, &mut current, &mut checks) {
                        progressed = true;
                        break;
                    }
                }
            }
        }

        // 4. Bisect environment patterns.
        if !progressed {
            let node_ids: Vec<NodeId> = current.live_nodes().map(|n| n.id).collect();
            'env: for &node in &node_ids {
                for candidate in simplified_environments(&current, node) {
                    if accept(candidate, &mut current, &mut checks) {
                        progressed = true;
                        break 'env;
                    }
                }
            }
        }

        if !progressed || checks >= options.max_checks {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};
    use elastic_core::Op;

    /// Predicate: the netlist still contains at least one `Inc` function.
    fn contains_inc(netlist: &Netlist) -> bool {
        netlist
            .live_nodes()
            .any(|n| matches!(&n.kind, NodeKind::Function(spec) if spec.op == Op::Inc))
    }

    fn inc_pipeline() -> Netlist {
        let mut n = Netlist::new("t");
        let src = n.add_source("src", SourceSpec::always());
        let a = n.add_op("a", Op::Not);
        let b = n.add_op("b", Op::Inc);
        let c = n.add_op("c", Op::Neg);
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(a, 0), 8).unwrap();
        n.connect(Port::output(a, 0), Port::input(b, 0), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(c, 0), 8).unwrap();
        n.connect(Port::output(c, 0), Port::input(sink, 0), 8).unwrap();
        n
    }

    #[test]
    fn shrinking_keeps_the_predicate_failing_and_reduces_size() {
        let netlist = inc_pipeline();
        let shrunk = shrink_netlist(&netlist, contains_inc, &ShrinkOptions::default());
        assert!(contains_inc(&shrunk));
        assert!(shrunk.validate().is_ok());
        // src -> inc -> sink is the minimal shape keeping the predicate.
        assert_eq!(shrunk.node_count(), 3, "{}", crate::snippet::to_rust_snippet(&shrunk));
    }

    #[test]
    fn shrinking_a_generated_netlist_converges_to_a_tiny_reproducer() {
        // Hunt a structural property through a real generated netlist: "has a
        // mux". The minimal validating netlist with a mux needs 3 feeders, the
        // mux and a sink.
        let generated = generate(42, &GenConfig::loops());
        let has_mux =
            |n: &Netlist| n.live_nodes().any(|node| matches!(node.kind, NodeKind::Mux(_)));
        assert!(has_mux(&generated.netlist));
        let before = generated.netlist.node_count();
        // The width-mutation knob makes the default generation space denser
        // (more join/fork tangling for the cone pruning to cut through), so
        // give the greedy loop a realistic check budget — the harness uses a
        // larger one than the doc-sized default too.
        let shrunk =
            shrink_netlist(&generated.netlist, has_mux, &ShrinkOptions { max_checks: 768 });
        assert!(has_mux(&shrunk));
        assert!(shrunk.node_count() <= 5, "{} -> {}", before, shrunk.node_count());
        assert!(shrunk.validate().is_ok());
    }

    #[test]
    fn a_passing_netlist_is_returned_unchanged() {
        let netlist = inc_pipeline();
        let shrunk = shrink_netlist(&netlist, |_| false, &ShrinkOptions::default());
        assert_eq!(shrunk, netlist);
    }

    #[test]
    fn the_check_budget_caps_the_work() {
        let generated = generate(7, &GenConfig::default());
        let calls = std::cell::Cell::new(0usize);
        let shrunk = shrink_netlist(
            &generated.netlist,
            |_| {
                calls.set(calls.get() + 1);
                true
            },
            &ShrinkOptions { max_checks: 5 },
        );
        assert!(calls.get() <= 5, "{} checks for a budget of 5", calls.get());
        assert!(shrunk.validate().is_ok());
    }

    #[test]
    fn environment_patterns_are_bisected() {
        let mut n = Netlist::new("env");
        let src = n.add_source(
            "src",
            SourceSpec {
                pattern: SourcePattern::List(vec![true, false, true, true]),
                data: DataStream::List(vec![9, 8, 7, 6, 5, 4]),
                consume_on_kill: true,
            },
        );
        let sink = n.add_sink(
            "sink",
            SinkSpec { backpressure: BackpressurePattern::Random { probability: 0.4, seed: 1 } },
        );
        n.connect(Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        // Predicate only needs the src->sink shape, so all patterns collapse
        // (possibly by replacing the environment nodes with fresh plain ones).
        let shrunk = shrink_netlist(&n, |c| c.channel_count() == 1, &ShrinkOptions::default());
        assert_eq!(shrunk.node_count(), 2);
        for node in shrunk.live_nodes() {
            match &node.kind {
                NodeKind::Source(spec) => {
                    assert_eq!(spec.pattern, SourcePattern::Always);
                    assert_eq!(spec.data, DataStream::Counter);
                }
                NodeKind::Sink(spec) => {
                    assert_eq!(spec.backpressure, BackpressurePattern::Never)
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }
}
