//! Serialization of a netlist as a runnable Rust snippet.
//!
//! When the fuzzing harness shrinks a failure to a minimal reproducer, the
//! artifact that survives the CI log is not the seed (regeneration depends on
//! the generator's RNG stream staying frozen) but a self-contained Rust
//! fragment that rebuilds the offending netlist against `elastic-core`'s
//! public API — paste it into a unit test, apply the failing transformation,
//! done.

use std::fmt::Write as _;

use elastic_core::kind::{
    BackpressurePattern, BufferSpec, DataStream, NodeKind, SchedulerKind, SourcePattern,
};
use elastic_core::{Netlist, NodeId, Op, PortDir};

fn u64_vec(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("vec![{}]", items.join(", "))
}

fn bool_vec(values: &[bool]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("vec![{}]", items.join(", "))
}

fn usize_vec(values: &[usize]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("vec![{}]", items.join(", "))
}

fn op_expr(op: &Op) -> String {
    match op {
        Op::Identity => "Op::Identity".into(),
        Op::Const(value) => format!("Op::Const({value})"),
        Op::Not => "Op::Not".into(),
        Op::Neg => "Op::Neg".into(),
        Op::Add => "Op::Add".into(),
        Op::Sub => "Op::Sub".into(),
        Op::And => "Op::And".into(),
        Op::Or => "Op::Or".into(),
        Op::Xor => "Op::Xor".into(),
        Op::Shl => "Op::Shl".into(),
        Op::Shr => "Op::Shr".into(),
        Op::Inc => "Op::Inc".into(),
        Op::Dec => "Op::Dec".into(),
        Op::Eq => "Op::Eq".into(),
        Op::Ne => "Op::Ne".into(),
        Op::Lt => "Op::Lt".into(),
        Op::Alu8 => "Op::Alu8".into(),
        Op::RippleAdd { width } => format!("Op::RippleAdd {{ width: {width} }}"),
        Op::KoggeStoneAdd { width } => format!("Op::KoggeStoneAdd {{ width: {width} }}"),
        Op::ApproxAdd { width, spec_bits } => {
            format!("Op::ApproxAdd {{ width: {width}, spec_bits: {spec_bits} }}")
        }
        Op::ApproxAddErr { width, spec_bits } => {
            format!("Op::ApproxAddErr {{ width: {width}, spec_bits: {spec_bits} }}")
        }
        Op::SecdedEncode { data_width } => {
            format!("Op::SecdedEncode {{ data_width: {data_width} }}")
        }
        Op::SecdedCorrect { data_width } => {
            format!("Op::SecdedCorrect {{ data_width: {data_width} }}")
        }
        Op::SecdedSyndrome { data_width } => {
            format!("Op::SecdedSyndrome {{ data_width: {data_width} }}")
        }
        Op::BitSelect { bit } => format!("Op::BitSelect {{ bit: {bit} }}"),
        Op::Mask { width } => format!("Op::Mask {{ width: {width} }}"),
        Op::Lut(table) => format!("Op::Lut({})", u64_vec(table)),
        Op::Opaque { name, delay_levels, area_ge } => {
            format!("opaque({name:?}, {delay_levels}, {area_ge})")
        }
        // `Op` is non-exhaustive within the workspace; an unknown operation
        // cannot be re-emitted faithfully, so degrade to the identity and say
        // so in the snippet.
        other => format!("Op::Identity /* unknown op {} */", other.mnemonic()),
    }
}

fn source_pattern_expr(pattern: &SourcePattern) -> String {
    match pattern {
        SourcePattern::Always => "SourcePattern::Always".into(),
        SourcePattern::Every(period) => format!("SourcePattern::Every({period})"),
        SourcePattern::List(offers) => format!("SourcePattern::List({})", bool_vec(offers)),
        SourcePattern::Random { probability, seed } => {
            format!("SourcePattern::Random {{ probability: {probability:?}, seed: {seed} }}")
        }
        _ => "SourcePattern::Always /* unknown pattern */".into(),
    }
}

fn data_stream_expr(data: &DataStream) -> String {
    match data {
        DataStream::Counter => "DataStream::Counter".into(),
        DataStream::Const(value) => format!("DataStream::Const({value})"),
        DataStream::List(values) => format!("DataStream::List({})", u64_vec(values)),
        DataStream::Random { seed } => format!("DataStream::Random {{ seed: {seed} }}"),
        _ => "DataStream::Counter /* unknown stream */".into(),
    }
}

fn backpressure_expr(pattern: &BackpressurePattern) -> String {
    match pattern {
        BackpressurePattern::Never => "BackpressurePattern::Never".into(),
        BackpressurePattern::Every(period) => format!("BackpressurePattern::Every({period})"),
        BackpressurePattern::List(stalls) => {
            format!("BackpressurePattern::List({})", bool_vec(stalls))
        }
        BackpressurePattern::Random { probability, seed } => {
            format!("BackpressurePattern::Random {{ probability: {probability:?}, seed: {seed} }}")
        }
        _ => "BackpressurePattern::Never /* unknown pattern */".into(),
    }
}

fn scheduler_expr(scheduler: &SchedulerKind) -> String {
    match scheduler {
        SchedulerKind::Static(user) => format!("SchedulerKind::Static({user})"),
        SchedulerKind::RoundRobin => "SchedulerKind::RoundRobin".into(),
        SchedulerKind::LastTaken => "SchedulerKind::LastTaken".into(),
        SchedulerKind::TwoBit => "SchedulerKind::TwoBit".into(),
        SchedulerKind::Correlating { history_bits } => {
            format!("SchedulerKind::Correlating {{ history_bits: {history_bits} }}")
        }
        SchedulerKind::Sequence(predictions) => {
            format!("SchedulerKind::Sequence({})", usize_vec(predictions))
        }
        SchedulerKind::ErrorReplay => "SchedulerKind::ErrorReplay".into(),
        _ => "SchedulerKind::Static(0) /* unknown scheduler */".into(),
    }
}

fn buffer_spec_expr(spec: &BufferSpec) -> String {
    format!(
        "BufferSpec {{ forward_latency: {}, backward_latency: {}, capacity: {}, \
         init_tokens: {}, anti_capacity: {}, init_value: {} }}",
        spec.forward_latency,
        spec.backward_latency,
        spec.capacity,
        spec.init_tokens,
        spec.anti_capacity,
        spec.init_value
    )
}

fn option_u32_expr(value: Option<u32>) -> String {
    match value {
        Some(v) => format!("Some({v})"),
        None => "None".into(),
    }
}

fn node_kind_expr(kind: &NodeKind) -> String {
    match kind {
        NodeKind::Buffer(spec) => format!("NodeKind::Buffer({})", buffer_spec_expr(spec)),
        NodeKind::Function(spec) => format!(
            "NodeKind::Function(FunctionSpec::with_inputs({}, {}))",
            op_expr(&spec.op),
            spec.inputs
        ),
        NodeKind::Mux(spec) => format!(
            "NodeKind::Mux(MuxSpec {{ data_inputs: {}, early_eval: {} }})",
            spec.data_inputs, spec.early_eval
        ),
        NodeKind::Fork(spec) => format!(
            "NodeKind::Fork(ForkSpec {{ outputs: {}, eager: {} }})",
            spec.outputs, spec.eager
        ),
        NodeKind::Shared(spec) => format!(
            "NodeKind::Shared(SharedSpec {{ users: {}, inputs_per_user: {}, op: {}, \
             scheduler: {}, starvation_limit: {} }})",
            spec.users,
            spec.inputs_per_user,
            op_expr(&spec.op),
            scheduler_expr(&spec.scheduler),
            option_u32_expr(spec.starvation_limit)
        ),
        NodeKind::Commit(spec) => format!(
            "NodeKind::Commit(CommitSpec {{ lanes: {}, depth: {} }})",
            spec.lanes, spec.depth
        ),
        NodeKind::VarLatency(spec) => format!(
            "NodeKind::VarLatency(VarLatencySpec {{ exact: {}, approx: {}, error: {}, \
             inputs: {} }})",
            op_expr(&spec.exact),
            op_expr(&spec.approx),
            op_expr(&spec.error),
            spec.inputs
        ),
        NodeKind::Source(spec) => format!(
            "NodeKind::Source(SourceSpec {{ pattern: {}, data: {}, consume_on_kill: {} }})",
            source_pattern_expr(&spec.pattern),
            data_stream_expr(&spec.data),
            spec.consume_on_kill
        ),
        NodeKind::Sink(spec) => format!(
            "NodeKind::Sink(SinkSpec {{ backpressure: {} }})",
            backpressure_expr(&spec.backpressure)
        ),
        other => format!("/* unknown node kind `{}` */", other.kind_name()),
    }
}

/// Emits a runnable Rust fragment that rebuilds `netlist` through
/// `elastic-core`'s public API.
///
/// The fragment assumes the following imports:
///
/// ```ignore
/// use elastic_core::kind::*;
/// use elastic_core::op::opaque;
/// use elastic_core::{Netlist, NodeKind, Op, Port};
/// ```
pub fn to_rust_snippet(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// reproducer `{}`: {} node(s), {} channel(s)",
        netlist.name(),
        netlist.node_count(),
        netlist.channel_count()
    );
    let _ = writeln!(out, "let mut n = Netlist::new({:?});", netlist.name());

    // Stable variable name per live node.
    let var = |id: NodeId| format!("n{}", id.index());
    for node in netlist.live_nodes() {
        let _ = writeln!(
            out,
            "let {} = n.add_node({:?}, {});",
            var(node.id),
            node.name,
            node_kind_expr(&node.kind)
        );
    }
    for channel in netlist.live_channels() {
        debug_assert_eq!(channel.from.dir, PortDir::Output);
        debug_assert_eq!(channel.to.dir, PortDir::Input);
        let _ = writeln!(
            out,
            "n.connect(Port::output({}, {}), Port::input({}, {}), {}).unwrap();",
            var(channel.from.node),
            channel.from.index,
            var(channel.to.node),
            channel.to.index,
            channel.width
        );
    }
    let _ = writeln!(out, "n.validate().unwrap();");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenConfig};
    use elastic_core::kind::{SinkSpec, SourceSpec};
    use elastic_core::Port;

    #[test]
    fn snippets_enumerate_every_node_and_channel() {
        let generated = generate(17, &GenConfig::default());
        let snippet = to_rust_snippet(&generated.netlist);
        assert_eq!(
            snippet.matches("n.add_node(").count(),
            generated.netlist.node_count(),
            "one add_node per live node"
        );
        assert_eq!(
            snippet.matches("n.connect(").count(),
            generated.netlist.channel_count(),
            "one connect per live channel"
        );
        assert!(snippet.trim_end().ends_with("n.validate().unwrap();"));
    }

    #[test]
    fn snippets_are_deterministic() {
        let generated = generate(23, &GenConfig::default());
        assert_eq!(to_rust_snippet(&generated.netlist), to_rust_snippet(&generated.netlist));
    }

    #[test]
    fn a_hand_built_netlist_round_trips_through_its_own_snippet_text() {
        // The emitted fragment for a tiny netlist matches what one would
        // write by hand — the strongest check we can run without a compiler
        // in the loop.
        let mut n = Netlist::new("tiny");
        let src = n.add_source("src", SourceSpec::always());
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(src, 0), Port::input(sink, 0), 8).unwrap();
        let snippet = to_rust_snippet(&n);
        assert!(snippet.contains(
            "let n0 = n.add_node(\"src\", NodeKind::Source(SourceSpec { \
             pattern: SourcePattern::Always, data: DataStream::Counter, \
             consume_on_kill: true }));"
        ));
        assert!(snippet.contains(
            "let n1 = n.add_node(\"sink\", NodeKind::Sink(SinkSpec { \
             backpressure: BackpressurePattern::Never }));"
        ));
        assert!(snippet.contains("n.connect(Port::output(n0, 0), Port::input(n1, 0), 8).unwrap();"));
    }

    #[test]
    fn every_generated_spec_kind_emits_without_placeholders() {
        // Across a spread of seeds the emitter must never hit its
        // unknown-variant fallbacks for generator-produced netlists.
        for seed in 0..40 {
            let generated = generate(seed, &GenConfig::loops());
            let snippet = to_rust_snippet(&generated.netlist);
            assert!(!snippet.contains("unknown"), "seed {seed} produced:\n{snippet}");
        }
    }
}
