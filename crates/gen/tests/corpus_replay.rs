//! Regression corpus replay: every `corpus/*.case` seed regenerates its
//! netlist and must clear the full differential gauntlet.
//!
//! A corpus entry is a small key-value file:
//!
//! ```text
//! # commentary on what this seed once caught
//! seed = 0x5eed0073
//! preset = default
//! ```
//!
//! Corpus seeds pin *generator-stream* regressions: they only reproduce the
//! historical netlist while the generator's RNG stream stays frozen (see
//! `src/rng.rs`), which is exactly why the shrunken reproducer snippets in
//! the comments — not the seeds — are the durable artifact of a finding.

use std::path::PathBuf;

use elastic_gen::{run_case, GenConfig, HarnessOptions};

#[derive(Debug)]
struct CorpusEntry {
    file: String,
    seed: u64,
    config: GenConfig,
}

fn parse_seed(value: &str) -> u64 {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        value.parse().expect("decimal seed")
    }
}

fn preset(name: &str) -> GenConfig {
    match name {
        "default" => GenConfig::default(),
        "pipelines" => GenConfig::pipelines(),
        "loops" => GenConfig::loops(),
        "small" => GenConfig::small(),
        other => panic!("unknown generation preset `{other}`"),
    }
}

fn load_corpus() -> Vec<CorpusEntry> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut entries = Vec::new();
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("crates/gen/corpus exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let mut seed = None;
        let mut config = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                panic!("{}: malformed line `{line}`", path.display());
            };
            match key.trim() {
                "seed" => seed = Some(parse_seed(value.trim())),
                "preset" => config = Some(preset(value.trim())),
                other => panic!("{}: unknown key `{other}`", path.display()),
            }
        }
        entries.push(CorpusEntry {
            file: path.file_name().unwrap().to_string_lossy().into_owned(),
            seed: seed.unwrap_or_else(|| panic!("{}: missing seed", path.display())),
            config: config.unwrap_or_else(|| panic!("{}: missing preset", path.display())),
        });
    }
    entries
}

#[test]
fn the_corpus_is_nonempty_and_well_formed() {
    let corpus = load_corpus();
    assert!(corpus.len() >= 5, "expected the shipped regression corpus, found {corpus:?}");
}

#[test]
fn every_corpus_seed_passes_the_full_gauntlet() {
    let corpus = load_corpus();
    let options = HarnessOptions::default();
    for entry in corpus {
        run_case(entry.seed, &entry.config, &options)
            .unwrap_or_else(|failure| panic!("corpus entry {} regressed: {failure}", entry.file));
    }
}

#[test]
fn every_corpus_seed_is_lane_broadcast_identical() {
    // The 64-lane engine's lane-0 identity contract, replayed over the whole
    // regression corpus: each historical finding's netlist must simulate
    // bit-identically in all broadcast lanes.
    use elastic_gen::{generate, lanes_agree};
    for entry in load_corpus() {
        let generated = generate(entry.seed, &entry.config);
        lanes_agree(&generated.netlist, 192).unwrap_or_else(|details| {
            panic!("corpus entry {} broke lane identity: {details}", entry.file)
        });
    }
}

#[test]
fn every_corpus_seed_is_compiled_identical() {
    // The compiled settle backend's bit-identity contract, replayed over the
    // whole regression corpus: each historical finding's netlist must
    // simulate identically under the fused micro-op plan (or its
    // event-driven fallback for lazy-fork designs).
    use elastic_gen::{compiled_agrees, generate};
    for entry in load_corpus() {
        let generated = generate(entry.seed, &entry.config);
        compiled_agrees(&generated.netlist, 192).unwrap_or_else(|details| {
            panic!("corpus entry {} broke compiled identity: {details}", entry.file)
        });
    }
}

// Named replays of the individual findings, so a regression points straight
// at the original diagnosis instead of a corpus index.

#[test]
fn corpus_0001_retime_forward_respects_data_tokens() {
    // Also re-assert the precondition directly: the transform layer must
    // keep rejecting data-carrying tokens crossing value-changing logic.
    let report = run_case(0x0, &GenConfig::default(), &HarnessOptions::default())
        .unwrap_or_else(|failure| panic!("{failure}"));
    // The retiming path must still be attempted (applied, or skipped on a
    // structural precondition — including the data-token side condition this
    // seed established).
    assert!(
        report.transforms.iter().any(|name| name.starts_with("retime"))
            || report.notes.iter().any(|note| note.starts_with("skipped retime")),
        "seed 0 must still exercise the retiming path: {report:?}"
    );
}

#[test]
fn corpus_0002_lazy_fork_oracle_convergence() {
    run_case(0x1, &GenConfig::loops(), &HarnessOptions::default())
        .unwrap_or_else(|failure| panic!("{failure}"));
}

#[test]
fn corpus_0004_buffer_init_values_are_masked() {
    run_case(0x5eed0073, &GenConfig::default(), &HarnessOptions::default())
        .unwrap_or_else(|failure| panic!("{failure}"));
}

#[test]
fn corpus_0009_0010_acyclic_speculation_is_sound_and_exercised() {
    // Pre-fix, these seeds (with `include_acyclic_speculation` forced on)
    // reordered shared results resp. livelocked under a static scheduler;
    // the flag is the default now, so the plain gauntlet must both pass and
    // actually attempt feed-forward speculation on them.
    for (seed, config) in
        [(0x5eed_0000_004d, GenConfig::default()), (0x5eed_0003_0012, GenConfig::small())]
    {
        let report = run_case(seed, &config, &HarnessOptions::default())
            .unwrap_or_else(|failure| panic!("{failure}"));
        assert!(
            report.transforms.iter().any(|name| name.starts_with("speculate_acyclic"))
                || report.notes.iter().any(|note| note.starts_with("skipped speculate_acyclic")),
            "seed {seed:#x} must exercise the feed-forward speculation path: {report:?}"
        );
    }
}

#[test]
fn corpus_0015_narrowing_muxes_are_legal_speculation_sites() {
    // The carried-over `speculate` narrowing-mux refusal is gone: Shannon
    // decomposition re-masks the moved block's operands to the old
    // mux-output width, so width-converting muxes speculate and stay
    // behaviourally equivalent. Seed 0xd pins the cyclic (select-loop) site,
    // seed 0xa the feed-forward one; both must *apply* the transform — a
    // regression back to a precondition refusal would leave only skip notes.
    use elastic_gen::generate;
    for seed in [0xd_u64, 0xa] {
        let generated = generate(seed, &GenConfig::default());
        assert!(
            !generated.profile.narrowing_muxes.is_empty(),
            "seed {seed:#x} must generate a narrowing gadget mux"
        );
        let narrowing_names: Vec<String> = generated
            .profile
            .narrowing_muxes
            .iter()
            .map(|&mux| generated.netlist.node(mux).unwrap().name.clone())
            .collect();
        let report = run_case(seed, &GenConfig::default(), &HarnessOptions::default())
            .unwrap_or_else(|failure| panic!("{failure}"));
        assert!(
            report.transforms.iter().any(|name| name.starts_with("speculate")
                && narrowing_names.iter().any(|mux| name.contains(&format!("({mux}")))),
            "seed {seed:#x} must speculate its narrowing mux {narrowing_names:?}: {report:?}"
        );
    }
}

#[test]
fn roadmap_era_acyclic_reproducers_stay_green() {
    // The two seeds PR 3's ROADMAP entry named as the original acyclic
    // reproducers (pipelines base + 0x1b, small base + 0xd). The generator's
    // stream has widened since, so they regenerate different netlists — they
    // stay replayed as historical anchors of the feed-forward soundness work.
    for (seed, config) in
        [(0x5eed_0001_001b, GenConfig::pipelines()), (0x5eed_0003_000d, GenConfig::small())]
    {
        run_case(seed, &config, &HarnessOptions::default())
            .unwrap_or_else(|failure| panic!("{failure}"));
    }
}
