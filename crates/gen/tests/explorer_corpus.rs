//! Explorer replay over the regression corpus: every `corpus/*.case` seed
//! regenerates its netlist and must survive the auto-speculation design-space
//! explorer — no panics, full grid accounting, and every transform rejection
//! surfaced as a skip with the transform's own reason rather than a silent
//! hole in the report.

use std::path::PathBuf;

use elastic_gen::{generate, run_case, GenConfig, HarnessOptions};

#[derive(Debug)]
struct CorpusEntry {
    file: String,
    seed: u64,
    config: GenConfig,
}

fn parse_seed(value: &str) -> u64 {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        value.parse().expect("decimal seed")
    }
}

fn preset(name: &str) -> GenConfig {
    match name {
        "default" => GenConfig::default(),
        "pipelines" => GenConfig::pipelines(),
        "loops" => GenConfig::loops(),
        "small" => GenConfig::small(),
        other => panic!("unknown generation preset `{other}`"),
    }
}

fn load_corpus() -> Vec<CorpusEntry> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("crates/gen/corpus exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut entries = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let mut seed = None;
        let mut config = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').expect("key = value line");
            match key.trim() {
                "seed" => seed = Some(parse_seed(value.trim())),
                "preset" => config = Some(preset(value.trim())),
                other => panic!("{}: unknown key `{other}`", path.display()),
            }
        }
        entries.push(CorpusEntry {
            file: path.file_name().unwrap().to_string_lossy().into_owned(),
            seed: seed.expect("seed"),
            config: config.expect("preset"),
        });
    }
    assert!(entries.len() >= 5, "expected the shipped regression corpus");
    entries
}

/// The explorer configuration the replay uses: the harness stage's shape
/// (short horizons, two environments, verification handled separately).
fn replay_options(seed: u64) -> elastic_explore::ExploreOptions {
    elastic_explore::ExploreOptions {
        cycles: 192,
        short_cycles: 64,
        environments: 2,
        seed,
        verify: false,
        ..elastic_explore::ExploreOptions::default()
    }
}

#[test]
fn every_corpus_netlist_explores_with_full_accounting() {
    let mut candidates_total = 0;
    let mut skips_total = 0;
    for entry in load_corpus() {
        let generated = generate(entry.seed, &entry.config);
        let report = elastic_explore::explore(&generated.netlist, &replay_options(entry.seed))
            .unwrap_or_else(|error| {
                panic!("corpus entry {} broke the explorer: {error}", entry.file)
            });
        assert_eq!(
            report.accounted(),
            report.candidates_enumerated,
            "corpus entry {} left candidates unaccounted for: {:?}",
            entry.file,
            report.notes
        );
        // Rejected transforms are skips carrying the transform's own reason,
        // never empty strings or silent holes.
        for skip in &report.skipped {
            assert!(
                !skip.reason.trim().is_empty(),
                "corpus entry {}: skip for {} has no reason",
                entry.file,
                skip.config.label()
            );
        }
        candidates_total += report.candidates_enumerated;
        skips_total += report.skipped.len();
    }
    // The corpus exists because its netlists are awkward: the replay must
    // actually exercise the grid, and at least some of those awkward sites
    // must surface as explicit rejections.
    assert!(candidates_total > 0, "the corpus enumerated no speculation candidates at all");
    assert!(
        skips_total > 0,
        "no corpus entry produced a rejected candidate; the skip path went unexercised"
    );
}

#[test]
fn the_harness_soundness_stage_holds_on_the_acyclic_speculation_anchors() {
    // The seeds that pinned the feed-forward speculation soundness work
    // (corpus 0009/0010) now also run the full explorer-soundness stage:
    // search, re-apply + battery on every front member, determinism and
    // reproducibility replays.
    let options = HarnessOptions { explorer_soundness: true, ..HarnessOptions::default() };
    for (seed, config) in
        [(0x5eed_0000_004d_u64, GenConfig::default()), (0x5eed_0003_0012, GenConfig::small())]
    {
        let report = run_case(seed, &config, &options)
            .unwrap_or_else(|failure| panic!("seed {seed:#x} failed: {failure}"));
        assert!(
            report.transforms.iter().any(|name| name.starts_with("explore (")),
            "seed {seed:#x} must record the explorer stage: {:?}",
            report.transforms
        );
        assert!(
            report.notes.iter().any(|note| note.starts_with("explorer: ")),
            "seed {seed:#x} must carry the explorer's coverage notes"
        );
    }
}
