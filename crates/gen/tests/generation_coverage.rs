//! Histogram assertions over the widened generation space: the knobs added
//! for lazy forks, multi-operand shared modules and stallable-cone loop
//! gadgets must actually *emit* those shapes — a silent coverage collapse
//! (every roll failing, every lazy fork demoted) would leave the battery
//! green while testing nothing new.

use std::collections::BTreeMap;

use elastic_core::NodeKind;
use elastic_gen::{generate, GenConfig};

#[derive(Debug, Default)]
struct SpaceHistogram {
    netlists: usize,
    lazy_forks: usize,
    demoted_lazy_forks: usize,
    multi_operand_shared: usize,
    stallable_loop_forks: usize,
    feedforward_muxes: usize,
    select_loop_muxes: usize,
    width_mutated_forks: usize,
    width_mutated_joins: usize,
    narrowing_forks: usize,
    narrowing_joins: usize,
    narrowing_muxes: usize,
    kinds: BTreeMap<&'static str, usize>,
}

fn sample(config: &GenConfig, seeds: std::ops::Range<u64>) -> SpaceHistogram {
    let mut histogram = SpaceHistogram::default();
    for seed in seeds {
        let generated = generate(seed, config);
        histogram.netlists += 1;
        histogram.lazy_forks += generated.profile.lazy_forks.len();
        histogram.multi_operand_shared += generated.profile.multi_operand_shared.len();
        histogram.stallable_loop_forks += generated.profile.stallable_loop_forks.len();
        histogram.feedforward_muxes += generated.profile.feedforward_muxes.len();
        histogram.select_loop_muxes += generated.profile.select_loop_muxes.len();
        histogram.width_mutated_forks += generated.profile.width_mutated_forks.len();
        histogram.width_mutated_joins += generated.profile.width_mutated_joins.len();
        histogram.narrowing_joins += generated.profile.narrowing_joins.len();
        histogram.narrowing_muxes += generated.profile.narrowing_muxes.len();
        // Every profiled narrowing mux must really be width-converting: the
        // output wire strictly narrower than at least one data input. These
        // are the speculation sites the re-masking Shannon path exists for.
        for &mux in &generated.profile.narrowing_muxes {
            let out_width = generated
                .netlist
                .output_channels(mux)
                .first()
                .map(|c| c.width)
                .expect("gadget muxes drive a wire");
            let widest_data = generated
                .netlist
                .input_channels(mux)
                .iter()
                .skip(1) // port 0 is the select
                .map(|c| c.width)
                .max()
                .expect("gadget muxes have data inputs");
            assert!(
                out_width < widest_data,
                "seed {seed:#x}: profiled narrowing mux converts nothing \
                 ({widest_data} bits in, {out_width} out)"
            );
        }
        // A join's pre-mutation operand width is not reconstructible from the
        // finished netlist, so the narrowing direction is recorded at
        // generation time; it must at least be consistent with the mutation
        // profile (every narrowing join is a width-mutated join).
        for &join in &generated.profile.narrowing_joins {
            assert!(
                generated.profile.width_mutated_joins.contains(&join),
                "seed {seed:#x}: narrowing join missing from the width-mutation profile"
            );
        }
        // Every profiled width-mutated fork must really convert a width, and
        // the space must include *narrowing* branches (the masking direction
        // — widening alone would leave the truncation paths untested).
        for &fork in &generated.profile.width_mutated_forks {
            let input_width = generated
                .netlist
                .input_channels(fork)
                .first()
                .map(|c| c.width)
                .expect("forks have an input");
            let outputs = generated.netlist.output_channels(fork);
            assert!(
                outputs.iter().any(|c| c.width != input_width),
                "seed {seed:#x}: profiled width-mutated fork converts nothing"
            );
            if outputs.iter().any(|c| c.width < input_width) {
                histogram.narrowing_forks += 1;
            }
        }
        for node in generated.netlist.live_nodes() {
            *histogram.kinds.entry(node.kind.kind_name()).or_insert(0) += 1;
            match &node.kind {
                NodeKind::Fork(spec) if !spec.eager => {
                    // Survived the ill-formed-rendezvous demotion.
                    assert!(
                        generated.profile.lazy_forks.contains(&node.id),
                        "seed {seed:#x}: live lazy fork missing from the profile"
                    );
                }
                NodeKind::Shared(spec) if spec.inputs_per_user > 1 => {
                    assert!(
                        generated.profile.multi_operand_shared.contains(&node.id),
                        "seed {seed:#x}: multi-operand shared missing from the profile"
                    );
                }
                _ => {}
            }
        }
        // Demotions: profile entries removed between roll and emission are
        // not directly observable, but every profiled lazy fork must still
        // be lazy in the netlist.
        for &fork in &generated.profile.lazy_forks {
            let spec = match &generated.netlist.node(fork).unwrap().kind {
                NodeKind::Fork(spec) => spec,
                other => panic!("seed {seed:#x}: profiled lazy fork is a {}", other.kind_name()),
            };
            assert!(!spec.eager, "seed {seed:#x}: demoted fork left in the lazy profile");
        }
        histogram.demoted_lazy_forks += generated
            .netlist
            .live_nodes()
            .filter(|n| {
                n.name.starts_with("lzfork")
                    && matches!(&n.kind, NodeKind::Fork(spec) if spec.eager)
            })
            .count();
    }
    histogram
}

#[test]
fn the_widened_default_space_emits_every_new_shape() {
    let histogram = sample(&GenConfig::default(), 0..160);
    assert!(
        histogram.lazy_forks >= 8,
        "lazy forks barely emitted (the demotion lint is conservative, but the surviving \
         envelope must stay populated): {histogram:?}"
    );
    assert!(
        histogram.demoted_lazy_forks >= 1,
        "the ill-formed-rendezvous lint never fired — either the space no longer \
         builds reconvergent lazy shapes or the demotion is dead code: {histogram:?}"
    );
    assert!(
        histogram.multi_operand_shared >= 8,
        "multi-operand shared modules barely emitted: {histogram:?}"
    );
    assert!(
        histogram.feedforward_muxes >= 40,
        "feed-forward speculation targets barely emitted: {histogram:?}"
    );
    assert!(
        histogram.width_mutated_forks >= 10,
        "width-converting fork branches barely emitted: {histogram:?}"
    );
    assert!(
        histogram.width_mutated_joins >= 10,
        "width-converting join operands barely emitted: {histogram:?}"
    );
    assert!(
        histogram.narrowing_forks >= 5,
        "the narrowing (truncating) direction of fork width mutation is barely \
         emitted — the masking paths would go untested: {histogram:?}"
    );
    assert!(
        histogram.narrowing_joins >= 5,
        "the narrowing (truncating) direction of join width mutation is barely \
         emitted — the join-side masking paths would go untested: {histogram:?}"
    );
    assert!(
        histogram.narrowing_muxes >= 10,
        "narrowing (width-converting) gadget muxes are barely emitted — the \
         re-masking speculation sites recovered from the old refusal would go \
         untested: {histogram:?}"
    );
    for kind in ["source", "sink", "function", "buffer", "fork", "mux", "shared", "varlatency"] {
        assert!(histogram.kinds.contains_key(kind), "kind `{kind}` vanished: {histogram:?}");
    }
}

#[test]
fn the_loop_space_emits_stallable_cone_gadgets() {
    let histogram = sample(&GenConfig::loops(), 0..120);
    assert!(
        histogram.select_loop_muxes >= 120,
        "every loops() netlist carries at least one select loop: {histogram:?}"
    );
    assert!(
        histogram.stallable_loop_forks >= 25,
        "the fork-before-EB loop variant (ROADMAP stallable-cone corner) is \
         barely emitted: {histogram:?}"
    );
}
