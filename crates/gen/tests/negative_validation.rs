//! Negative validation: random single mutations of generated netlists must
//! be rejected by `validate()` with the right complaint.
//!
//! The generator proves `validate()` accepts everything in the generation
//! space; this suite proves it *rejects* every one-defect neighbour of that
//! space — so validation coverage scales with the generator instead of
//! being pinned to hand-built bad examples.

use elastic_core::CoreError;
use elastic_gen::{apply_mutation, generate, GenConfig, GenRng, Mutation};

#[test]
fn every_mutation_of_every_seed_is_rejected_with_the_right_error() {
    let mut rng = GenRng::new(0xBAD_CA5E);
    let mut applied_per_mutation = vec![0usize; Mutation::all().len()];
    for (config, seeds) in [
        (GenConfig::default(), 0..24u64),
        (GenConfig::loops(), 100..124),
        (GenConfig::pipelines(), 200..224),
    ] {
        for seed in seeds {
            let generated = generate(seed, &config);
            assert!(generated.netlist.validate().is_ok(), "seed {seed} must start valid");
            for (index, mutation) in Mutation::all().into_iter().enumerate() {
                let mut mutant = generated.netlist.clone();
                if !apply_mutation(&mut mutant, mutation, &mut rng) {
                    continue;
                }
                applied_per_mutation[index] += 1;
                let error = mutant.validate().expect_err(&format!(
                    "seed {seed}: {mutation:?} must make the netlist invalid"
                ));
                assert!(
                    matches!(error, CoreError::Invalid(_)),
                    "seed {seed}: {mutation:?} produced {error:?}, expected CoreError::Invalid"
                );
                assert!(
                    error.to_string().contains(mutation.expected_complaint()),
                    "seed {seed}: {mutation:?} complaint `{error}` does not mention `{}`",
                    mutation.expected_complaint()
                );
            }
        }
    }
    // Every mutation kind must have found an applicable site somewhere in the
    // sweep — otherwise the negative space silently shrank.
    for (mutation, &count) in Mutation::all().iter().zip(&applied_per_mutation) {
        assert!(count > 0, "{mutation:?} never applied across 72 generated netlists");
    }
}

#[test]
fn duplicate_connections_are_rejected_at_the_api_boundary() {
    // The duplicate-connection defect cannot exist inside a netlist (the
    // builder API refuses to create it), so the negative test lives at the
    // `connect` boundary: wiring a second producer onto an occupied input
    // port must fail with `MultiplyConnectedPort`.
    use elastic_core::{Port, SourceSpec};

    for seed in 0..12u64 {
        let generated = generate(seed, &GenConfig::default());
        let mut netlist = generated.netlist;
        let occupied = netlist
            .live_channels()
            .next()
            .map(|channel| channel.to)
            .expect("generated netlists have channels");
        let intruder = netlist.add_source("intruder", SourceSpec::always());
        let error = netlist
            .connect(Port::output(intruder, 0), occupied, 8)
            .expect_err("connecting onto an occupied input port must fail");
        assert!(
            matches!(error, CoreError::MultiplyConnectedPort { is_input: true, .. }),
            "seed {seed}: got {error:?}"
        );
    }
}

#[test]
fn mutated_netlists_do_not_build_simulations() {
    // Defence in depth: `Simulation::new` revalidates, so a mutant that
    // slipped past a caller's validation still cannot simulate.
    use elastic_sim::{SimConfig, SimError, Simulation};

    let generated = generate(7, &GenConfig::default());
    let mut rng = GenRng::new(0xD00_D1E);
    let mut checked = 0;
    for mutation in [Mutation::DropChannel, Mutation::UndersizedBuffer, Mutation::DegenerateMux] {
        let mut mutant = generated.netlist.clone();
        if !apply_mutation(&mut mutant, mutation, &mut rng) {
            continue;
        }
        checked += 1;
        match Simulation::new(&mutant, &SimConfig::default()) {
            Err(SimError::InvalidNetlist(_)) => {}
            other => panic!("{mutation:?}: expected InvalidNetlist, got {other:?}"),
        }
    }
    assert!(checked >= 2);
}
