//! Property tests drawing whole netlists through the proptest bridge.
//!
//! `any_netlist()` plugs the generator into `proptest!` as a first-class
//! strategy; the properties below are the invariants every inhabitant of the
//! generation space must satisfy, sampled afresh per run of the (seeded,
//! deterministic) proptest shim.

use elastic_gen::harness::engines_agree;
use elastic_gen::proptest_bridge::{any_netlist, netlist_with};
use elastic_gen::GenConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_generated_netlist_validates_and_simulates(generated in any_netlist()) {
        prop_assert!(generated.netlist.validate().is_ok());
        let mut sim = elastic_sim::Simulation::new(
            &generated.netlist,
            &elastic_sim::SimConfig::default(),
        )
        .expect("generated netlists are simulable");
        let report = sim.run(64).expect("generated netlists settle");
        prop_assert_eq!(report.cycles, 64);
    }

    #[test]
    fn both_engines_agree_on_any_netlist(generated in any_netlist()) {
        if let Err(divergence) = engines_agree(&generated.netlist, 96) {
            panic!("seed {:#x}: {divergence}", generated.profile.seed);
        }
    }

    #[test]
    fn loop_netlists_keep_their_select_cycles(generated in netlist_with(GenConfig::loops())) {
        use elastic_core::transform::find_select_cycles;
        prop_assert!(!generated.profile.select_loop_muxes.is_empty());
        for &mux in &generated.profile.select_loop_muxes {
            let cycles = find_select_cycles(&generated.netlist, mux).unwrap();
            prop_assert!(!cycles.is_empty(), "seed {:#x}", generated.profile.seed);
        }
    }
}
