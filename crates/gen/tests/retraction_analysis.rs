//! Property tests of the retraction-domain analysis: across the generation
//! space, the isolation buffers it places are **sufficient** (the recomputed
//! domain is hazard-free) and **minimal** (removing any placed buffer
//! re-exposes at least one hazard).

use elastic_core::transform::{place_isolation_buffers, remove_buffer, retraction_domain};
use elastic_core::{Netlist, NodeKind};
use elastic_gen::proptest_bridge::{any_netlist, netlist_with};
use elastic_gen::GenConfig;
use proptest::prelude::*;

/// Every non-early mux of the netlist, analysed and (on a clone) isolated.
fn check_placement(netlist: &Netlist, seed: u64) {
    let muxes: Vec<_> = netlist
        .live_nodes()
        .filter(|n| matches!(&n.kind, NodeKind::Mux(spec) if !spec.early_eval))
        .map(|n| n.id)
        .collect();
    for mux in muxes {
        let domain = retraction_domain(netlist, mux).unwrap();
        let mut isolated = netlist.clone();
        let placed = match place_isolation_buffers(&mut isolated, mux) {
            Ok(placed) => placed,
            // A hazard entry inside a lazy fork's rendezvous region refuses
            // latency insertion — the speculate pass refuses such muxes
            // outright, so there is no placement to check.
            Err(elastic_core::CoreError::Precondition { .. }) => continue,
            Err(other) => panic!("seed {seed:#x}: {other}"),
        };
        if domain.is_safe() {
            assert!(placed.is_empty(), "seed {seed:#x}: safe domains place nothing");
            continue;
        }
        // Sufficient: no hazards survive the placement.
        assert!(
            retraction_domain(&isolated, mux).unwrap().is_safe(),
            "seed {seed:#x}: placement must make mux {mux} safe"
        );
        assert!(isolated.validate().is_ok());
        // Minimal: each placed buffer, removed on its own, re-exposes a
        // hazard (placement is recomputed front-first, so every buffer
        // guards exactly the fork it sits in front of).
        for &buffer in &placed {
            let mut without = isolated.clone();
            remove_buffer(&mut without, buffer).unwrap();
            assert!(
                !retraction_domain(&without, mux).unwrap().is_safe(),
                "seed {seed:#x}: buffer {buffer} on mux {mux} is redundant"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn placed_isolation_buffers_are_minimal_and_sufficient(generated in any_netlist()) {
        check_placement(&generated.netlist, generated.profile.seed);
    }

    #[test]
    fn placement_holds_on_loop_heavy_netlists(generated in netlist_with(GenConfig::loops())) {
        check_placement(&generated.netlist, generated.profile.seed);
    }
}
