//! Speculation preconditions on generated topologies.
//!
//! `find_select_cycles` is the structural gate of the composite `speculate`
//! pass; here its DFS is checked against an independent brute-force simple-
//! cycle enumeration on generated loop netlists, and the no-op contract of
//! `speculate` on cycle-free designs is pinned.

use std::collections::BTreeSet;

use elastic_core::transform::{find_select_cycles, speculate, SpeculateOptions};
use elastic_core::{Netlist, NodeId, NodeKind, Port};
use elastic_gen::{generate, GenConfig};

/// Independent brute force: enumerate every simple path `mux → … → select
/// driver` over a plain adjacency list built straight from the channel set
/// (no reuse of `Netlist::successors`), then close each path into a cycle.
/// Exponential, fine at generated-netlist sizes.
fn brute_force_select_cycles(netlist: &Netlist, mux: NodeId) -> BTreeSet<Vec<NodeId>> {
    let select_driver = match netlist.channel_into(Port::input(mux, 0)) {
        Some(channel) => channel.from.node,
        None => return BTreeSet::new(),
    };
    // Adjacency from raw channels.
    let mut successors: std::collections::BTreeMap<NodeId, BTreeSet<NodeId>> = Default::default();
    for channel in netlist.live_channels() {
        successors.entry(channel.from.node).or_default().insert(channel.to.node);
    }

    let mut cycles = BTreeSet::new();
    let mut path = vec![mux];
    fn extend(
        successors: &std::collections::BTreeMap<NodeId, BTreeSet<NodeId>>,
        target: NodeId,
        mux: NodeId,
        path: &mut Vec<NodeId>,
        cycles: &mut BTreeSet<Vec<NodeId>>,
    ) {
        let current = *path.last().expect("path never empty");
        let Some(next_nodes) = successors.get(&current) else { return };
        for &next in next_nodes {
            if next == target {
                let mut cycle = path.clone();
                cycle.push(target);
                cycles.insert(cycle);
                continue;
            }
            if next == mux || path.contains(&next) {
                continue;
            }
            path.push(next);
            extend(successors, target, mux, path, cycles);
            path.pop();
        }
    }
    extend(&successors, select_driver, mux, &mut path, &mut cycles);
    cycles
}

fn muxes(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .live_nodes()
        .filter(|node| matches!(node.kind, NodeKind::Mux(_)))
        .map(|node| node.id)
        .collect()
}

#[test]
fn find_select_cycles_agrees_with_brute_force_on_generated_loops() {
    let mut loop_muxes_checked = 0;
    for seed in 0..30u64 {
        let generated = generate(seed, &GenConfig::loops());
        for mux in muxes(&generated.netlist) {
            let reported: BTreeSet<Vec<NodeId>> =
                find_select_cycles(&generated.netlist, mux).unwrap().into_iter().collect();
            let brute = brute_force_select_cycles(&generated.netlist, mux);
            assert_eq!(reported, brute, "seed {seed}, mux {mux}: DFS and brute force disagree");
            if !reported.is_empty() {
                loop_muxes_checked += 1;
                // Every reported cycle starts at the mux and ends at the
                // select driver.
                for cycle in &reported {
                    assert_eq!(cycle.first(), Some(&mux));
                    let driver = generated
                        .netlist
                        .channel_into(Port::input(mux, 0))
                        .map(|channel| channel.from.node);
                    assert_eq!(cycle.last().copied(), driver);
                }
            }
        }
        // Every gadget-built loop mux must actually report a cycle.
        for &mux in &generated.profile.select_loop_muxes {
            assert!(
                !find_select_cycles(&generated.netlist, mux).unwrap().is_empty(),
                "seed {seed}: gadget loop mux {mux} lost its select cycle"
            );
        }
    }
    assert!(loop_muxes_checked >= 30, "only {loop_muxes_checked} loop muxes checked");
}

#[test]
fn find_select_cycles_is_empty_on_generated_pipelines() {
    for seed in 0..30u64 {
        let generated = generate(seed, &GenConfig::pipelines());
        for mux in muxes(&generated.netlist) {
            assert!(
                find_select_cycles(&generated.netlist, mux).unwrap().is_empty(),
                "seed {seed}: a pipeline mux reported a select cycle"
            );
            assert!(brute_force_select_cycles(&generated.netlist, mux).is_empty());
        }
    }
}

#[test]
fn speculate_on_cycle_free_netlists_is_a_rejected_no_op() {
    let mut rejected = 0;
    for seed in 0..40u64 {
        let generated = generate(seed, &GenConfig::default());
        for mux in muxes(&generated.netlist) {
            if !find_select_cycles(&generated.netlist, mux).unwrap().is_empty() {
                continue;
            }
            let before = generated.netlist.clone();
            let mut candidate = generated.netlist.clone();
            let error = speculate(&mut candidate, mux, &SpeculateOptions::default())
                .expect_err("cycle-free speculation must be rejected without allow_acyclic");
            assert!(error.to_string().contains("no cycle"), "seed {seed}: {error}");
            assert_eq!(candidate, before, "a rejected speculation must not mutate the netlist");
            rejected += 1;
        }
    }
    assert!(rejected >= 10, "only {rejected} cycle-free muxes encountered");
}

#[test]
fn speculate_rejects_non_mux_nodes_on_generated_netlists() {
    let generated = generate(11, &GenConfig::loops());
    for node in generated.netlist.live_nodes() {
        if matches!(node.kind, NodeKind::Mux(_)) {
            continue;
        }
        let mut candidate = generated.netlist.clone();
        assert!(
            speculate(&mut candidate, node.id, &SpeculateOptions::default()).is_err(),
            "{} must not be speculatable",
            node.name
        );
        assert!(find_select_cycles(&generated.netlist, node.id).is_err());
    }
}
