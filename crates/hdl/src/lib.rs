//! # elastic-hdl
//!
//! Structural HDL emission for elastic control networks.
//!
//! The paper's exploration toolkit can "generate a Verilog netlist of the
//! elastic controller, a blif model for logic synthesis with SIS or a NuSMV
//! model for verification" at any point of the exploration. This crate plays
//! that role for the Rust reproduction: given a [`elastic_core::Netlist`] it
//! emits
//!
//! * a structural **Verilog** module ([`verilog::emit_verilog`]) instantiating
//!   one parameterised control primitive per node (EB controller, join,
//!   eager fork, early-evaluation mux controller, speculative shared-module
//!   controller, the depth-parameterised `elastic_commit` in-order commit
//!   stage) wired by the `(V+, S+, V-, S-)` bundles of every channel,
//!   together with the library of primitive definitions
//!   ([`verilog::primitive_library`]);
//! * a **BLIF** view of the control network ([`blif::emit_blif`]) for
//!   logic-synthesis-style consumers.
//!
//! The emitted text is deterministic (stable ordering) so it can be snapshot
//! tested and diffed across transformations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blif;
pub mod verilog;

pub use blif::emit_blif;
pub use verilog::{emit_verilog, primitive_library};

/// Sanitises an instance or wire name into a Verilog/BLIF-safe identifier.
pub fn sanitize_identifier(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (index, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if ok {
            if index == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_are_sanitised() {
        assert_eq!(sanitize_identifier("mux_out"), "mux_out");
        assert_eq!(sanitize_identifier("n1.out0->n2.in0"), "n1_out0__n2_in0");
        assert_eq!(sanitize_identifier("0weird"), "_0weird");
        assert_eq!(sanitize_identifier(""), "_");
    }
}
