//! # elastic-predict
//!
//! Prediction policies (*schedulers*) for speculative shared modules.
//!
//! Section 4.1.1 of *Speculation in Elastic Systems* leaves the prediction
//! strategy open: "the scheduler can implement prediction algorithms of
//! different complexity, from always predicting one of the channels to more
//! advanced algorithms such as the state-of-the-art branch prediction in
//! modern micro-processors". This crate provides that spectrum:
//!
//! | policy | type | paper analogue |
//! |---|---|---|
//! | always the same channel | [`elastic_core::scheduler::StaticScheduler`] | "always predicting one of the channels" |
//! | rotate fairly | [`RoundRobinScheduler`] | non-speculative sharing baseline |
//! | last outcome | [`LastTakenScheduler`] | 1-bit branch predictor |
//! | two-bit saturating counter | [`TwoBitScheduler`] | classic bimodal predictor |
//! | global-history indexed | [`CorrelatingScheduler`] | gshare-style predictor |
//! | fixed sequence | [`SequenceScheduler`] | the `Sched` row of Table 1 |
//! | error-driven replay | [`ErrorReplayScheduler`] | Sections 5.1 / 5.2 ("listen to the outcome of the SECDED unit") |
//! | confidence-throttled run-ahead | [`ConfidenceScheduler`] | adaptive run-ahead throttling with hedged mispredict recovery |
//! | adversarial random | [`RandomScheduler`] | verification fuzzing (leads-to is enforced by the controller) |
//!
//! All schedulers implement [`elastic_core::Scheduler`]; [`from_kind`] builds
//! the policy named by a netlist's [`elastic_core::SchedulerKind`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod policies;
mod stats;

pub use policies::{
    from_kind, ConfidenceScheduler, CorrelatingScheduler, ErrorReplayScheduler, LastTakenScheduler,
    RandomScheduler, RoundRobinScheduler, SequenceScheduler, TwoBitScheduler,
};
pub use stats::{Instrumented, PredictionStats};
