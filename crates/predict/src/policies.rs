//! Concrete scheduler implementations.

use elastic_core::scheduler::{Scheduler, SharedFeedback, StaticScheduler};
use elastic_core::SchedulerKind;

/// Rotates the prediction over all user channels, one per cycle.
///
/// This is fair, starvation-free sharing without speculation: every channel
/// gets the unit every `users` cycles regardless of demand. It is the
/// baseline the speculative policies are compared against.
#[derive(Debug, Clone)]
pub struct RoundRobinScheduler {
    users: usize,
    current: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler over `users` channels.
    pub fn new(users: usize) -> Self {
        RoundRobinScheduler { users: users.max(1), current: 0 }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn prediction(&self) -> usize {
        self.current
    }

    fn tick(&mut self, _feedback: &SharedFeedback) {
        self.current = (self.current + 1) % self.users;
    }

    fn reset(&mut self) {
        self.current = 0;
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Predicts the channel that the consumer most recently required.
///
/// Equivalent to a 1-bit (last-outcome) branch predictor: it captures
/// strongly biased select streams and streaks, and mispredicts twice per
/// alternation.
#[derive(Debug, Clone)]
pub struct LastTakenScheduler {
    users: usize,
    current: usize,
}

impl LastTakenScheduler {
    /// Creates a last-taken scheduler over `users` channels, initially
    /// predicting channel 0.
    pub fn new(users: usize) -> Self {
        LastTakenScheduler { users: users.max(1), current: 0 }
    }
}

impl Scheduler for LastTakenScheduler {
    fn prediction(&self) -> usize {
        self.current
    }

    fn tick(&mut self, feedback: &SharedFeedback) {
        if let Some(resolved) = feedback.resolved {
            self.current = resolved % self.users;
        } else if feedback.mispredicted() && self.users == 2 {
            // A retry without an observable resolution still tells a
            // two-channel scheduler which side to switch to.
            self.current = 1 - self.current;
        }
    }

    fn reset(&mut self) {
        self.current = 0;
    }

    fn name(&self) -> &str {
        "last-taken"
    }
}

/// Two-bit saturating-counter predictor over two user channels.
///
/// The counter counts towards channel 1: values 0/1 predict channel 0,
/// values 2/3 predict channel 1. Hysteresis means a single anomalous select
/// does not flip a strongly established prediction — the classic bimodal
/// branch predictor behaviour.
#[derive(Debug, Clone)]
pub struct TwoBitScheduler {
    counter: u8,
    users: usize,
}

impl TwoBitScheduler {
    /// Creates a two-bit predictor (initially weakly predicting channel 0).
    pub fn new(users: usize) -> Self {
        TwoBitScheduler { counter: 1, users: users.max(2) }
    }
}

impl Scheduler for TwoBitScheduler {
    fn prediction(&self) -> usize {
        usize::from(self.counter >= 2) % self.users
    }

    fn tick(&mut self, feedback: &SharedFeedback) {
        let outcome = match feedback.resolved {
            Some(resolved) => Some(resolved != 0),
            None if feedback.mispredicted() => Some(self.prediction() == 0),
            None => None,
        };
        match outcome {
            Some(true) => self.counter = (self.counter + 1).min(3),
            Some(false) => self.counter = self.counter.saturating_sub(1),
            None => {}
        }
    }

    fn reset(&mut self) {
        self.counter = 1;
    }

    fn name(&self) -> &str {
        "two-bit"
    }
}

/// Global-history indexed (gshare-style) predictor over two user channels.
///
/// A register of the last `history_bits` resolved selects indexes a table of
/// two-bit counters; the indexed counter provides the prediction. Captures
/// periodic select patterns that defeat the bimodal predictor.
#[derive(Debug, Clone)]
pub struct CorrelatingScheduler {
    history: usize,
    history_bits: u8,
    table: Vec<u8>,
}

impl CorrelatingScheduler {
    /// Creates a predictor with a `history_bits`-deep global history
    /// (1 ..= 16 bits).
    pub fn new(history_bits: u8) -> Self {
        let history_bits = history_bits.clamp(1, 16);
        CorrelatingScheduler { history: 0, history_bits, table: vec![1; 1 << history_bits] }
    }

    fn index(&self) -> usize {
        self.history & ((1 << self.history_bits) - 1)
    }
}

impl Scheduler for CorrelatingScheduler {
    fn prediction(&self) -> usize {
        usize::from(self.table[self.index()] >= 2)
    }

    fn tick(&mut self, feedback: &SharedFeedback) {
        let outcome = match feedback.resolved {
            Some(resolved) => Some(resolved != 0),
            None if feedback.mispredicted() => Some(self.prediction() == 0),
            None => None,
        };
        if let Some(taken) = outcome {
            let index = self.index();
            if taken {
                self.table[index] = (self.table[index] + 1).min(3);
            } else {
                self.table[index] = self.table[index].saturating_sub(1);
            }
            self.history = (self.history << 1) | usize::from(taken);
        }
    }

    fn reset(&mut self) {
        self.history = 0;
        self.table.iter_mut().for_each(|c| *c = 1);
    }

    fn name(&self) -> &str {
        "correlating"
    }
}

/// Follows an explicit per-cycle prediction sequence (repeating the last
/// entry once exhausted). Used to reproduce the `Sched` row of Table 1.
#[derive(Debug, Clone)]
pub struct SequenceScheduler {
    sequence: Vec<usize>,
    position: usize,
}

impl SequenceScheduler {
    /// Creates a scheduler that follows `sequence` cycle by cycle.
    pub fn new(sequence: Vec<usize>) -> Self {
        let sequence = if sequence.is_empty() { vec![0] } else { sequence };
        SequenceScheduler { sequence, position: 0 }
    }
}

impl Scheduler for SequenceScheduler {
    fn prediction(&self) -> usize {
        self.sequence[self.position.min(self.sequence.len() - 1)]
    }

    fn tick(&mut self, _feedback: &SharedFeedback) {
        if self.position + 1 < self.sequence.len() {
            self.position += 1;
        }
    }

    fn reset(&mut self) {
        self.position = 0;
    }

    fn name(&self) -> &str {
        "sequence"
    }
}

/// Error-driven replay: always predict channel 0 (the speculative fast path);
/// after a misprediction, rotate through the other channels until the
/// consumer accepts a result, then fall back to channel 0.
///
/// This is the policy of both paper examples: the variable-latency unit
/// always speculates that the approximation is correct, and the resilient
/// adder always speculates that no soft error occurred; on error the
/// computation is replayed once with the exact / corrected value.
///
/// A refused result is not proof of an error: the consumer stops the
/// predicted output both when it demands a different channel *and* when it
/// is merely back-pressured, and the two are indistinguishable at the shared
/// module's boundary. The policy therefore treats every transfer — whichever
/// channel it lands on — as the point of re-synchronisation: the consumer's
/// demand for the current item is met, so the next item is a fresh
/// fast-path speculation. While no transfer resolves the refusal, hunting
/// across channels guarantees the demanded one is offered within `users`
/// cycles of the back-pressure draining, so recovery never has to wait for
/// the shared module's starvation override.
#[derive(Debug, Clone, Default)]
pub struct ErrorReplayScheduler {
    replay: Option<usize>,
}

impl ErrorReplayScheduler {
    /// Creates the error-replay scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for ErrorReplayScheduler {
    fn prediction(&self) -> usize {
        self.replay.unwrap_or(0)
    }

    fn tick(&mut self, feedback: &SharedFeedback) {
        if feedback.resolved.is_some() {
            // A result transferred: the consumer's demand for this item is
            // met (on whichever channel), so the next item is a fresh
            // fast-path speculation.
            self.replay = None;
        } else if feedback.mispredicted() {
            // The offered result was refused with nothing transferring: the
            // consumer either demands another channel or is back-pressured.
            // Hunt to the next channel; the first transfer re-synchronises
            // onto the fast path either way.
            self.replay = Some((feedback.predicted + 1) % feedback.users().max(2));
        }
    }

    fn reset(&mut self) {
        self.replay = None;
    }

    fn name(&self) -> &str {
        "error-replay"
    }
}

/// Confidence-throttled run-ahead with periodic hedging (the
/// [`SchedulerKind::Confidence`] policy).
///
/// The policy keeps a *preferred* channel and lets the shared module run
/// ahead on it, but once every `2 + confidence` cycles it *hedges*: it
/// grants the next channel for one cycle, parking a speculative result in
/// that channel's commit lane. Because commit-lane offers are persistent,
/// the hedge sits there until the consumer either squashes it (select stayed
/// on the preferred channel — cheap, the module had slack) or commits it
/// (select switched — the demanded result is already parked, so a periodic
/// mispredict costs *zero* recovery cycles instead of a full round trip
/// through the starvation override).
///
/// Evidence is read from anti-token pass-throughs, the only select
/// observations a shared module gets behind a deep commit stage: a kill
/// passing through an *empty non-preferred* lane means the consumer
/// committed a preferred-channel token (confirming — confidence rises,
/// saturating at `max_confidence`, stretching the hedge period), while a
/// kill passing through the *preferred* lane means the consumer demanded
/// another channel (contrary — confidence resets and the next hedge fires
/// immediately). Two contrary observations in a row flip the preferred
/// channel, so a genuinely inverted bias is re-learned rather than hedged
/// against forever.
///
/// This is the ROADMAP "confidence-adaptive commit scheduling" carry-over:
/// with this policy a depth-4 commit stage matches or beats the depth-2
/// sweet spot on the biased bursty-consumer workload of
/// `BENCH_commit_depth.json` (pinned by the explorer regression tests),
/// because deeper lanes keep their burst-absorbing head-room without paying
/// the deep-run-ahead recovery penalty on the periodic mispredict.
#[derive(Debug, Clone)]
pub struct ConfidenceScheduler {
    users: usize,
    max_confidence: u32,
    confidence: u32,
    preferred: usize,
    since_hedge: u32,
    wrong_streak: u32,
}

impl ConfidenceScheduler {
    /// Creates a confidence-throttled scheduler over `users` channels.
    pub fn new(users: usize, max_confidence: u8) -> Self {
        ConfidenceScheduler {
            users: users.max(1),
            max_confidence: u32::from(max_confidence),
            confidence: 0,
            preferred: 0,
            since_hedge: 0,
            wrong_streak: 0,
        }
    }

    fn other(&self) -> usize {
        (self.preferred + 1) % self.users
    }

    /// Current hedge period: run ahead on the preferred channel for this
    /// many cycles between hedges.
    fn period(&self) -> u32 {
        2 + self.confidence
    }
}

impl Scheduler for ConfidenceScheduler {
    fn prediction(&self) -> usize {
        if self.users > 1 && self.since_hedge >= self.period() {
            self.other()
        } else {
            self.preferred
        }
    }

    fn tick(&mut self, feedback: &SharedFeedback) {
        if self.users < 2 {
            return;
        }
        let hedging = self.prediction() != self.preferred;
        let other = self.other();
        // A kill passing through an empty non-preferred lane: the consumer
        // committed a preferred-channel token. Confirming evidence.
        let correct = feedback
            .output_killed
            .iter()
            .enumerate()
            .any(|(user, &killed)| killed && user != self.preferred);
        // A kill passing through the preferred lane while it sat empty: the
        // consumer demanded another channel. Contrary evidence.
        let wrong = feedback.output_killed.get(self.preferred).copied().unwrap_or(false);
        if correct {
            self.confidence = (self.confidence + 1).min(self.max_confidence);
            self.wrong_streak = 0;
        }
        if wrong {
            self.confidence = 0;
            // Hedge immediately: the demand we just missed is the best
            // predictor of the next one.
            self.since_hedge = self.period();
            self.wrong_streak += 1;
            if self.wrong_streak >= 2 {
                self.preferred = other;
                self.wrong_streak = 0;
                self.since_hedge = 0;
            }
            return;
        }
        if hedging && feedback.output_transfer.get(other).copied().unwrap_or(false) {
            // The hedge parked a result: restart the cadence.
            self.since_hedge = 0;
        } else {
            // Clamp so a stalled stretch cannot bank more than one hedge.
            self.since_hedge = self.since_hedge.saturating_add(1).min(self.period() + 1);
        }
    }

    fn reset(&mut self) {
        self.confidence = 0;
        self.preferred = 0;
        self.since_hedge = 0;
        self.wrong_streak = 0;
    }

    fn name(&self) -> &str {
        "confidence"
    }
}

/// An adversarial scheduler that predicts a pseudo-random channel each cycle.
///
/// On its own this policy does not satisfy the leads-to (no-starvation)
/// property; it exists to stress the shared-module controller, whose
/// starvation override must keep the system live regardless (verified by the
/// `elastic-verify` crate).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    users: usize,
    state: u64,
    seed: u64,
    current: usize,
}

impl RandomScheduler {
    /// Creates a random scheduler over `users` channels with a deterministic seed.
    pub fn new(users: usize, seed: u64) -> Self {
        let seed = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        RandomScheduler { users: users.max(1), state: seed, seed, current: 0 }
    }

    fn advance(&mut self) -> u64 {
        // xorshift64* — deterministic, seedable, good enough for fuzzing.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Scheduler for RandomScheduler {
    fn prediction(&self) -> usize {
        self.current
    }

    fn tick(&mut self, _feedback: &SharedFeedback) {
        let draw = self.advance();
        self.current = (draw % self.users as u64) as usize;
    }

    fn reset(&mut self) {
        self.state = self.seed;
        self.current = 0;
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Instantiates the scheduler named by a netlist's [`SchedulerKind`].
///
/// `users` is the number of user channels of the shared module the policy
/// will serve.
pub fn from_kind(kind: &SchedulerKind, users: usize) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::Static(channel) => Box::new(StaticScheduler::new(*channel % users.max(1))),
        SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new(users)),
        SchedulerKind::LastTaken => Box::new(LastTakenScheduler::new(users)),
        SchedulerKind::TwoBit => Box::new(TwoBitScheduler::new(users)),
        SchedulerKind::Correlating { history_bits } => {
            Box::new(CorrelatingScheduler::new(*history_bits))
        }
        SchedulerKind::Sequence(sequence) => Box::new(SequenceScheduler::new(sequence.clone())),
        SchedulerKind::ErrorReplay => Box::new(ErrorReplayScheduler::new()),
        SchedulerKind::Confidence { max_confidence } => {
            Box::new(ConfidenceScheduler::new(users, *max_confidence))
        }
        // `SchedulerKind` is non-exhaustive: unknown kinds degrade to the
        // simplest safe policy.
        _ => Box::new(StaticScheduler::new(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback_with_resolution(users: usize, predicted: usize, resolved: usize) -> SharedFeedback {
        let mut fb = SharedFeedback::new(users);
        fb.predicted = predicted;
        fb.resolved = Some(resolved);
        fb.output_transfer[resolved] = true;
        fb
    }

    fn feedback_with_retry(users: usize, predicted: usize) -> SharedFeedback {
        let mut fb = SharedFeedback::new(users);
        fb.predicted = predicted;
        fb.output_retry[predicted] = true;
        fb
    }

    #[test]
    fn round_robin_visits_every_channel() {
        let mut s = RoundRobinScheduler::new(3);
        let fb = SharedFeedback::new(3);
        let mut visited = Vec::new();
        for _ in 0..6 {
            visited.push(s.prediction());
            s.tick(&fb);
        }
        assert_eq!(visited, vec![0, 1, 2, 0, 1, 2]);
        s.reset();
        assert_eq!(s.prediction(), 0);
    }

    #[test]
    fn last_taken_follows_resolutions() {
        let mut s = LastTakenScheduler::new(2);
        assert_eq!(s.prediction(), 0);
        s.tick(&feedback_with_resolution(2, 0, 1));
        assert_eq!(s.prediction(), 1);
        s.tick(&feedback_with_resolution(2, 1, 1));
        assert_eq!(s.prediction(), 1);
        s.tick(&feedback_with_retry(2, 1));
        assert_eq!(s.prediction(), 0, "a retry on the prediction flips a 2-way scheduler");
    }

    #[test]
    fn two_bit_scheduler_needs_two_mispredictions_to_flip() {
        let mut s = TwoBitScheduler::new(2);
        assert_eq!(s.prediction(), 0);
        s.tick(&feedback_with_resolution(2, 0, 1));
        assert_eq!(s.prediction(), 1, "counter moved from 1 to 2");
        // Two consecutive channel-0 resolutions needed to flip back firmly.
        s.tick(&feedback_with_resolution(2, 1, 1));
        s.tick(&feedback_with_resolution(2, 1, 1));
        assert_eq!(s.prediction(), 1);
        s.tick(&feedback_with_resolution(2, 1, 0));
        assert_eq!(s.prediction(), 1, "hysteresis absorbs a single anomaly");
        s.tick(&feedback_with_resolution(2, 1, 0));
        s.tick(&feedback_with_resolution(2, 1, 0));
        assert_eq!(s.prediction(), 0);
    }

    #[test]
    fn correlating_scheduler_learns_an_alternating_pattern() {
        let mut s = CorrelatingScheduler::new(2);
        // Train on a strict 0,1,0,1,… select stream.
        let mut correct = 0;
        let mut total = 0;
        let mut expected = 0usize;
        for _ in 0..200 {
            if s.prediction() == expected {
                correct += 1;
            }
            total += 1;
            s.tick(&feedback_with_resolution(2, s.prediction(), expected));
            expected = 1 - expected;
        }
        let accuracy = f64::from(correct) / f64::from(total);
        assert!(accuracy > 0.9, "correlating predictor should learn alternation, got {accuracy}");
    }

    #[test]
    fn sequence_scheduler_replays_table1_schedule() {
        let mut s = SequenceScheduler::new(vec![0, 1, 0, 1, 0, 1, 0]);
        let fb = SharedFeedback::new(2);
        let produced: Vec<usize> = (0..7)
            .map(|_| {
                let p = s.prediction();
                s.tick(&fb);
                p
            })
            .collect();
        assert_eq!(produced, vec![0, 1, 0, 1, 0, 1, 0]);
        // Exhausted sequences repeat the last entry.
        assert_eq!(s.prediction(), 0);
        s.reset();
        assert_eq!(s.prediction(), 0);
    }

    #[test]
    fn empty_sequences_default_to_channel_zero() {
        let s = SequenceScheduler::new(Vec::new());
        assert_eq!(s.prediction(), 0);
    }

    #[test]
    fn error_replay_returns_to_the_fast_path() {
        let mut s = ErrorReplayScheduler::new();
        assert_eq!(s.prediction(), 0);
        // Misprediction: replay channel 1 for one cycle.
        s.tick(&feedback_with_retry(2, 0));
        assert_eq!(s.prediction(), 1);
        // Replay succeeded: back to channel 0.
        s.tick(&feedback_with_resolution(2, 1, 1));
        assert_eq!(s.prediction(), 0);
    }

    #[test]
    fn error_replay_resynchronises_after_back_pressure() {
        let mut s = ErrorReplayScheduler::new();
        // A stall storm refuses every offered result without resolving the
        // consumer's demand; the policy hunts between the channels instead
        // of wedging on either one.
        let mut produced = Vec::new();
        for _ in 0..6 {
            let p = s.prediction();
            produced.push(p);
            s.tick(&feedback_with_retry(2, p));
        }
        assert_eq!(produced, vec![0, 1, 0, 1, 0, 1]);
        // The storm drains and a fast-path token finally transfers while the
        // policy is still predicting the replay channel. It must return to
        // the fast path — historically the replay target could never reach
        // channel 0 again, livelocking post-storm recovery onto the shared
        // module's starvation override (one transfer per override window).
        s.tick(&feedback_with_retry(2, 0));
        assert_eq!(s.prediction(), 1);
        s.tick(&feedback_with_resolution(2, 1, 0));
        assert_eq!(s.prediction(), 0, "a resolved transfer re-arms the fast path");
    }

    #[test]
    fn random_scheduler_is_deterministic_and_in_range() {
        let mut a = RandomScheduler::new(3, 7);
        let mut b = RandomScheduler::new(3, 7);
        let fb = SharedFeedback::new(3);
        for _ in 0..100 {
            assert_eq!(a.prediction(), b.prediction());
            assert!(a.prediction() < 3);
            a.tick(&fb);
            b.tick(&fb);
        }
        a.reset();
        let mut c = RandomScheduler::new(3, 7);
        for _ in 0..10 {
            assert_eq!(a.prediction(), c.prediction());
            a.tick(&fb);
            c.tick(&fb);
        }
    }

    #[test]
    fn factory_builds_every_kind() {
        let kinds = vec![
            SchedulerKind::Static(1),
            SchedulerKind::RoundRobin,
            SchedulerKind::LastTaken,
            SchedulerKind::TwoBit,
            SchedulerKind::Correlating { history_bits: 4 },
            SchedulerKind::Sequence(vec![0, 1]),
            SchedulerKind::ErrorReplay,
            SchedulerKind::Confidence { max_confidence: 2 },
        ];
        for kind in kinds {
            let scheduler = from_kind(&kind, 2);
            assert!(scheduler.prediction() < 2, "{kind:?}");
            assert!(!scheduler.name().is_empty());
        }
    }

    #[test]
    fn confidence_hedges_on_a_cadence() {
        let mut s = ConfidenceScheduler::new(2, 2);
        let quiet = SharedFeedback::new(2);
        // No evidence: confidence stays 0, so the period is 2 — the policy
        // predicts the preferred channel twice, then hedges channel 1.
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(s.prediction());
            s.tick(&quiet);
        }
        assert_eq!(seen, vec![0, 0, 1], "hedge fires after the period elapses");
        // The hedge parks a result: the cadence restarts.
        let mut parked = SharedFeedback::new(2);
        parked.predicted = 1;
        parked.output_transfer[1] = true;
        parked.resolved = Some(1);
        s.tick(&parked);
        assert_eq!(s.prediction(), 0, "after a parked hedge the policy returns to preferred");
    }

    #[test]
    fn confidence_stretches_the_period_and_resets_on_contrary_evidence() {
        let mut s = ConfidenceScheduler::new(2, 4);
        // Confirming evidence: a kill passing through the non-preferred lane.
        let mut confirm = SharedFeedback::new(2);
        confirm.output_killed[1] = true;
        for _ in 0..4 {
            s.tick(&confirm);
        }
        assert_eq!(s.period(), 6, "confidence stretches the hedge period");
        // Contrary evidence: a kill passing through the preferred lane resets
        // the counter and schedules an immediate hedge.
        let mut contrary = SharedFeedback::new(2);
        contrary.output_killed[0] = true;
        s.tick(&contrary);
        assert_eq!(s.period(), 2);
        assert_eq!(s.prediction(), 1, "a contrary kill triggers an immediate hedge");
        // A second consecutive contrary kill flips the preferred channel.
        s.tick(&contrary);
        assert_eq!(s.prediction(), 1, "two contrary kills flip the preferred channel");
        assert_eq!(s.period(), 2, "a flip starts over with zero confidence");
    }

    #[test]
    fn confidence_is_safe_for_one_user() {
        let mut s = ConfidenceScheduler::new(1, 2);
        let fb = SharedFeedback::new(1);
        for _ in 0..10 {
            assert_eq!(s.prediction(), 0);
            s.tick(&fb);
        }
    }
}
