//! Prediction accuracy instrumentation.

use elastic_core::scheduler::{Scheduler, SharedFeedback};

/// Aggregate prediction statistics collected by [`Instrumented`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictionStats {
    /// Cycles in which the shared module had at least one waiting token
    /// (cycles in which the prediction mattered).
    pub active_cycles: u64,
    /// Cycles in which the consumer's requirement became observable and
    /// matched the prediction.
    pub correct: u64,
    /// Cycles in which a misprediction was detected (retry on the predicted
    /// output or an observable resolution that differs from the prediction).
    pub mispredictions: u64,
}

impl PredictionStats {
    /// Prediction accuracy over the cycles with an observable outcome,
    /// `None` when no outcome was ever observed.
    pub fn accuracy(&self) -> Option<f64> {
        let observed = self.correct + self.mispredictions;
        if observed == 0 {
            None
        } else {
            Some(self.correct as f64 / observed as f64)
        }
    }
}

/// Wraps any scheduler and records how often its predictions were right.
///
/// ```
/// use elastic_core::scheduler::{Scheduler, SharedFeedback, StaticScheduler};
/// use elastic_predict::Instrumented;
///
/// let mut scheduler = Instrumented::new(StaticScheduler::new(0));
/// let mut feedback = SharedFeedback::new(2);
/// feedback.input_valid[0] = true;
/// feedback.resolved = Some(0);
/// feedback.output_transfer[0] = true;
/// scheduler.tick(&feedback);
/// assert_eq!(scheduler.stats().correct, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Instrumented<S> {
    inner: S,
    stats: PredictionStats,
}

impl<S: Scheduler> Instrumented<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Instrumented { inner, stats: PredictionStats::default() }
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> PredictionStats {
        self.stats
    }

    /// Consumes the wrapper and returns the inner scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> Scheduler for Instrumented<S> {
    fn prediction(&self) -> usize {
        self.inner.prediction()
    }

    fn tick(&mut self, feedback: &SharedFeedback) {
        if feedback.input_valid.iter().any(|&v| v) {
            self.stats.active_cycles += 1;
        }
        if feedback.mispredicted() {
            self.stats.mispredictions += 1;
        } else if feedback.resolved == Some(feedback.predicted) {
            self.stats.correct += 1;
        }
        self.inner.tick(feedback);
    }

    fn reset(&mut self) {
        self.stats = PredictionStats::default();
        self.inner.reset();
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LastTakenScheduler;
    use elastic_core::scheduler::StaticScheduler;

    #[test]
    fn accuracy_counts_correct_and_wrong_outcomes() {
        let mut s = Instrumented::new(StaticScheduler::new(0));
        let mut correct = SharedFeedback::new(2);
        correct.predicted = 0;
        correct.resolved = Some(0);
        correct.input_valid[0] = true;
        let mut wrong = SharedFeedback::new(2);
        wrong.predicted = 0;
        wrong.resolved = Some(1);
        wrong.input_valid[1] = true;

        s.tick(&correct);
        s.tick(&correct);
        s.tick(&wrong);
        let stats = s.stats();
        assert_eq!(stats.correct, 2);
        assert_eq!(stats.mispredictions, 1);
        assert_eq!(stats.active_cycles, 3);
        assert!((stats.accuracy().unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_is_none_without_observations() {
        let s = Instrumented::new(LastTakenScheduler::new(2));
        assert_eq!(s.stats().accuracy(), None);
    }

    #[test]
    fn reset_clears_statistics_and_inner_state() {
        let mut s = Instrumented::new(LastTakenScheduler::new(2));
        let mut fb = SharedFeedback::new(2);
        fb.predicted = 0;
        fb.resolved = Some(1);
        fb.input_valid[1] = true;
        s.tick(&fb);
        assert_eq!(s.prediction(), 1);
        assert_eq!(s.stats().mispredictions, 1);
        s.reset();
        assert_eq!(s.prediction(), 0);
        assert_eq!(s.stats(), PredictionStats::default());
    }

    #[test]
    fn instrumentation_is_transparent_to_the_policy() {
        let mut plain = LastTakenScheduler::new(2);
        let mut wrapped = Instrumented::new(LastTakenScheduler::new(2));
        let mut fb = SharedFeedback::new(2);
        fb.resolved = Some(1);
        for _ in 0..5 {
            assert_eq!(plain.prediction(), wrapped.prediction());
            plain.tick(&fb);
            wrapped.tick(&fb);
        }
        assert_eq!(wrapped.name(), "last-taken");
    }
}
