//! Integrity-checked, content-addressed result cache.
//!
//! Results are keyed by [`CacheKey`] — the canonical structural hash of the
//! netlist (see [`crate::hash`]) plus a pipeline discriminant — so two
//! submissions of the *same design* under different node numberings or
//! names share one entry, while the same design pushed through a different
//! pipeline does not.
//!
//! The cache holds opaque serialized payloads, each stored alongside an
//! FNV-1a checksum taken at insertion. Every read re-checksums the payload:
//! a mismatch (bit rot, a buggy writer, the chaos test's fault hook)
//! **evicts the entry and reports a miss**, forcing a recompute — the cache
//! may lose work, but it can never serve a corrupted report as truth.
//!
//! Shards are independently locked and FIFO-bounded; admission never blocks
//! on other shards and memory stays bounded under churn.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hash::fnv;

/// Content address of a pipeline result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical structural hash of the submitted netlist.
    pub structural: u64,
    /// Discriminant of the pipeline (and its semantically relevant
    /// options) the result came from.
    pub pipeline: u64,
}

impl CacheKey {
    fn shard(self, shards: usize) -> usize {
        // Mix both halves so keys differing only in `pipeline` spread too.
        let mixed = self.structural ^ self.pipeline.rotate_left(32);
        // splitmix-style finalizer: the structural hash is already uniform,
        // but don't rely on it.
        let mut z = mixed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % shards
    }
}

#[derive(Debug)]
struct Entry {
    payload: Vec<u8>,
    checksum: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<CacheKey, Entry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// Counters exposed by [`ResultCache::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads that returned a verified payload.
    pub hits: u64,
    /// Reads that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries displaced by the FIFO capacity bound.
    pub capacity_evictions: u64,
    /// Entries evicted because their checksum no longer matched.
    pub integrity_evictions: u64,
}

/// Result of a full-cache integrity sweep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheAudit {
    /// Entries that verified clean.
    pub clean: usize,
    /// Entries that failed verification (evicted by the sweep).
    pub corrupted: usize,
}

/// Sharded, bounded, checksum-verified result cache.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    capacity_evictions: AtomicU64,
    integrity_evictions: AtomicU64,
}

impl ResultCache {
    /// Creates a cache with `shards` independent locks and room for about
    /// `capacity` entries overall (rounded up to a multiple of the shard
    /// count; both arguments are clamped to at least 1).
    pub fn new(shards: usize, capacity: usize) -> ResultCache {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.max(1).div_ceil(shards);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            capacity_evictions: AtomicU64::new(0),
            integrity_evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Stores a payload under `key`, checksumming it for later
    /// verification. Replacing an existing entry refreshes its FIFO slot.
    pub fn insert(&self, key: CacheKey, payload: Vec<u8>) {
        let checksum = fnv(&payload);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.entries.insert(key, Entry { payload, checksum }).is_none() {
            shard.order.push_back(key);
        } else {
            shard.order.retain(|&queued| queued != key);
            shard.order.push_back(key);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.entries.len() > self.capacity_per_shard {
            let Some(oldest) = shard.order.pop_front() else { break };
            if shard.entries.remove(&oldest).is_some() {
                self.capacity_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Returns the verified payload for `key`, or `None` on a miss.
    ///
    /// A present-but-corrupt entry is evicted and reported as a miss — the
    /// caller recomputes and re-inserts, which is exactly the recovery path
    /// for silent corruption.
    pub fn get(&self, key: CacheKey) -> Option<Vec<u8>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.entries.get(&key) {
            Some(entry) if fnv(&entry.payload) == entry.checksum => {
                let payload = entry.payload.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Some(_) => {
                shard.entries.remove(&key);
                shard.order.retain(|&queued| queued != key);
                self.integrity_evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            capacity_evictions: self.capacity_evictions.load(Ordering::Relaxed),
            integrity_evictions: self.integrity_evictions.load(Ordering::Relaxed),
        }
    }

    /// Re-verifies every resident entry, evicting any that fail. The chaos
    /// acceptance test runs this after a faulted campaign to prove no
    /// corruption survived into the cache.
    pub fn audit(&self) -> CacheAudit {
        let mut audit = CacheAudit::default();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let corrupt: Vec<CacheKey> = shard
                .entries
                .iter()
                .filter(|(_, entry)| fnv(&entry.payload) != entry.checksum)
                .map(|(&key, _)| key)
                .collect();
            audit.clean += shard.entries.len() - corrupt.len();
            for key in corrupt {
                shard.entries.remove(&key);
                shard.order.retain(|&queued| queued != key);
                self.integrity_evictions.fetch_add(1, Ordering::Relaxed);
                audit.corrupted += 1;
            }
        }
        audit
    }

    /// Fault-injection hook: flips one byte of the stored payload for
    /// `key`, returning whether an entry was there to corrupt. Pairs with
    /// the storm/panic self-test hooks from the fault campaign — the tests
    /// use it to prove corruption is *detected and recomputed*, never
    /// served.
    pub fn corrupt_entry(&self, key: CacheKey) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.entries.get_mut(&key) {
            Some(entry) if !entry.payload.is_empty() => {
                let victim = entry.payload.len() / 2;
                entry.payload[victim] ^= 0x01;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(structural: u64) -> CacheKey {
        CacheKey { structural, pipeline: 1 }
    }

    #[test]
    fn round_trips_and_counts_hits() {
        let cache = ResultCache::new(4, 64);
        cache.insert(key(1), b"report one".to_vec());
        assert_eq!(cache.get(key(1)).as_deref(), Some(&b"report one"[..]));
        assert_eq!(cache.get(key(2)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn a_corrupted_entry_is_evicted_not_served() {
        let cache = ResultCache::new(2, 16);
        cache.insert(key(7), vec![1, 2, 3, 4]);
        assert!(cache.corrupt_entry(key(7)));
        assert_eq!(cache.get(key(7)), None, "corrupt payloads must never be served");
        assert_eq!(cache.stats().integrity_evictions, 1);
        assert_eq!(cache.len(), 0, "the corrupt entry must be gone");
        // Recompute path: a fresh insert restores service.
        cache.insert(key(7), vec![1, 2, 3, 4]);
        assert_eq!(cache.get(key(7)), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn audit_sweeps_out_corruption_and_counts_the_rest() {
        let cache = ResultCache::new(3, 32);
        for structural in 0..10 {
            cache.insert(key(structural), structural.to_le_bytes().to_vec());
        }
        assert!(cache.corrupt_entry(key(3)));
        assert!(cache.corrupt_entry(key(8)));
        let audit = cache.audit();
        assert_eq!((audit.clean, audit.corrupted), (8, 2));
        // A second sweep finds a clean cache.
        assert_eq!(cache.audit(), CacheAudit { clean: 8, corrupted: 0 });
    }

    #[test]
    fn the_fifo_bound_holds_per_shard() {
        let cache = ResultCache::new(1, 4);
        for structural in 0..12 {
            cache.insert(key(structural), vec![0; 8]);
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().capacity_evictions, 8);
        // The newest entries are the survivors.
        assert!(cache.get(key(11)).is_some());
        assert!(cache.get(key(0)).is_none());
    }

    #[test]
    fn reinsertion_refreshes_the_fifo_slot() {
        let cache = ResultCache::new(1, 2);
        cache.insert(key(1), vec![1]);
        cache.insert(key(2), vec![2]);
        cache.insert(key(1), vec![10]); // refresh: key 2 is now oldest
        cache.insert(key(3), vec![3]);
        assert_eq!(cache.get(key(1)), Some(vec![10]));
        assert!(cache.get(key(2)).is_none(), "key 2 should have aged out");
        assert!(cache.get(key(3)).is_some());
    }
}
