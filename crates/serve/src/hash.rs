//! Canonical structural hashing of netlists.
//!
//! The result cache keys jobs by *what the design is*, not by how its nodes
//! happen to be numbered: two submissions whose netlists differ only in node
//! slot order, channel insertion order, or cosmetic names must collide on the
//! same cache entry, while any semantic difference — a node kind or spec, a
//! channel width, a rewired port — must (with overwhelming probability)
//! separate them.
//!
//! The hash is a Weisfeiler–Leman colour refinement over the port graph:
//!
//! 1. every live node starts with a colour derived from its *kind signature*
//!    (the full `NodeKind`, specs included — environments, ops, scheduler
//!    policies — but **not** the node's id or name);
//! 2. each round re-colours every node with a digest of its own colour plus
//!    the multiset of `(own port index, peer port index, channel width, peer
//!    colour)` annotations of its incident channels, sorted so neighbour
//!    enumeration order cannot leak in;
//! 3. after enough rounds for information to cross the graph, the netlist
//!    hash folds the sorted multiset of final node colours together with the
//!    sorted multiset of fully-annotated channel signatures.
//!
//! Everything bottoms out in FNV-1a — deterministic across runs, processes
//! and platforms (unlike `std`'s keyed `DefaultHasher` there is no
//! per-process seed), which is what lets the journal and a restarted service
//! agree on keys.
//!
//! **Collision posture.** This is attributed WL, not full canonical
//! labelling: non-isomorphic designs that WL cannot distinguish would
//! collide, as would (astronomically rarely) distinct 64-bit digests.
//! Attributed elastic netlists are heterogeneous enough that WL separates
//! every pair the test suite can construct (including every PR 3 invalidity
//! mutation); the cache additionally stores a checksum over the *payload*,
//! so a collision can serve a stale-but-well-formed report, never a
//! corrupted one.

use std::collections::HashMap;

use elastic_core::{Netlist, NodeId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny FNV-1a accumulator; the only hasher in this crate, so cache keys
/// and journal checksums are stable across processes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    /// Starts a fresh accumulator.
    pub fn new() -> Self {
        Fnv::default()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a little-endian `u64`.
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write(&value.to_le_bytes())
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a byte string.
pub fn fnv(bytes: &[u8]) -> u64 {
    Fnv::new().write(bytes).finish()
}

/// How many refinement rounds information needs to cross the graph: the
/// node count bounds the diameter, and small designs are cheap enough that
/// precision beats shaving rounds. Capped so pathological inputs stay
/// `O(rounds · channels)`.
fn refinement_rounds(nodes: usize) -> usize {
    nodes.clamp(2, 64)
}

/// Computes the canonical structural hash of a netlist.
///
/// Invariant under node-id permutation, channel reordering and renaming
/// (node, channel and netlist names are all excluded); sensitive to node
/// kinds and specs, channel widths, and the port-accurate wiring. See the
/// module docs for the construction and the collision posture.
pub fn structural_hash(netlist: &Netlist) -> u64 {
    let nodes: Vec<NodeId> = netlist.live_nodes().map(|n| n.id).collect();
    if nodes.is_empty() {
        return fnv(b"empty netlist");
    }
    let position: HashMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(index, &id)| (id, index)).collect();

    // 1. Initial colours from the kind signature alone. `NodeKind`'s Debug
    //    form spells out the full spec (ops, environment patterns, scheduler
    //    policies) and contains no ids or names, so it is exactly the
    //    permutation-independent attribute set.
    let mut colors: Vec<u64> = nodes
        .iter()
        .map(|&id| {
            let node = netlist.node(id).expect("live node");
            Fnv::new().write(format!("{:?}", node.kind).as_bytes()).finish()
        })
        .collect();

    // Incident-channel annotations per node, fixed across rounds: for every
    // endpoint, (own port index, peer port index, width, peer position,
    // direction).
    struct Incidence {
        own_port: u64,
        peer_port: u64,
        width: u64,
        peer: usize,
        into_node: bool,
    }
    let mut incident: Vec<Vec<Incidence>> = (0..nodes.len()).map(|_| Vec::new()).collect();
    for channel in netlist.live_channels() {
        let from = position[&channel.from.node];
        let to = position[&channel.to.node];
        incident[from].push(Incidence {
            own_port: channel.from.index as u64,
            peer_port: channel.to.index as u64,
            width: u64::from(channel.width),
            peer: to,
            into_node: false,
        });
        incident[to].push(Incidence {
            own_port: channel.to.index as u64,
            peer_port: channel.from.index as u64,
            width: u64::from(channel.width),
            peer: from,
            into_node: true,
        });
    }

    // 2. Refinement rounds.
    let mut scratch: Vec<u64> = Vec::with_capacity(16);
    for _ in 0..refinement_rounds(nodes.len()) {
        let next: Vec<u64> = (0..nodes.len())
            .map(|index| {
                scratch.clear();
                for edge in &incident[index] {
                    let mut f = Fnv::new();
                    f.write_u64(u64::from(edge.into_node))
                        .write_u64(edge.own_port)
                        .write_u64(edge.peer_port)
                        .write_u64(edge.width)
                        .write_u64(colors[edge.peer]);
                    scratch.push(f.finish());
                }
                // Sorting makes the digest a function of the *multiset* of
                // incident annotations, independent of channel enumeration
                // order.
                scratch.sort_unstable();
                let mut f = Fnv::new();
                f.write_u64(colors[index]);
                for &edge in scratch.iter() {
                    f.write_u64(edge);
                }
                f.finish()
            })
            .collect();
        if next == colors {
            break;
        }
        colors = next;
    }

    // 3. Fold the stable colour multiset with the fully-annotated channel
    //    multiset.
    let mut node_digest: Vec<u64> = colors.clone();
    node_digest.sort_unstable();
    let mut channel_digest: Vec<u64> = netlist
        .live_channels()
        .map(|channel| {
            let mut f = Fnv::new();
            f.write_u64(colors[position[&channel.from.node]])
                .write_u64(channel.from.index as u64)
                .write_u64(colors[position[&channel.to.node]])
                .write_u64(channel.to.index as u64)
                .write_u64(u64::from(channel.width));
            f.finish()
        })
        .collect();
    channel_digest.sort_unstable();

    let mut f = Fnv::new();
    f.write_u64(nodes.len() as u64).write_u64(channel_digest.len() as u64);
    for value in node_digest.into_iter().chain(channel_digest) {
        f.write_u64(value);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::{MuxSpec, SinkSpec, SourceSpec};
    use elastic_core::{Netlist, Port};

    fn small_design() -> Netlist {
        let mut n = Netlist::new("hash_unit");
        let sel = n.add_source("sel", SourceSpec::always());
        let a = n.add_source("a", SourceSpec::always());
        let b = n.add_source("b", SourceSpec::always());
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(a, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(b, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(sink, 0), 8).unwrap();
        n
    }

    #[test]
    fn hashing_is_deterministic_and_name_blind() {
        let a = small_design();
        let mut b = small_design();
        b.set_name("completely different");
        assert_eq!(structural_hash(&a), structural_hash(&a));
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn a_width_change_separates_the_hash() {
        let a = small_design();
        let mut b = small_design();
        let channel = b.live_channels().find(|c| c.width == 8).map(|c| c.id).unwrap();
        b.channel_mut(channel).unwrap().width = 7;
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn a_spec_change_separates_the_hash() {
        let a = small_design();
        let mut b = small_design();
        let mux = b.find_node("mux").unwrap().id;
        if let elastic_core::kind::NodeKind::Mux(spec) = &mut b.node_mut(mux).unwrap().kind {
            spec.early_eval = true;
        }
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    fn distinct_operand_design(swapped: bool) -> Netlist {
        let mut n = Netlist::new("hash_unit");
        let sel = n.add_source("sel", SourceSpec::always());
        let counter = n.add_source("counter", SourceSpec::always());
        let constant = n.add_source(
            "constant",
            SourceSpec { data: elastic_core::kind::DataStream::Const(7), ..SourceSpec::always() },
        );
        let mux = n.add_mux("mux", MuxSpec::lazy(2));
        let sink = n.add_sink("sink", SinkSpec::always_ready());
        let (first, second) = if swapped { (constant, counter) } else { (counter, constant) };
        n.connect(Port::output(sel, 0), Port::input(mux, 0), 1).unwrap();
        n.connect(Port::output(first, 0), Port::input(mux, 1), 8).unwrap();
        n.connect(Port::output(second, 0), Port::input(mux, 2), 8).unwrap();
        n.connect(Port::output(mux, 0), Port::input(sink, 0), 8).unwrap();
        n
    }

    #[test]
    fn swapping_distinct_operands_changes_the_hash() {
        // The two sources differ only in their data stream; routing the
        // constant to data port 1 instead of port 2 is a select-inverted —
        // genuinely different — design, so the hash must separate it even
        // though the node multiset is identical.
        assert_ne!(
            structural_hash(&distinct_operand_design(false)),
            structural_hash(&distinct_operand_design(true)),
            "operand order is semantic"
        );
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned digest: journal checksums and cache keys persist across
        // restarts, so the hasher must never drift.
        assert_eq!(fnv(b""), FNV_OFFSET);
        assert_eq!(fnv(b"elastic"), Fnv::new().write(b"elastic").finish());
    }
}
