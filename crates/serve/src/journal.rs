//! Crash-recoverable job journal.
//!
//! The service appends one line per job-lifecycle event to a plain text
//! file; on restart it replays the file to learn which jobs were completed
//! (never redo those) and which were accepted but still unfinished (resubmit
//! those). The format is deliberately primitive — no framing beyond the
//! newline, no index, no compaction — because the recovery property it has
//! to deliver is narrow: *after a crash at any byte offset, replay must
//! yield a prefix of the true history, never an invented record*.
//!
//! Each line is
//!
//! ```text
//! <fnv16 hex of body>|<body>
//! ```
//!
//! with bodies like
//!
//! ```text
//! submit 12 9f3c0a11deadbeef 7 seeded 0x5eed default
//! start 12 0
//! done 12 ok
//! shed 13
//! ```
//!
//! A crash mid-`write` leaves at most one torn final line; the checksum
//! rejects it (and any other corruption) and replay simply stops trusting
//! the tail. Because every record is self-checksummed and the file is
//! append-only, a torn tail can only lose the *last* event — which the
//! service model tolerates: a lost `submit` means the client never got an
//! acknowledgement, a lost `done` means the job reruns (results are
//! idempotent and cache-checked), a lost `start` is irrelevant to recovery.
//!
//! Only *seeded* jobs (regenerable from `elastic-gen` by seed + preset) are
//! resumable; inline netlists are journalled for accounting but marked
//! non-resumable, since the netlist itself is not persisted.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::hash::fnv;

/// One journalled lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was admitted to the queue. `seeded` carries `(seed, preset)`
    /// when the job can be regenerated on recovery; `None` marks an inline
    /// submission whose netlist is not persisted.
    Submit {
        /// Service-assigned job id.
        job: u64,
        /// Canonical structural hash of the netlist.
        structural: u64,
        /// Pipeline discriminant (part of the cache key).
        pipeline: u64,
        /// Pipeline kind token (`gauntlet`, `verify`); recovery needs the
        /// *kind* to resubmit, not just the key-discriminant hash.
        kind: String,
        /// Regeneration recipe, when the job came from the generator.
        seeded: Option<(u64, String)>,
    },
    /// An attempt at the job began on some worker.
    Start {
        /// Service-assigned job id.
        job: u64,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// The job reached a terminal state. `outcome` is a single
    /// whitespace-free token (`ok`, `ok-degraded`, `failed-permanent`, …).
    Done {
        /// Service-assigned job id.
        job: u64,
        /// Terminal outcome token.
        outcome: String,
    },
    /// The job was refused at admission (queue full).
    Shed {
        /// Service-assigned job id.
        job: u64,
    },
}

impl Record {
    fn body(&self) -> String {
        match self {
            Record::Submit { job, structural, pipeline, kind, seeded } => {
                debug_assert!(!kind.contains(char::is_whitespace), "kinds are single tokens");
                let mut body = format!("submit {job} {structural:016x} {pipeline:016x} {kind}");
                match seeded {
                    Some((seed, preset)) => {
                        debug_assert!(
                            !preset.contains(char::is_whitespace),
                            "presets are single tokens"
                        );
                        write!(body, " seeded {seed:#x} {preset}").unwrap();
                    }
                    None => body.push_str(" inline"),
                }
                body
            }
            Record::Start { job, attempt } => format!("start {job} {attempt}"),
            Record::Done { job, outcome } => {
                debug_assert!(!outcome.contains(char::is_whitespace), "outcomes are single tokens");
                format!("done {job} {outcome}")
            }
            Record::Shed { job } => format!("shed {job}"),
        }
    }

    fn parse(body: &str) -> Option<Record> {
        let mut words = body.split_ascii_whitespace();
        let record = match words.next()? {
            "submit" => {
                let job = words.next()?.parse().ok()?;
                let structural = u64::from_str_radix(words.next()?, 16).ok()?;
                let pipeline = u64::from_str_radix(words.next()?, 16).ok()?;
                let kind = words.next()?.to_string();
                let seeded = match words.next()? {
                    "seeded" => {
                        let seed = words.next()?;
                        let seed = seed
                            .strip_prefix("0x")
                            .and_then(|hex| u64::from_str_radix(hex, 16).ok())?;
                        Some((seed, words.next()?.to_string()))
                    }
                    "inline" => None,
                    _ => return None,
                };
                Record::Submit { job, structural, pipeline, kind, seeded }
            }
            "start" => Record::Start {
                job: words.next()?.parse().ok()?,
                attempt: words.next()?.parse().ok()?,
            },
            "done" => Record::Done {
                job: words.next()?.parse().ok()?,
                outcome: words.next()?.to_string(),
            },
            "shed" => Record::Shed { job: words.next()?.parse().ok()? },
            _ => return None,
        };
        if words.next().is_some() {
            return None;
        }
        Some(record)
    }
}

fn checksum(body: &str) -> String {
    format!("{:016x}", fnv(body.as_bytes()))
}

/// Append-only writer half of the journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    ///
    /// If the previous process died mid-write the file may end in a torn,
    /// newline-less fragment; appending straight after it would corrupt the
    /// *next* record too, so the fragment is first terminated with a
    /// newline. Replay then rejects exactly the one torn line.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let torn_tail = file.metadata()?.len() > 0 && {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            last[0] != b'\n'
        };
        let mut writer = BufWriter::new(file);
        if torn_tail {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(Journal { path, writer: Mutex::new(writer) })
    }

    /// Where this journal lives (hand this to [`replay`] after a restart).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS. Each line carries its
    /// own checksum, so a torn write is detected — not repaired — on replay.
    pub fn append(&self, record: &Record) -> std::io::Result<()> {
        let body = record.body();
        let line = format!("{}|{}\n", checksum(&body), body);
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        writer.write_all(line.as_bytes())?;
        writer.flush()
    }
}

/// A still-unfinished seeded job recovered from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingJob {
    /// The id the job had in the previous run (informational; resubmission
    /// assigns a fresh id).
    pub job: u64,
    /// Pipeline kind token the job was submitted under.
    pub kind: String,
    /// Generator seed to regenerate the netlist from.
    pub seed: u64,
    /// Generator preset name the seed was drawn under.
    pub preset: String,
}

/// Everything recovery needs, distilled from a journal replay.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Cache keys `(structural, pipeline)` of jobs that reached `done` —
    /// completed work that must not be redone after a restart.
    pub completed: Vec<(u64, u64)>,
    /// Seeded jobs submitted but never `done` (and not shed): resubmit.
    pub pending: Vec<PendingJob>,
    /// Inline (non-resumable) jobs that were lost with the crash; surfaced
    /// so callers can report them rather than silently dropping work.
    pub lost_inline: usize,
    /// First job id that is safely fresh (max journalled id + 1).
    pub next_job_id: u64,
    /// Lines rejected by the checksum — a torn tail, or corruption.
    pub rejected_lines: usize,
}

/// Replays a journal file. A missing file is an empty history, not an
/// error; unreadable *content* degrades to rejected lines.
pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Recovery> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(text) => text,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(error) => return Err(error),
    };
    let mut recovery = Recovery::default();
    struct JobState {
        structural: u64,
        pipeline: u64,
        kind: String,
        seeded: Option<(u64, String)>,
        finished: bool,
    }
    let mut jobs: HashMap<u64, JobState> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for line in text.lines() {
        let parsed = line
            .split_once('|')
            .filter(|(sum, body)| *sum == checksum(body))
            .and_then(|(_, body)| Record::parse(body));
        let Some(record) = parsed else {
            recovery.rejected_lines += 1;
            continue;
        };
        match record {
            Record::Submit { job, structural, pipeline, kind, seeded } => {
                recovery.next_job_id = recovery.next_job_id.max(job + 1);
                jobs.insert(job, JobState { structural, pipeline, kind, seeded, finished: false });
                order.push(job);
            }
            Record::Start { job, .. } => {
                recovery.next_job_id = recovery.next_job_id.max(job + 1);
            }
            Record::Done { job, outcome } => {
                recovery.next_job_id = recovery.next_job_id.max(job + 1);
                if let Some(state) = jobs.get_mut(&job) {
                    // A `resumed` record closes the old id of a job that was
                    // resubmitted under a fresh id after a restart: the work
                    // is not pending (the new id tracks it), but it has not
                    // completed either.
                    if outcome != "resumed" {
                        recovery.completed.push((state.structural, state.pipeline));
                    }
                    state.finished = true;
                }
            }
            Record::Shed { job } => {
                recovery.next_job_id = recovery.next_job_id.max(job + 1);
                // A shed job was never accepted; nothing to resume.
                if let Some(state) = jobs.get_mut(&job) {
                    state.finished = true;
                }
            }
        }
    }
    for job in order {
        let state = &jobs[&job];
        if state.finished {
            continue;
        }
        match &state.seeded {
            Some((seed, preset)) => {
                recovery.pending.push(PendingJob {
                    job,
                    kind: state.kind.clone(),
                    seed: *seed,
                    preset: preset.clone(),
                });
            }
            None => recovery.lost_inline += 1,
        }
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("elastic-serve-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.journal", std::process::id()))
    }

    fn submit(job: u64, seeded: Option<(u64, &str)>) -> Record {
        Record::Submit {
            job,
            structural: 0x1111 * job,
            pipeline: 7,
            kind: "verify".into(),
            seeded: seeded.map(|(seed, preset)| (seed, preset.to_string())),
        }
    }

    #[test]
    fn records_round_trip_through_the_line_format() {
        for record in [
            submit(3, Some((0x5eed, "default"))),
            submit(4, None),
            Record::Start { job: 3, attempt: 2 },
            Record::Done { job: 3, outcome: "ok-degraded".into() },
            Record::Shed { job: 9 },
        ] {
            let body = record.body();
            assert_eq!(Record::parse(&body).as_ref(), Some(&record), "body `{body}`");
        }
    }

    #[test]
    fn replay_partitions_completed_pending_and_lost() {
        let path = temp_path("partition");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        for record in [
            submit(0, Some((0xa, "default"))),
            submit(1, Some((0xb, "small"))),
            submit(2, None),
            Record::Start { job: 0, attempt: 0 },
            Record::Done { job: 0, outcome: "ok".into() },
            submit(3, Some((0xc, "loops"))),
            Record::Shed { job: 3 },
        ] {
            journal.append(&record).unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.completed, vec![(0, 7)]);
        assert_eq!(
            recovery.pending,
            vec![PendingJob { job: 1, kind: "verify".into(), seed: 0xb, preset: "small".into() }]
        );
        assert_eq!(recovery.lost_inline, 1);
        assert_eq!(recovery.next_job_id, 4);
        assert_eq!(recovery.rejected_lines, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_resumed_marker_closes_the_old_id_without_claiming_completion() {
        let path = temp_path("resumed");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        for record in [
            submit(0, Some((0xa, "small"))),
            Record::Done { job: 0, outcome: "resumed".into() },
            submit(1, Some((0xa, "small"))),
            Record::Done { job: 1, outcome: "ok".into() },
        ] {
            journal.append(&record).unwrap();
        }
        let recovery = replay(&path).unwrap();
        assert!(recovery.pending.is_empty(), "the resumed old id must not be pending");
        assert_eq!(
            recovery.completed,
            vec![(0x1111, 7)],
            "only the new id's terminal record counts as completed work"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_torn_tail_is_rejected_without_poisoning_the_prefix() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit(0, Some((0x1, "default")))).unwrap();
        journal.append(&Record::Done { job: 0, outcome: "ok".into() }).unwrap();
        drop(journal);
        // Simulate a crash mid-write: append half a line, checksum and all.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let full = submit(1, None).body();
        let line = format!("{}|{}", checksum(&full), full);
        text.push_str(&line[..line.len() / 2]);
        std::fs::write(&path, &text).unwrap();
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.rejected_lines, 1, "torn tail must be rejected");
        assert_eq!(recovery.completed.len(), 1, "intact prefix must survive");
        assert!(recovery.pending.is_empty());
        // The journal reopens for appending and new records land cleanly
        // after the junk tail (which lacks a newline — reopened writers must
        // still produce parseable history for everything *they* write).
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit(2, Some((0x2, "small")))).unwrap();
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_flipped_byte_anywhere_is_detected() {
        let path = temp_path("flip");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        journal.append(&submit(0, Some((0x1, "default")))).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = bytes.len() / 2;
        bytes[victim] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let recovery = replay(&path).unwrap();
        assert_eq!(recovery.rejected_lines, 1);
        assert!(recovery.pending.is_empty() && recovery.completed.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
