//! # elastic-serve — a fault-tolerant design service
//!
//! Long-running service layer over the elastic-circuit toolkit: netlist
//! jobs (generate → transform → verify pipelines built from
//! `elastic-core`/`-sim`/`-verify`/`-gen`) flow through a sharded, bounded
//! queue into a pool of worker threads, wrapped in the robustness layers a
//! service needs that a batch harness does not:
//!
//! | layer | module | mechanism |
//! |---|---|---|
//! | failure containment | [`service`] | `catch_unwind` per attempt + per-job wall-clock deadlines |
//! | retry / timeout / backoff | [`service`] | transient-vs-permanent failure taxonomy, seeded-jitter exponential backoff, bounded retry budget |
//! | graceful degradation | [`queue`] | soft watermark → truncated verification (honestly flagged non-exhaustive), hard bound → load shedding |
//! | result caching | [`hash`], [`cache`] | canonical structural hash (WL refinement, node-id/name blind) → checksummed payloads, corruption evicted & recomputed |
//! | crash recovery | [`journal`] | append-only self-checksummed job journal; replay yields completed/pending split |
//!
//! The service also supervises its own workers: a thread that dies mid-job
//! is detected, its orphaned job requeued as a transient retry, and the
//! worker respawned — the chaos tests in the workspace root kill workers
//! deliberately and audit (via the journal) that zero accepted jobs are
//! ever lost.

#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod journal;
pub mod queue;
pub mod report;
pub mod service;

pub use cache::{CacheAudit, CacheKey, CacheStats, ResultCache};
pub use hash::{fnv, structural_hash, Fnv};
pub use journal::{replay, Journal, PendingJob, Record, Recovery};
pub use queue::{Admission, JobQueue};
pub use report::{decode, JobReport};
pub use service::{
    preset_config, JobOutcome, JobSource, JobSpec, PipelineKind, SelfTest, Service, ServiceConfig,
    ServiceStats,
};
