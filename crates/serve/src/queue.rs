//! Sharded, bounded job queue with load-shedding admission control.
//!
//! The queue is the service's containment boundary against overload: it
//! accepts work only while total depth is under a hard capacity (beyond
//! that, submissions are **shed** — refused outright with an honest signal,
//! rather than accepted into an unbounded backlog that converts overload
//! into latency and memory growth for everyone). Between the soft
//! `degrade_depth` watermark and the hard bound, submissions are accepted
//! but flagged for **degraded** processing, letting the service trade
//! verification exhaustiveness for throughput before it has to shed at all.
//!
//! Internally the queue is split into independently locked shards (indexed
//! by the submitter's key hash, so contention scales with parallelism, not
//! with a single hot mutex). Workers drain their own shard first and then
//! steal from the others; a condvar parks idle workers instead of spinning.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of [`JobQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The job was enqueued. `degraded` is set when depth had crossed the
    /// soft watermark — the worker should run the cheaper pipeline variant.
    Accepted {
        /// Run the degraded (truncated-coverage) pipeline variant.
        degraded: bool,
    },
    /// The queue was at its hard bound; the job was refused.
    Shed,
}

/// Bounded multi-shard MPMC queue.
#[derive(Debug)]
pub struct JobQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    depth: AtomicUsize,
    capacity: usize,
    degrade_depth: usize,
    closed: AtomicBool,
    shed: AtomicUsize,
    /// Parking lot for idle workers. The mutex guards nothing but the wait;
    /// all real state lives in the shards and `depth`.
    idle_lock: Mutex<()>,
    idle: Condvar,
}

impl<T> JobQueue<T> {
    /// Creates a queue with `shards` lanes, hard bound `capacity`, and soft
    /// degradation watermark `degrade_depth` (clamped into `1..=capacity`).
    pub fn new(shards: usize, capacity: usize, degrade_depth: usize) -> JobQueue<T> {
        let capacity = capacity.max(1);
        JobQueue {
            shards: (0..shards.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            capacity,
            degrade_depth: degrade_depth.clamp(1, capacity),
            closed: AtomicBool::new(false),
            shed: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle: Condvar::new(),
        }
    }

    /// Current total depth across shards.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// How many submissions have been shed so far.
    pub fn shed_count(&self) -> usize {
        self.shed.load(Ordering::Relaxed)
    }

    /// Enqueues `item` on the shard selected by `shard_hint` (any
    /// well-mixed hash — the cache key's structural hash in practice),
    /// unless the hard bound or a closed queue forces a shed.
    pub fn push(&self, shard_hint: u64, item: T) -> Admission {
        self.push_with(shard_hint, |_| item)
    }

    /// Two-phase variant of [`push`](Self::push): the admission decision is
    /// made first and the item is *built* from it, so callers can bake the
    /// degraded flag into the queued job itself. `make` runs strictly
    /// before the item becomes visible to any worker — side effects in it
    /// (journalling the accepted submission, in the service) are ordered
    /// before the first worker touches the job.
    pub fn push_with(&self, shard_hint: u64, make: impl FnOnce(bool) -> T) -> Admission {
        if self.closed.load(Ordering::Acquire) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed;
        }
        // Reserve a depth slot first so the hard bound holds under races:
        // concurrent pushes can transiently over-reserve, but every loser
        // releases its slot and sheds, so occupancy never exceeds capacity.
        let prior = self.depth.fetch_add(1, Ordering::AcqRel);
        if prior >= self.capacity {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed;
        }
        let degraded = prior + 1 > self.degrade_depth;
        let shard = (shard_hint as usize) % self.shards.len();
        // Build the item before taking the shard lock: `make` may do I/O.
        let item = make(degraded);
        self.shards[shard].lock().expect("queue shard poisoned").push_back(item);
        self.idle.notify_one();
        Admission::Accepted { degraded }
    }

    /// Re-enqueues an item the service already owns (a retry after a worker
    /// death). Unlike [`push`](Self::push) this never sheds — shedding an
    /// *accepted* job would silently lose it — so depth may transiently
    /// exceed the admission capacity by the number of in-flight retries.
    pub fn requeue(&self, shard_hint: u64, item: T) {
        self.depth.fetch_add(1, Ordering::AcqRel);
        let shard = (shard_hint as usize) % self.shards.len();
        self.shards[shard].lock().expect("queue shard poisoned").push_back(item);
        self.idle.notify_one();
    }

    /// Dequeues one item, blocking while the queue is open but empty.
    /// Workers pass their index so each drains a different home shard
    /// before stealing. Returns `None` only after [`close`](Self::close)
    /// once every item has been drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop(worker) {
                return Some(item);
            }
            if self.closed.load(Ordering::Acquire) && self.depth() == 0 {
                return None;
            }
            // Timed wait: a missed notify (item pushed between our scan and
            // the park) costs one timeout tick, never a deadlock.
            let guard = self.idle_lock.lock().expect("queue idle lock poisoned");
            let _ = self
                .idle
                .wait_timeout(guard, Duration::from_millis(5))
                .expect("queue idle lock poisoned");
        }
    }

    /// Non-blocking dequeue: home shard first, then steal round-robin.
    pub fn try_pop(&self, worker: usize) -> Option<T> {
        let shards = self.shards.len();
        for offset in 0..shards {
            let shard = (worker + offset) % shards;
            let item = self.shards[shard].lock().expect("queue shard poisoned").pop_front();
            if let Some(item) = item {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                return Some(item);
            }
        }
        None
    }

    /// Closes the queue: future pushes shed, and blocked `pop`s return
    /// `None` once the backlog drains.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.idle.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_the_hard_bound_and_flags_past_the_soft_one() {
        let queue = JobQueue::new(2, 4, 2);
        assert_eq!(queue.push(0, "a"), Admission::Accepted { degraded: false });
        assert_eq!(queue.push(1, "b"), Admission::Accepted { degraded: false });
        assert_eq!(queue.push(2, "c"), Admission::Accepted { degraded: true });
        assert_eq!(queue.push(3, "d"), Admission::Accepted { degraded: true });
        assert_eq!(queue.push(4, "e"), Admission::Shed);
        assert_eq!(queue.depth(), 4);
        assert_eq!(queue.shed_count(), 1);
        // Draining reopens admission, back below the soft watermark.
        assert!(queue.try_pop(0).is_some());
        assert!(queue.try_pop(0).is_some());
        assert!(queue.try_pop(0).is_some());
        assert_eq!(queue.push(5, "f"), Admission::Accepted { degraded: false });
    }

    #[test]
    fn workers_steal_from_foreign_shards() {
        let queue = JobQueue::new(4, 16, 16);
        // Everything lands on shard 2; worker 0 must still find it.
        for item in 0..5 {
            assert!(matches!(queue.push(2, item), Admission::Accepted { .. }));
        }
        let mut drained: Vec<i32> = std::iter::from_fn(|| queue.try_pop(0)).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn close_releases_blocked_workers_after_the_backlog_drains() {
        let queue = Arc::new(JobQueue::new(2, 8, 8));
        queue.push(0, 41);
        queue.push(1, 42);
        let workers: Vec<_> = (0..3)
            .map(|worker| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut drained = Vec::new();
                    while let Some(item) = queue.pop(worker) {
                        drained.push(item);
                    }
                    drained
                })
            })
            .collect();
        queue.close();
        assert_eq!(queue.push(0, 43), Admission::Shed, "closed queues shed");
        let mut drained: Vec<i32> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![41, 42], "close must not strand backlog or workers");
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let queue = Arc::new(JobQueue::new(4, 32, 32));
        let pushers: Vec<_> = (0..8)
            .map(|lane| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    (0..64u64)
                        .filter(|&item| {
                            matches!(queue.push(lane * 7 + item, item), Admission::Accepted { .. })
                        })
                        .count()
                })
            })
            .collect();
        let accepted: usize = pushers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(accepted, 32, "exactly `capacity` pushes may win");
        assert_eq!(queue.depth(), 32);
        assert_eq!(queue.shed_count(), 8 * 64 - 32);
    }
}
