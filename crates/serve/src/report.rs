//! The aggregate result a pipeline produces for one job, and its cache
//! serialization.
//!
//! Reports are deliberately *structural-only* aggregates — counts, verdict
//! qualifiers and fixed-point rates, never node ids or names. The cache
//! serves one stored report to every isomorphic resubmission of the same
//! design, so anything identity-bearing (a node id from the first
//! submission's numbering) would be silently wrong for the next submitter.
//!
//! The wire form is a single `serve-report v1` line of `key=value` tokens.
//! [`decode`] is strict: unknown versions, missing keys or malformed values
//! return `None`, and the service treats an undecodable payload exactly
//! like a cache miss — recompute, never guess. (Integrity against *bit rot*
//! is the cache checksum's job; strict decoding guards against version
//! skew across restarts.)

use std::fmt;

/// Aggregate outcome of running one pipeline over one design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Pipeline that produced the report (`gauntlet` or `verify`).
    pub pipeline: String,
    /// Transformations applied and verified (gauntlet pipeline).
    pub transforms: u64,
    /// Coverage notes accumulated across the pipeline's checks.
    pub notes: u64,
    /// Whether every check ran to exhaustion. Degraded-mode processing and
    /// truncated exploration both clear this — a cached `exhaustive=false`
    /// report honestly advertises its reduced coverage forever.
    pub exhaustive: bool,
    /// Whether the job was processed in degraded (load-shedding) mode.
    pub degraded: bool,
    /// Simulated cycles the report's dynamic figures cover.
    pub cycles: u64,
    /// Tokens observed at the design's sinks over `cycles`.
    pub sink_tokens: u64,
    /// Sink throughput in tokens per thousand cycles (fixed-point, so the
    /// serialized form stays integral and platform-independent).
    pub throughput_milli: u64,
}

impl JobReport {
    /// Computes the fixed-point throughput field from raw counts.
    pub fn throughput_milli(sink_tokens: u64, cycles: u64) -> u64 {
        sink_tokens.saturating_mul(1000).checked_div(cycles).unwrap_or(0)
    }

    /// Serializes the report for cache storage.
    pub fn encode(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve-report v1 pipeline={} transforms={} notes={} exhaustive={} degraded={} \
             cycles={} sink_tokens={} throughput_milli={}",
            self.pipeline,
            self.transforms,
            self.notes,
            u8::from(self.exhaustive),
            u8::from(self.degraded),
            self.cycles,
            self.sink_tokens,
            self.throughput_milli,
        )
    }
}

/// Deserializes a cached payload. `None` means "treat as a miss".
pub fn decode(payload: &[u8]) -> Option<JobReport> {
    let text = std::str::from_utf8(payload).ok()?;
    let mut words = text.split_ascii_whitespace();
    if words.next()? != "serve-report" || words.next()? != "v1" {
        return None;
    }
    let mut report = JobReport {
        pipeline: String::new(),
        transforms: 0,
        notes: 0,
        exhaustive: false,
        degraded: false,
        cycles: 0,
        sink_tokens: 0,
        throughput_milli: 0,
    };
    let mut seen = 0u32;
    for word in words {
        let (key, value) = word.split_once('=')?;
        let flag = |value: &str| match value {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        };
        match key {
            "pipeline" => report.pipeline = value.to_string(),
            "transforms" => report.transforms = value.parse().ok()?,
            "notes" => report.notes = value.parse().ok()?,
            "exhaustive" => report.exhaustive = flag(value)?,
            "degraded" => report.degraded = flag(value)?,
            "cycles" => report.cycles = value.parse().ok()?,
            "sink_tokens" => report.sink_tokens = value.parse().ok()?,
            "throughput_milli" => report.throughput_milli = value.parse().ok()?,
            _ => return None,
        }
        seen += 1;
    }
    (seen == 8 && !report.pipeline.is_empty()).then_some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobReport {
        JobReport {
            pipeline: "verify".into(),
            transforms: 0,
            notes: 3,
            exhaustive: false,
            degraded: true,
            cycles: 192,
            sink_tokens: 85,
            throughput_milli: JobReport::throughput_milli(85, 192),
        }
    }

    #[test]
    fn reports_round_trip() {
        let report = sample();
        assert_eq!(decode(&report.encode()), Some(report));
    }

    #[test]
    fn version_skew_and_truncation_decode_to_none() {
        let good = sample().encode();
        assert!(decode(b"serve-report v2 pipeline=verify").is_none());
        assert!(decode(&good[..good.len() - 20]).is_none(), "missing keys must not default");
        assert!(decode(b"not a report at all").is_none());
        assert!(decode(&[0xff, 0xfe, 0x00]).is_none(), "non-utf8 must not panic");
    }

    #[test]
    fn throughput_is_fixed_point_and_division_safe() {
        assert_eq!(JobReport::throughput_milli(96, 192), 500);
        assert_eq!(JobReport::throughput_milli(0, 0), 0, "zero cycles must not divide by zero");
        // The multiply saturates instead of overflowing on absurd counts.
        assert_eq!(JobReport::throughput_milli(u64::MAX, 1000), u64::MAX / 1000);
    }
}
