//! The fault-tolerant design service.
//!
//! A [`Service`] owns a pool of worker threads draining a sharded, bounded
//! [`JobQueue`] of netlist jobs. Each job runs one
//! of two pipelines over the design — the full transform-and-verify
//! `Gauntlet` from `elastic-gen`, or the `Verify` pipeline (deadlock
//! freedom, bounded environment exploration, and a back-pressure sweep that
//! builds **one** simulation per job and replays scenarios through the
//! reset path). Around the pipelines sit four robustness layers:
//!
//! * **Containment** — every attempt runs under `catch_unwind` and a
//!   per-job wall-clock deadline (the gauntlet's own watchdog, and
//!   cooperative deadlines in the verify sweep), so a panicking or wedged
//!   design costs one attempt, never a worker or the service.
//! * **Retry / timeout / backoff** — *transient* failures (deadline,
//!   panic, worker death, storm-perturbed self-test runs) are retried under
//!   a bounded budget with seeded-jitter exponential backoff. *Permanent*
//!   failures (validation errors, refuted invariants) fail fast, with a
//!   deadlock diagnosis attached when liveness is what broke.
//! * **Graceful degradation** — past the queue's soft watermark jobs are
//!   processed in degraded mode (truncated exploration, honestly flagged
//!   non-exhaustive); past the hard bound they are shed at admission.
//! * **Content-addressed caching** — results are keyed by the canonical
//!   structural hash, checksummed, and re-verified on every read; the
//!   append-only journal makes completed/pending state crash-recoverable.
//!
//! A killed worker (the chaos tests exercise this deliberately) leaves its
//! job registered in the in-flight table; the supervisor thread notices the
//! dead thread, requeues the orphan as a transient retry, and respawns the
//! worker. Zero accepted jobs are ever lost — the chaos acceptance test
//! audits exactly that via the journal.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use elastic_core::kind::{BackpressurePattern, NodeKind};
use elastic_core::Netlist;
use elastic_explore::{explore, ExploreOptions};
use elastic_gen::{generate, run_netlist, GenConfig, GenRng, HarnessOptions};
use elastic_sim::{FaultKind, FaultPlan, FaultSpec, SimConfig, Simulation};
use elastic_verify::exploration::{explore_environments, ExplorationOptions};
use elastic_verify::liveness::{
    check_deadlock_freedom, diagnose_deadlock_on_trace, LivenessOptions,
};

use crate::cache::{CacheKey, ResultCache};
use crate::hash::{structural_hash, Fnv};
use crate::journal::{Journal, Record, Recovery};
use crate::queue::{Admission, JobQueue};
use crate::report::{decode, JobReport};

/// Which pipeline a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// The full `elastic-gen` differential gauntlet: transforms applied and
    /// equivalence-checked against the untransformed design.
    Gauntlet,
    /// Deadlock freedom + bounded environment exploration + a back-pressure
    /// sweep through the one-build-per-job reset path.
    Verify,
    /// The auto-speculation design-space explorer: enumerate, score and
    /// Pareto-rank speculation candidates, every front member verified
    /// against the submitted design.
    Explore,
}

impl PipelineKind {
    /// The token the journal records for this pipeline.
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::Gauntlet => "gauntlet",
            PipelineKind::Verify => "verify",
            PipelineKind::Explore => "explore",
        }
    }

    /// Inverse of [`name`](Self::name); `None` for tokens journalled by a
    /// future version.
    pub fn from_name(name: &str) -> Option<PipelineKind> {
        match name {
            "gauntlet" => Some(PipelineKind::Gauntlet),
            "verify" => Some(PipelineKind::Verify),
            "explore" => Some(PipelineKind::Explore),
            _ => None,
        }
    }
}

/// Where a job's netlist comes from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// Regenerate from an `elastic-gen` seed under a named preset
    /// (`default`, `pipelines`, `loops`, `small`). Seeded jobs are the only
    /// ones the journal can resume after a crash — the recipe is the
    /// persistence.
    Seeded {
        /// Generator seed.
        seed: u64,
        /// Generator preset name.
        preset: String,
    },
    /// An explicit netlist. Journalled for accounting but not resumable.
    Inline(Box<Netlist>),
}

/// A unit of work for the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Netlist recipe.
    pub source: JobSource,
    /// Pipeline to run over it.
    pub pipeline: PipelineKind,
}

impl JobSpec {
    /// Convenience constructor for the common seeded case.
    pub fn seeded(seed: u64, preset: &str, pipeline: PipelineKind) -> JobSpec {
        JobSpec { source: JobSource::Seeded { seed, preset: preset.to_string() }, pipeline }
    }
}

/// Terminal state of a submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The pipeline ran (or its result was already cached) and passed.
    Completed {
        /// The aggregate report.
        report: JobReport,
        /// Served from the cache without running the pipeline.
        cache_hit: bool,
        /// Attempts consumed (0 for cache hits, 1 for a clean first run).
        attempts: u32,
    },
    /// The pipeline refuted an invariant or the input was invalid; retrying
    /// cannot help.
    FailedPermanent {
        /// What failed.
        reason: String,
        /// Wait-graph deadlock diagnosis, when liveness is what broke.
        diagnosis: Option<String>,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Admission control refused the job (queue at its hard bound).
    Shed,
}

impl JobOutcome {
    /// `true` for the two `Completed` shapes.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

/// Periodic fault self-injection, for exercising the robustness layers
/// against *known* faults (the service-level analogue of the fault
/// campaign's self-test mode). A period of 0 disables that fault class;
/// otherwise every job whose id is divisible by the period is hit on its
/// first attempt — deterministic, so tests can predict exactly which jobs
/// must travel the retry path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelfTest {
    /// Panic inside the worker attempt (exercises `catch_unwind`
    /// containment + retry).
    pub panic_period: u64,
    /// Wedge past the case deadline (exercises timeout + retry).
    pub wedge_period: u64,
    /// Arm a genuine stall-storm burst against the design mid-sweep and
    /// classify the perturbed run transient (exercises fault-flagged
    /// retry).
    pub storm_period: u64,
}

impl SelfTest {
    fn applies(period: u64, job: u64) -> bool {
        period != 0 && job.is_multiple_of(period)
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Queue shards (independent admission locks).
    pub queue_shards: usize,
    /// Hard admission bound: beyond this depth, submissions shed.
    pub queue_capacity: usize,
    /// Soft watermark: beyond this depth, accepted jobs run degraded.
    pub degrade_depth: usize,
    /// Cache shards.
    pub cache_shards: usize,
    /// Cache capacity (entries, FIFO-bounded).
    pub cache_capacity: usize,
    /// Transient-failure retries per job after the first attempt.
    pub retry_budget: u32,
    /// Base of the exponential backoff.
    pub backoff_base: Duration,
    /// Cap on a single backoff delay (before jitter).
    pub backoff_cap: Duration,
    /// Per-attempt wall-clock budget.
    pub case_deadline: Duration,
    /// Gauntlet pipeline options (`case_deadline` is overridden by the
    /// field above so both pipelines share one budget).
    pub harness: HarnessOptions,
    /// Full-fidelity exploration options for the verify pipeline.
    pub verify: ExplorationOptions,
    /// Truncated exploration options used in degraded mode.
    pub degraded_verify: ExplorationOptions,
    /// Design-space search options for the explore pipeline (the seed is
    /// overridden per job from the structural hash; degraded mode drops to
    /// the declared environment and half the horizon).
    pub explore: ExploreOptions,
    /// Back-pressure scenarios replayed per verify job through the reset
    /// path of a single simulation build.
    pub sweep_scenarios: u32,
    /// Cycles per sweep scenario.
    pub sweep_cycles: u64,
    /// Append-only journal path; `None` runs without crash recovery.
    pub journal_path: Option<PathBuf>,
    /// Seed for backoff jitter (forked per worker).
    pub seed: u64,
    /// Deterministic fault self-injection.
    pub self_test: SelfTest,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_shards: 4,
            queue_capacity: 64,
            degrade_depth: 48,
            cache_shards: 4,
            cache_capacity: 256,
            retry_budget: 3,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            case_deadline: Duration::from_secs(5),
            harness: HarnessOptions::default(),
            verify: ExplorationOptions { max_runs: 64, ..ExplorationOptions::default() },
            degraded_verify: ExplorationOptions {
                max_runs: 8,
                random_scheduler_runs: 2,
                ..ExplorationOptions::default()
            },
            sweep_scenarios: 4,
            sweep_cycles: 96,
            explore: ExploreOptions {
                cycles: 512,
                short_cycles: 128,
                environments: 2,
                verify_cycles: 128,
                ..ExploreOptions::default()
            },
            journal_path: None,
            seed: 0x5e12_7e57,
            self_test: SelfTest::default(),
        }
    }
}

/// Counter snapshot from [`Service::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted (including shed and cache-served ones).
    pub submitted: u64,
    /// Jobs that reached `Completed`.
    pub completed: u64,
    /// Completions served straight from the cache.
    pub cache_hits: u64,
    /// Completions processed in degraded mode.
    pub degraded_completed: u64,
    /// Jobs that reached `FailedPermanent`.
    pub permanent_failures: u64,
    /// Transient failures that were retried.
    pub retries: u64,
    /// Jobs shed at admission.
    pub shed: u64,
    /// Worker threads that died mid-job and were respawned.
    pub worker_deaths: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    degraded_completed: AtomicU64,
    permanent_failures: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    worker_deaths: AtomicU64,
}

#[derive(Clone)]
struct QueuedJob {
    id: u64,
    netlist: Arc<Netlist>,
    pipeline: PipelineKind,
    structural: u64,
    degraded: bool,
    attempt: u32,
}

enum AttemptError {
    /// Worth retrying: deadlines, panics, fault-perturbed runs.
    Transient(String),
    /// Retrying cannot change the answer: invalid inputs, refuted
    /// invariants.
    Permanent { reason: String, diagnosis: Option<String> },
}

struct Inner {
    config: ServiceConfig,
    queue: JobQueue<QueuedJob>,
    cache: ResultCache,
    journal: Option<Journal>,
    outcomes: Mutex<HashMap<u64, JobOutcome>>,
    outcome_signal: Condvar,
    in_flight: Mutex<HashMap<usize, QueuedJob>>,
    kill: Vec<AtomicBool>,
    halted: AtomicBool,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    counters: Counters,
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
}

/// Handle to a running service. Dropping it without calling
/// [`shutdown`](Service::shutdown) or [`halt`](Service::halt) shuts down
/// gracefully.
pub struct Service {
    inner: Arc<Inner>,
    supervisor: Option<JoinHandle<()>>,
}

/// Maps a preset name to its generator configuration.
pub fn preset_config(name: &str) -> Option<GenConfig> {
    match name {
        "default" => Some(GenConfig::default()),
        "pipelines" => Some(GenConfig::pipelines()),
        "loops" => Some(GenConfig::loops()),
        "small" => Some(GenConfig::small()),
        _ => None,
    }
}

fn pipeline_hash(config: &ServiceConfig, pipeline: PipelineKind, degraded: bool) -> u64 {
    // Everything that changes what a pipeline *means* must be in the key:
    // a cached result computed under different coverage options must not
    // shadow a rerun under stricter ones.
    let mut f = Fnv::new();
    f.write(pipeline.name().as_bytes()).write_u64(u64::from(degraded));
    match pipeline {
        PipelineKind::Gauntlet => {
            let h = &config.harness;
            f.write_u64(h.cycles)
                .write_u64(h.environment_variations as u64)
                .write_u64(h.structural_environment_variations as u64)
                .write_u64(h.max_structural_transforms as u64)
                .write_u64(u64::from(h.max_commit_depth))
                .write_u64(u64::from(h.include_acyclic_speculation));
        }
        PipelineKind::Verify => {
            let v = if degraded { &config.degraded_verify } else { &config.verify };
            f.write_u64(v.pattern_depth as u64)
                .write_u64(v.cycles_per_run)
                .write_u64(v.max_runs as u64)
                .write_u64(v.random_scheduler_runs as u64)
                .write_u64(v.seed)
                .write_u64(u64::from(config.sweep_scenarios))
                .write_u64(config.sweep_cycles);
        }
        PipelineKind::Explore => {
            let e = &config.explore;
            for &depth in &e.depths {
                f.write_u64(u64::from(depth));
            }
            // Scheduler/recovery grids are enum-valued; their debug form is
            // stable and canonical enough for a cache key.
            f.write(format!("{:?}{:?}", e.schedulers, e.recovery).as_bytes())
                .write_u64(e.cycles)
                .write_u64(e.short_cycles)
                .write_u64(e.environments as u64)
                .write_u64(e.max_area_ratio.to_bits())
                .write_u64(e.short_margin.to_bits())
                .write_u64(u64::from(e.verify))
                .write_u64(e.verify_cycles)
                .write_u64(u64::from(e.include_acyclic));
        }
    }
    f.finish()
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Inner {
    fn journal(&self, record: &Record) {
        if let Some(journal) = &self.journal {
            // A failing journal write must not take the service down with
            // it; recovery simply has a shorter history.
            let _ = journal.append(record);
        }
    }

    fn record_outcome(&self, job: u64, outcome: JobOutcome) {
        match &outcome {
            JobOutcome::Completed { report, cache_hit, .. } => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                if *cache_hit {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                if report.degraded {
                    self.counters.degraded_completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            JobOutcome::FailedPermanent { .. } => {
                self.counters.permanent_failures.fetch_add(1, Ordering::Relaxed);
            }
            JobOutcome::Shed => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.outcomes.lock().expect("outcome map poisoned").insert(job, outcome);
        self.outcome_signal.notify_all();
    }

    fn key(&self, job: &QueuedJob, degraded: bool) -> CacheKey {
        CacheKey {
            structural: job.structural,
            pipeline: pipeline_hash(&self.config, job.pipeline, degraded),
        }
    }

    /// Cache lookup honouring the full-⊇-degraded ordering: a degraded job
    /// is happy with a full-fidelity result, but a full job never accepts a
    /// degraded one.
    fn cached_report(&self, job: &QueuedJob) -> Option<JobReport> {
        if let Some(report) = self.cache.get(self.key(job, false)).as_deref().and_then(decode) {
            return Some(report);
        }
        if job.degraded {
            return self.cache.get(self.key(job, true)).as_deref().and_then(decode);
        }
        None
    }

    fn complete(&self, job: &QueuedJob, report: JobReport, cache_hit: bool, attempts: u32) {
        let outcome_token = if cache_hit {
            "ok-cached"
        } else if report.degraded {
            "ok-degraded"
        } else {
            "ok"
        };
        if !cache_hit {
            self.cache.insert(self.key(job, report.degraded), report.encode());
        }
        self.journal(&Record::Done { job: job.id, outcome: outcome_token.into() });
        self.record_outcome(job.id, JobOutcome::Completed { report, cache_hit, attempts });
    }

    fn fail_permanent(
        &self,
        job: &QueuedJob,
        reason: String,
        diagnosis: Option<String>,
        attempts: u32,
    ) {
        self.journal(&Record::Done { job: job.id, outcome: "failed-permanent".into() });
        self.record_outcome(job.id, JobOutcome::FailedPermanent { reason, diagnosis, attempts });
    }
}

fn backoff_delay(config: &ServiceConfig, attempt: u32, rng: &mut GenRng) -> Duration {
    // min(cap, base·2^(attempt-1)) plus up to +50% seeded jitter, so a
    // burst of same-class retries fans back out instead of thundering in
    // lock-step.
    let exponent = attempt.saturating_sub(1).min(16);
    let base = config.backoff_base.saturating_mul(1u32 << exponent).min(config.backoff_cap);
    let jitter_micros = match base.as_micros() as u64 / 2 {
        0 => 0,
        half => rng.below(half + 1),
    };
    base + Duration::from_micros(jitter_micros)
}

/// Attaches a wait-graph diagnosis to a liveness failure by replaying the
/// design and freezing the final stalled cycle.
fn diagnose(netlist: &Netlist, cycles: u64) -> Option<String> {
    let mut sim = Simulation::new(netlist, &SimConfig::default()).ok()?;
    let report = sim.run(cycles).ok()?;
    let last = report.cycles.checked_sub(1)? as usize;
    Some(diagnose_deadlock_on_trace(netlist, sim.trace(), last).to_string())
}

fn gauntlet_attempt(inner: &Inner, job: &QueuedJob) -> Result<JobReport, AttemptError> {
    let mut options = inner.config.harness.clone();
    options.case_deadline = inner.config.case_deadline;
    if job.degraded {
        // Degraded gauntlet: drop the environment-variation sweeps, the
        // widest (and most expensive) part of the check. Honest flagging
        // below — the report can never pass as exhaustive.
        options.environment_variations = 0;
        options.structural_environment_variations = 0;
    }
    // Seed the harness from the *structural hash*, not the job id: duplicate
    // submissions of one design must make identical rng-dependent choices,
    // or the cached report would describe a different run than a recompute.
    match run_netlist(&job.netlist, job.structural ^ inner.config.seed, &options) {
        Ok(report) => Ok(JobReport {
            pipeline: job.pipeline.name().into(),
            transforms: report.transforms.len() as u64,
            notes: report.notes.len() as u64,
            exhaustive: !job.degraded,
            degraded: job.degraded,
            cycles: options.cycles,
            sink_tokens: 0,
            throughput_milli: 0,
        }),
        Err(failure) if failure.stage == "watchdog" => {
            Err(AttemptError::Transient(format!("case deadline exceeded: {failure}")))
        }
        Err(failure) => {
            let diagnosis = failure
                .stage
                .contains("liveness")
                .then(|| diagnose(&failure.netlist, inner.config.sweep_cycles.max(192)))
                .flatten();
            Err(AttemptError::Permanent { reason: failure.to_string(), diagnosis })
        }
    }
}

fn verify_attempt(inner: &Inner, job: &QueuedJob) -> Result<JobReport, AttemptError> {
    let config = &inner.config;
    let deadline = Instant::now() + config.case_deadline;
    let overdue = |stage: &str| {
        if Instant::now() > deadline {
            Err(AttemptError::Transient(format!("case deadline exceeded after {stage}")))
        } else {
            Ok(())
        }
    };
    let sim_error = |error: elastic_sim::SimError| AttemptError::Permanent {
        reason: format!("simulation rejected the design: {error}"),
        diagnosis: None,
    };

    // Stage 1: liveness. A refuted verdict is permanent and ships with the
    // wait-graph diagnosis.
    let liveness =
        LivenessOptions { cycles: config.sweep_cycles.max(128), ..LivenessOptions::default() };
    let verdict = check_deadlock_freedom(&job.netlist, &liveness).map_err(sim_error)?;
    if !verdict.passed() {
        return Err(AttemptError::Permanent {
            reason: format!("liveness refuted: {}", verdict.violations.join("; ")),
            diagnosis: diagnose(&job.netlist, liveness.cycles),
        });
    }
    overdue("liveness")?;

    // Stage 2: bounded environment exploration, truncated in degraded mode.
    let options = if job.degraded { &config.degraded_verify } else { &config.verify };
    let exploration = explore_environments(&job.netlist, options).map_err(sim_error)?;
    if !exploration.passed() {
        return Err(AttemptError::Permanent {
            reason: format!(
                "environment exploration refuted: {}",
                exploration.violations.join("; ")
            ),
            diagnosis: None,
        });
    }
    overdue("exploration")?;

    // Stage 3: back-pressure sweep — one simulation build, every scenario
    // replayed through the reset path under the remaining deadline.
    let mut sim = Simulation::new(&job.netlist, &SimConfig::default()).map_err(sim_error)?;
    let sinks: Vec<_> = job
        .netlist
        .live_nodes()
        .filter(|n| matches!(n.kind, NodeKind::Sink(_)))
        .map(|n| n.id)
        .collect();
    let mut sink_tokens = 0u64;
    let mut cycles = 0u64;
    for scenario in 0..config.sweep_scenarios {
        let overrides: Vec<_> =
            sinks.iter().map(|&sink| (sink, BackpressurePattern::Every(2 + scenario))).collect();
        sim.reset_with_sink_patterns(&overrides);
        let report = sim.run_with_deadline(config.sweep_cycles, deadline).map_err(sim_error)?;
        if report.deadline_exceeded {
            return Err(AttemptError::Transient(format!(
                "case deadline exceeded in sweep scenario {scenario}"
            )));
        }
        sink_tokens += report.sink_streams.values().map(|stream| stream.len() as u64).sum::<u64>();
        cycles += report.cycles;
    }

    let exhaustive = exploration.is_exhaustive() && !job.degraded;
    let mut notes = exploration.notes.len() as u64 + verdict.notes.len() as u64;
    if job.degraded {
        // The truncation note the caller sees in lieu of the dropped runs.
        notes += 1;
    }
    Ok(JobReport {
        pipeline: job.pipeline.name().into(),
        transforms: 0,
        notes,
        exhaustive,
        degraded: job.degraded,
        cycles,
        sink_tokens,
        throughput_milli: JobReport::throughput_milli(sink_tokens, cycles),
    })
}

fn explore_attempt(inner: &Inner, job: &QueuedJob) -> Result<JobReport, AttemptError> {
    let deadline = Instant::now() + inner.config.case_deadline;
    let mut options = inner.config.explore.clone();
    // Like the gauntlet's harness seed: duplicate submissions of one design
    // must score identical environment grids, or the cached report would
    // describe a different search than a recompute.
    options.seed = job.structural ^ inner.config.seed;
    if job.degraded {
        // Degraded search: the declared environment only, half the horizon.
        // Honestly flagged below — never cached as exhaustive.
        options.environments = 1;
        options.cycles = (options.cycles / 2).max(options.short_cycles);
    }
    let search = explore(&job.netlist, &options).map_err(|error| AttemptError::Permanent {
        reason: format!("exploration rejected the design: {error}"),
        diagnosis: None,
    })?;
    if Instant::now() > deadline {
        // The search has no internal cancellation points; over-budget runs
        // are discarded and retried like any other deadline overrun.
        return Err(AttemptError::Transient("case deadline exceeded during exploration".into()));
    }
    // The strict v1 wire format carries the front through the existing
    // fields: `transforms` counts verified front members, `notes` counts
    // everything the search cut or could not score (skips + both prune
    // rungs + coverage notes), and the throughput fields report the best
    // front member under the job's environment grid.
    let best = search.best_throughput();
    let mut notes = (search.skipped.len() + search.pruned.total() + search.notes.len()) as u64;
    if job.degraded {
        notes += 1;
    }
    Ok(JobReport {
        pipeline: job.pipeline.name().into(),
        transforms: search.front.len() as u64,
        notes,
        exhaustive: !job.degraded,
        degraded: job.degraded,
        cycles: options.cycles,
        sink_tokens: best
            .map(|p| (p.throughput * options.cycles as f64).round() as u64)
            .unwrap_or(0),
        throughput_milli: best.map(|p| (p.throughput * 1000.0).round() as u64).unwrap_or(0),
    })
}

/// Arms a genuine stall-storm against the design, runs it, and reports the
/// perturbation as a transient failure — the self-test path proving that
/// fault-flagged runs travel the retry lane, not the result lane.
fn storm_probe(inner: &Inner, job: &QueuedJob) -> AttemptError {
    let storm = (|| {
        let mut sim = Simulation::new(&job.netlist, &SimConfig::default()).ok()?;
        let channel = job.netlist.live_channels().next()?.id;
        let plan = FaultPlan::single(FaultSpec {
            channel,
            kind: FaultKind::StallStorm,
            from_cycle: 4,
            duration: 8,
        });
        sim.arm_faults(&plan).ok()?;
        let report = sim.run(inner.config.sweep_cycles.min(64)).ok()?;
        Some(report.faults.perturbed_cycles)
    })();
    match storm {
        Some(perturbed) => AttemptError::Transient(format!(
            "self-test stall-storm perturbed {perturbed} cycles; run discarded"
        )),
        None => AttemptError::Transient("self-test stall-storm (design unsimulatable)".into()),
    }
}

fn attempt(inner: &Inner, job: &QueuedJob) -> Result<JobReport, AttemptError> {
    let self_test = inner.config.self_test;
    if job.attempt == 0 {
        if SelfTest::applies(self_test.panic_period, job.id) {
            panic!("self-test panic injection (job {})", job.id);
        }
        if SelfTest::applies(self_test.wedge_period, job.id) {
            // A wedged attempt: consume the whole budget, then a bit more.
            std::thread::sleep(inner.config.case_deadline + Duration::from_millis(5));
            return Err(AttemptError::Transient("self-test wedge: case deadline exceeded".into()));
        }
        if SelfTest::applies(self_test.storm_period, job.id) {
            return Err(storm_probe(inner, job));
        }
    }
    match job.pipeline {
        PipelineKind::Gauntlet => gauntlet_attempt(inner, job),
        PipelineKind::Verify => verify_attempt(inner, job),
        PipelineKind::Explore => explore_attempt(inner, job),
    }
}

/// One attempt under panic containment.
fn contained_attempt(inner: &Inner, job: &QueuedJob) -> Result<JobReport, AttemptError> {
    catch_unwind(AssertUnwindSafe(|| attempt(inner, job))).unwrap_or_else(|payload| {
        Err(AttemptError::Transient(format!("attempt panicked: {}", panic_message(payload))))
    })
}

fn worker_main(inner: Arc<Inner>, worker: usize) {
    let mut rng = GenRng::new(inner.config.seed ^ 0xba_c0ff ^ ((worker as u64) << 32));
    while let Some(mut job) = {
        if inner.halted.load(Ordering::Acquire) {
            return;
        }
        inner.queue.pop(worker)
    } {
        inner.in_flight.lock().expect("in-flight map poisoned").insert(worker, job.clone());
        if inner.halted.load(Ordering::Acquire) {
            // Simulated crash: abandon the job exactly where a real crash
            // would — registered, unjournalled, unfinished.
            return;
        }
        if inner.kill[worker].swap(false, Ordering::AcqRel) {
            // Simulated worker death: exit mid-job, leaving the in-flight
            // registration for the supervisor to recover.
            return;
        }
        // A duplicate may have completed while this job sat queued.
        if let Some(report) = inner.cached_report(&job) {
            inner.complete(&job, report, true, job.attempt);
            inner.in_flight.lock().expect("in-flight map poisoned").remove(&worker);
            continue;
        }
        loop {
            inner.journal(&Record::Start { job: job.id, attempt: job.attempt });
            match contained_attempt(&inner, &job) {
                Ok(report) => {
                    inner.complete(&job, report, false, job.attempt + 1);
                    break;
                }
                Err(AttemptError::Permanent { reason, diagnosis }) => {
                    inner.fail_permanent(&job, reason, diagnosis, job.attempt + 1);
                    break;
                }
                Err(AttemptError::Transient(reason)) => {
                    if job.attempt >= inner.config.retry_budget {
                        inner.fail_permanent(
                            &job,
                            format!(
                                "retry budget exhausted after {} attempts; last transient failure: {reason}",
                                job.attempt + 1
                            ),
                            None,
                            job.attempt + 1,
                        );
                        break;
                    }
                    inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                    job.attempt += 1;
                    std::thread::sleep(backoff_delay(&inner.config, job.attempt, &mut rng));
                }
            }
        }
        inner.in_flight.lock().expect("in-flight map poisoned").remove(&worker);
    }
}

fn spawn_worker(inner: &Arc<Inner>, worker: usize) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("serve-worker-{worker}"))
        .spawn(move || worker_main(inner, worker))
        .expect("spawn worker thread")
}

fn supervisor_main(inner: Arc<Inner>) {
    loop {
        std::thread::sleep(Duration::from_millis(2));
        if inner.halted.load(Ordering::Acquire) {
            return;
        }
        let shutting = inner.shutting_down.load(Ordering::Acquire);
        let mut all_done = true;
        {
            let mut workers = inner.workers.lock().expect("worker table poisoned");
            for index in 0..workers.len() {
                let finished = workers[index].as_ref().is_none_or(|handle| handle.is_finished());
                if !finished {
                    all_done = false;
                    continue;
                }
                if let Some(handle) = workers[index].take() {
                    let _ = handle.join();
                }
                // A finished worker that left a job registered died mid-job
                // (kill hook or a panic that escaped containment): requeue
                // the orphan as a transient retry.
                let orphan = inner.in_flight.lock().expect("in-flight map poisoned").remove(&index);
                if let Some(mut job) = orphan {
                    inner.counters.worker_deaths.fetch_add(1, Ordering::Relaxed);
                    if job.attempt >= inner.config.retry_budget {
                        inner.fail_permanent(
                            &job,
                            format!(
                                "retry budget exhausted after {} attempts; last transient failure: worker died mid-job",
                                job.attempt + 1
                            ),
                            None,
                            job.attempt + 1,
                        );
                    } else {
                        inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                        job.attempt += 1;
                        inner.queue.requeue(job.structural, job);
                    }
                }
                // Respawn while the service is live, or when a backlog
                // remains to drain during shutdown.
                if !shutting || inner.queue.depth() > 0 {
                    workers[index] = Some(spawn_worker(&inner, index));
                    all_done = false;
                }
            }
        }
        if shutting && all_done && inner.queue.depth() == 0 {
            return;
        }
    }
}

impl Service {
    /// Starts the service: opens the journal (if configured) and spawns the
    /// worker pool plus the supervisor.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        if config.self_test.panic_period != 0 {
            // The panic injector fires by design; silence the default hook's
            // per-panic backtrace spam for those panics only (they are
            // caught by the containment layer). Real panics still print
            // through the chained previous hook.
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|message| message.contains("self-test panic injection"));
                if !injected {
                    previous(info);
                }
            }));
        }
        let journal = match &config.journal_path {
            Some(path) => Some(Journal::open(path)?),
            None => None,
        };
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            queue: JobQueue::new(config.queue_shards, config.queue_capacity, config.degrade_depth),
            cache: ResultCache::new(config.cache_shards, config.cache_capacity),
            journal,
            outcomes: Mutex::new(HashMap::new()),
            outcome_signal: Condvar::new(),
            in_flight: Mutex::new(HashMap::new()),
            kill: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            halted: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            counters: Counters::default(),
            workers: Mutex::new(Vec::new()),
            config,
        });
        {
            let mut table = inner.workers.lock().expect("worker table poisoned");
            *table = (0..workers).map(|index| Some(spawn_worker(&inner, index))).collect();
        }
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor_main(inner))
                .expect("spawn supervisor thread")
        };
        Ok(Service { inner, supervisor: Some(supervisor) })
    }

    /// Replays the configured journal path of a *previous* run. Call before
    /// [`start`](Service::start) (or on its config) to learn what completed
    /// and what needs resubmission.
    pub fn recover(journal_path: &std::path::Path) -> std::io::Result<Recovery> {
        crate::journal::replay(journal_path)
    }

    /// Resubmits the pending seeded jobs of a recovery, skipping any whose
    /// cache key matches work the journal already saw completed. Returns
    /// the new job ids (paired with the recovered pending entry's old id).
    pub fn resume(&self, recovery: &Recovery) -> Vec<(u64, u64)> {
        // Resumed submissions must not reuse job ids the shared journal has
        // already seen, or a *second* crash would mis-attribute the old
        // records to the new jobs during replay.
        self.inner.next_job.fetch_max(recovery.next_job_id, Ordering::AcqRel);
        let completed: std::collections::HashSet<(u64, u64)> =
            recovery.completed.iter().copied().collect();
        let mut resubmitted = Vec::new();
        for pending in &recovery.pending {
            let Some(kind) = PipelineKind::from_name(&pending.kind) else {
                continue; // journalled by a future version; not resumable here
            };
            // Re-derive the key the old submission journalled; a pending job
            // whose design+pipeline already completed (in either fidelity)
            // is closed as served-from-history, not redone.
            if let Some(config) = preset_config(&pending.preset) {
                let netlist = generate(pending.seed, &config).netlist;
                let structural = structural_hash(&netlist);
                let done = [false, true].iter().any(|&degraded| {
                    completed
                        .contains(&(structural, pipeline_hash(&self.inner.config, kind, degraded)))
                });
                if done {
                    self.inner
                        .journal(&Record::Done { job: pending.job, outcome: "ok-cached".into() });
                    continue;
                }
            }
            let spec = JobSpec::seeded(pending.seed, &pending.preset, kind);
            let new = self.submit(spec);
            // Close the old id only once the new submission is journalled
            // and was not shed — a crash between the two records costs at
            // most a duplicate resubmission, never a lost job.
            if !matches!(self.outcome(new), Some(JobOutcome::Shed)) {
                self.inner.journal(&Record::Done { job: pending.job, outcome: "resumed".into() });
                resubmitted.push((pending.job, new));
            }
        }
        resubmitted
    }

    /// Submits a job. Always returns a job id; the outcome may already be
    /// recorded (shed, invalid input, or a submit-time cache hit).
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let inner = &self.inner;
        let id = inner.next_job.fetch_add(1, Ordering::AcqRel);
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);

        let (netlist, seeded) = match spec.source {
            JobSource::Seeded { seed, preset } => match preset_config(&preset) {
                Some(config) => (Arc::new(generate(seed, &config).netlist), Some((seed, preset))),
                None => {
                    inner.record_outcome(
                        id,
                        JobOutcome::FailedPermanent {
                            reason: format!("unknown generation preset `{preset}`"),
                            diagnosis: None,
                            attempts: 0,
                        },
                    );
                    return id;
                }
            },
            JobSource::Inline(netlist) => {
                if let Err(error) = elastic_core::validate::validate(&netlist) {
                    inner.record_outcome(
                        id,
                        JobOutcome::FailedPermanent {
                            reason: format!("invalid netlist: {error}"),
                            diagnosis: None,
                            attempts: 0,
                        },
                    );
                    return id;
                }
                (Arc::new(*netlist), None)
            }
        };
        let structural = structural_hash(&netlist);

        // Submit-time fast path: a full-fidelity result for this design is
        // already cached.
        let probe = QueuedJob {
            id,
            netlist: Arc::clone(&netlist),
            pipeline: spec.pipeline,
            structural,
            degraded: false,
            attempt: 0,
        };
        if let Some(report) = inner.cached_report(&probe) {
            inner.journal(&Record::Submit {
                job: id,
                structural,
                pipeline: pipeline_hash(&inner.config, spec.pipeline, false),
                kind: spec.pipeline.name().into(),
                seeded,
            });
            inner.journal(&Record::Done { job: id, outcome: "ok-cached".into() });
            inner
                .record_outcome(id, JobOutcome::Completed { report, cache_hit: true, attempts: 0 });
            return id;
        }

        let admission = inner.queue.push_with(structural, |degraded| {
            // Journalled *inside* the admission closure: the submit record
            // must reach the journal before the job becomes visible to any
            // worker, or a fast worker's start/done records could precede
            // it and replay would mis-read the job as forever pending.
            inner.journal(&Record::Submit {
                job: id,
                structural,
                pipeline: pipeline_hash(&inner.config, spec.pipeline, degraded),
                kind: spec.pipeline.name().into(),
                seeded: seeded.clone(),
            });
            QueuedJob {
                id,
                netlist: Arc::clone(&netlist),
                pipeline: spec.pipeline,
                structural,
                degraded,
                attempt: 0,
            }
        });
        if admission == Admission::Shed {
            inner.journal(&Record::Submit {
                job: id,
                structural,
                pipeline: pipeline_hash(&inner.config, spec.pipeline, false),
                kind: spec.pipeline.name().into(),
                seeded,
            });
            inner.journal(&Record::Shed { job: id });
            inner.record_outcome(id, JobOutcome::Shed);
        }
        id
    }

    /// The outcome of `job`, if it has one yet.
    pub fn outcome(&self, job: u64) -> Option<JobOutcome> {
        self.inner.outcomes.lock().expect("outcome map poisoned").get(&job).cloned()
    }

    /// Blocks until `job` has an outcome or `timeout` elapses.
    pub fn wait(&self, job: u64, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut outcomes = self.inner.outcomes.lock().expect("outcome map poisoned");
        loop {
            if let Some(outcome) = outcomes.get(&job) {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .inner
                .outcome_signal
                .wait_timeout(outcomes, deadline - now)
                .expect("outcome map poisoned");
            outcomes = guard;
        }
    }

    /// Blocks until every submitted job has an outcome, or `timeout`
    /// elapses. Returns whether the service fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut outcomes = self.inner.outcomes.lock().expect("outcome map poisoned");
        loop {
            let submitted = self.inner.counters.submitted.load(Ordering::Relaxed);
            if outcomes.len() as u64 >= submitted {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .outcome_signal
                .wait_timeout(outcomes, (deadline - now).min(Duration::from_millis(20)))
                .expect("outcome map poisoned");
            outcomes = guard;
        }
    }

    /// Fault hook: makes worker `index` exit the next time it picks up a
    /// job, *after* registering it in-flight — simulating a thread dying
    /// mid-job. The supervisor requeues the orphan and respawns the worker.
    pub fn kill_worker(&self, index: usize) -> bool {
        match self.inner.kill.get(index) {
            Some(flag) => {
                flag.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// The result cache (for corruption hooks and audits in tests and for
    /// hit-rate reporting).
    pub fn cache(&self) -> &ResultCache {
        &self.inner.cache
    }

    /// The cache key a spec resolves to under this service's configuration
    /// (materializing seeded sources). Exposed so integrity tests can
    /// target a *specific* entry with the corruption hook and then prove
    /// the recompute path. `None` for unknown presets.
    pub fn cache_key(&self, spec: &JobSpec, degraded: bool) -> Option<CacheKey> {
        let structural = match &spec.source {
            JobSource::Seeded { seed, preset } => {
                structural_hash(&generate(*seed, &preset_config(preset)?).netlist)
            }
            JobSource::Inline(netlist) => structural_hash(netlist),
        };
        Some(CacheKey {
            structural,
            pipeline: pipeline_hash(&self.inner.config, spec.pipeline, degraded),
        })
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            degraded_completed: c.degraded_completed.load(Ordering::Relaxed),
            permanent_failures: c.permanent_failures.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            worker_deaths: c.worker_deaths.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stops admission, drains the backlog, joins every
    /// thread, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.queue.close();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handles: Vec<_> =
            self.inner.workers.lock().expect("worker table poisoned").drain(..).collect();
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Simulated crash: workers stop at the next job boundary, the backlog
    /// is abandoned *in memory*, and nothing further is journalled — the
    /// journal on disk is exactly what a real crash would leave. Use
    /// [`recover`](Service::recover) + [`resume`](Service::resume) on the
    /// next service to pick the work back up.
    pub fn halt(mut self) {
        self.inner.halted.store(true, Ordering::Release);
        self.inner.queue.close();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handles: Vec<_> =
            self.inner.workers.lock().expect("worker table poisoned").drain(..).collect();
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.supervisor.is_some() {
            self.inner.shutting_down.store(true, Ordering::Release);
            self.inner.queue.close();
            if let Some(supervisor) = self.supervisor.take() {
                let _ = supervisor.join();
            }
            let handles: Vec<_> =
                self.inner.workers.lock().expect("worker table poisoned").drain(..).collect();
            for handle in handles.into_iter().flatten() {
                let _ = handle.join();
            }
        }
    }
}
