//! Property tests for the canonical structural hash and the cache's
//! integrity guarantee, sampled over the whole generation space.
//!
//! Three properties carry the service's caching correctness:
//!
//! 1. **Permutation invariance** — rebuilding any generated netlist with
//!    shuffled node ids, shuffled channel insertion order, and scrambled
//!    names hashes identically (isomorphic submissions share a cache
//!    entry);
//! 2. **Mutation sensitivity** — every invalidity mutation from the PR 3
//!    catalogue that applies to a design changes its hash (semantically
//!    different designs do not collide on the slices we can construct);
//! 3. **Bit-flip detection** — flipping any single bit of a stored cache
//!    payload makes the cache evict and miss, never serve the corrupted
//!    bytes.

use std::collections::HashMap;

use elastic_core::{Netlist, Port};
use elastic_gen::proptest_bridge::any_netlist;
use elastic_gen::{apply_mutation, GenRng, Mutation};
use elastic_serve::{structural_hash, CacheKey, ResultCache};
use proptest::prelude::*;

/// Rebuilds `netlist` from scratch with shuffled node ids, shuffled channel
/// insertion order, and fresh names — a maximally renumbered isomorphic
/// copy.
fn permuted_copy(netlist: &Netlist, seed: u64) -> Netlist {
    let mut rng = GenRng::new(seed);
    let mut shuffle = |len: usize| {
        let mut order: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        order
    };
    let mut out = Netlist::new("permuted copy");
    let nodes: Vec<_> = netlist.live_nodes().collect();
    let node_order = shuffle(nodes.len());
    let mut map = HashMap::new();
    for (position, &index) in node_order.iter().enumerate() {
        let node = nodes[index];
        map.insert(node.id, out.add_node(format!("perm{position}"), node.kind.clone()));
    }
    let channels: Vec<_> = netlist.live_channels().collect();
    for index in shuffle(channels.len()) {
        let channel = channels[index];
        out.connect(
            Port::output(map[&channel.from.node], channel.from.index),
            Port::input(map[&channel.to.node], channel.to.index),
            channel.width,
        )
        .expect("copying a valid netlist cannot fail");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn the_hash_is_invariant_under_node_id_permutation(generated in any_netlist()) {
        let original = structural_hash(&generated.netlist);
        for round in 0..3u64 {
            let copy = permuted_copy(&generated.netlist, generated.profile.seed ^ (round + 1));
            prop_assert_eq!(
                structural_hash(&copy),
                original,
                "seed {:#x}, permutation round {}: isomorphic rebuild must share the cache key",
                generated.profile.seed,
                round
            );
        }
    }

    #[test]
    fn every_applied_invalidity_mutation_changes_the_hash(generated in any_netlist()) {
        let original = structural_hash(&generated.netlist);
        let mut rng = GenRng::new(generated.profile.seed ^ 0x4a5);
        for mutation in Mutation::all() {
            let mut mutant = generated.netlist.clone();
            if !apply_mutation(&mut mutant, mutation, &mut rng) {
                continue; // mutation found no applicable site in this design
            }
            prop_assert_ne!(
                structural_hash(&mutant),
                original,
                "seed {:#x}: {:?} altered the design but not its cache key",
                generated.profile.seed,
                mutation
            );
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_cache_payload_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip in any::<u16>(),
    ) {
        let cache = ResultCache::new(2, 8);
        let key = CacheKey { structural: 0xfeed, pipeline: 1 };
        cache.insert(key, payload.clone());

        // Corrupt exactly one bit (position drawn from the proptest input).
        let bit = flip as usize % (payload.len() * 8);
        // Reach the payload through the public fault hook only if it flips
        // the chosen bit; otherwise rewrite via insert+manual corruption is
        // impossible — so emulate arbitrary-bit rot by re-inserting a
        // corrupted payload under the entry's *original* checksum. The
        // public API has no such backdoor, which is the point: use a second
        // cache whose entry we corrupt via `corrupt_entry`, plus a direct
        // check that the checksum function itself separates the payloads.
        let mut rotted = payload.clone();
        rotted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(
            elastic_serve::fnv(&payload),
            elastic_serve::fnv(&rotted),
            "FNV must separate single-bit rot"
        );

        // And the end-to-end behaviour through the fault hook: corrupt,
        // observe the miss + eviction, recompute, observe recovery.
        prop_assert!(cache.corrupt_entry(key));
        prop_assert_eq!(cache.get(key), None, "corrupted entries must never be served");
        prop_assert_eq!(cache.stats().integrity_evictions, 1);
        cache.insert(key, payload.clone());
        prop_assert_eq!(cache.get(key), Some(payload), "recompute must restore service");
    }
}
