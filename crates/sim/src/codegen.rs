//! Rust source emission for compiled settle plans.
//!
//! [`emit_settle_fn`] lowers a netlist through the same planner as
//! [`SettleStrategy::Compiled`] and
//! then prints the scheduled micro-ops as the source text of one Rust
//! function: channel clearing, sequential-state snapshots and every fused
//! rail-group equation appear as plain statements over `channels[i]`, with
//! datapath operations inlined as closed-form expressions (or hoisted
//! constructions — SECDED codecs, lookup tables) mirroring
//! [`elastic_datapath::evaluate`] bit for bit. Controllers the planner does
//! not specialize keep their dynamic `Controller::eval` call, so the
//! generated function is exactly the compiled interpreter with the `match`
//! dispatch and operand indirection constant-folded away:
//!
//! * the plan's **straight-line prefix** becomes plain single-assignment
//!   statements (each rail group is written exactly once, after all its
//!   operand rails are final — no compare-and-set needed);
//! * the **trailing segment** (ops on or downstream of combinational rail
//!   cycles, e.g. the speculative select loops of Figures 1(d) and 7(b))
//!   becomes a bounded relaxation loop: compare-and-set writes under a
//!   `changed` flag, swept in deterministic order until a sweep changes
//!   nothing, capped at the engine's settle budget.
//!
//! The emitted text is self-contained — every path is fully qualified
//! against `elastic_sim` / `elastic_datapath` — so a downstream crate checks
//! it in as a module and calls it through [`run_generated`], which drives
//! the ordinary engine cycle (settle → fault injection → trace → commit)
//! with the generated function in place of the settle phase. The benchmark
//! crate uses this for the paper designs: a golden test pins the checked-in
//! module to what `emit_settle_fn` produces today, and a differential test
//! pins its behaviour to the interpreted engines.
//!
//! # Restrictions
//!
//! Emission fails (with [`CodegenError`]) when
//!
//! * the netlist contains **optimistic controllers** (lazy forks): they need
//!   the event-driven two-pass seeding — the compiled strategy itself falls
//!   back to the event-driven engine for those;
//! * a function block uses a **datapath operation** `evaluate` would reject
//!   (an out-of-range SECDED width) or that this emitter has no closed form
//!   for.
//!
//! A netlist whose trailing segment fails to converge within the budget
//! raises [`SimError::CombinationalLoop`] on the interpreted engines; the
//! generated function has no error channel, so [`run_generated`] is only
//! meaningful for netlists the interpreted engines settle — which the
//! differential tests enforce.

use std::fmt::Write as _;

use elastic_core::{Netlist, Node, NodeKind, Op};

use crate::compiled::MicroOp;
use crate::controller::Controller;
use crate::engine::{SettleStrategy, SimConfig, SimError, Simulation};
use crate::signal::ChannelState;

/// Why a netlist could not be emitted as a settle function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen: {}", self.reason)
    }
}

impl std::error::Error for CodegenError {}

fn err(reason: impl Into<String>) -> CodegenError {
    CodegenError { reason: reason.into() }
}

/// Emits the settle pass of `netlist` as the source text of one Rust
/// function named `fn_name`:
///
/// ```text
/// pub fn NAME(
///     channels: &mut [elastic_sim::signal::ChannelState],
///     controllers: &[Box<dyn elastic_sim::controller::Controller>],
/// )
/// ```
///
/// The function clears the channels and drives them to the cycle's fixed
/// point; [`run_generated`] supplies the surrounding engine loop. Dense
/// channel and controller indices follow the builder's `live_channels()` /
/// `live_nodes()` order, so the function must be called with a
/// [`Simulation`] built from the **same** netlist.
///
/// # Errors
///
/// [`CodegenError`] when the netlist does not validate, needs optimistic
/// (two-pass) settling, or uses a datapath operation without a closed
/// emission form.
pub fn emit_settle_fn(netlist: &Netlist, fn_name: &str) -> Result<String, CodegenError> {
    let valid_name = !fn_name.is_empty()
        && fn_name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !fn_name.starts_with(|c: char| c.is_ascii_digit());
    if !valid_name {
        return Err(err(format!("`{fn_name}` is not a valid function identifier")));
    }

    let config = SimConfig { settle: SettleStrategy::Compiled, ..SimConfig::default() };
    let sim = Simulation::new(netlist, &config)
        .map_err(|error| err(format!("netlist does not build: {error}")))?;
    let Some(plan) = sim.compiled_plan() else {
        return Err(err("netlist contains optimistic controllers (lazy forks); they need the \
             event-driven two-pass settle and cannot be emitted as a fixed op sequence"));
    };

    let nodes: Vec<&Node> = netlist.live_nodes().collect();
    let mut emitter = Emitter {
        nodes: &nodes,
        node_ports: sim.node_ports_table(),
        widths: sim.channel_widths_table(),
        pool: &plan.pool,
        hoists: String::new(),
        snapshots: String::new(),
    };

    let mut prefix = String::new();
    for op in &plan.ops[..plan.prefix_len] {
        emitter.emit_op(&mut prefix, op, "    ", false)?;
    }
    let mut trailing = String::new();
    for op in &plan.ops[plan.prefix_len..] {
        emitter.emit_op(&mut trailing, op, "        ", true)?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "/// Settle pass for `{}` ({} channels, {} micro-ops, {} trailing),",
        netlist.name(),
        emitter.widths.len(),
        plan.ops.len(),
        plan.ops.len() - plan.prefix_len,
    );
    let _ = writeln!(out, "/// emitted by `elastic_sim::codegen::emit_settle_fn`. Drive it with");
    let _ = writeln!(out, "/// `elastic_sim::codegen::run_generated` on the same netlist.");
    let _ = writeln!(out, "#[allow(clippy::all, unused)]");
    let _ = writeln!(out, "#[rustfmt::skip]");
    let _ = writeln!(out, "pub fn {fn_name}(");
    let _ = writeln!(out, "    channels: &mut [elastic_sim::signal::ChannelState],");
    let _ = writeln!(out, "    controllers: &[Box<dyn elastic_sim::controller::Controller>],");
    let _ = writeln!(out, ") {{");
    if !trailing.is_empty() {
        let _ =
            writeln!(out, "    fn set_bool(slot: &mut bool, value: bool, changed: &mut bool) {{");
        let _ = writeln!(out, "        if *slot != value {{ *slot = value; *changed = true; }}");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    fn set_data(slot: &mut u64, value: u64, changed: &mut bool) {{");
        let _ = writeln!(out, "        if *slot != value {{ *slot = value; *changed = true; }}");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "    for state in channels.iter_mut() {{");
    let _ = writeln!(out, "        *state = elastic_sim::signal::ChannelState::default();");
    let _ = writeln!(out, "    }}");
    out.push_str(&emitter.hoists);
    out.push_str(&emitter.snapshots);
    out.push_str(&prefix);
    if !trailing.is_empty() {
        let _ =
            writeln!(out, "    // Trailing segment: ops on or downstream of combinational rail");
        let _ =
            writeln!(out, "    // cycles, relaxed in deterministic order until a sweep changes");
        let _ = writeln!(out, "    // nothing (settle budget {}).", sim.settle_budget());
        let _ = writeln!(out, "    for _ in 0..{} {{", sim.settle_budget());
        let _ = writeln!(out, "        let mut changed = false;");
        out.push_str(&trailing);
        let _ = writeln!(out, "        if !changed {{ break; }}");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

/// Runs `cycles` engine cycles with `settle_fn` (a function emitted by
/// [`emit_settle_fn`] from the **same** netlist) in place of the built-in
/// settle phase. Everything else is the ordinary cycle: fault injection,
/// trace recording and the commit clock edge all behave exactly as in
/// [`Simulation::run`]. Returns the simulation for trace and report
/// inspection.
///
/// # Errors
///
/// [`SimError`] when the netlist does not build. (Stepping itself is
/// infallible: a generated function relaxes rail cycles with the same
/// budget the engines use but has no error channel, so only drive netlists
/// the interpreted engines settle.)
pub fn run_generated<F>(
    netlist: &Netlist,
    cycles: u64,
    mut settle_fn: F,
) -> Result<Simulation, SimError>
where
    F: FnMut(&mut [ChannelState], &[Box<dyn Controller>]),
{
    let mut sim = Simulation::new(netlist, &SimConfig::default())?;
    for _ in 0..cycles {
        sim.step_with_external_settle(&mut settle_fn);
    }
    Ok(sim)
}

/// `0x...u64` mask literal for a channel width, `None` for full-width
/// channels (masking with `u64::MAX` is the identity).
fn mask_literal(width: u8) -> Option<String> {
    if width >= 64 {
        None
    } else {
        Some(format!("{:#x}u64", (1u64 << width).wrapping_sub(1)))
    }
}

struct Emitter<'a> {
    nodes: &'a [&'a Node],
    node_ports: &'a [(Vec<usize>, Vec<usize>)],
    widths: &'a [u8],
    pool: &'a [u32],
    hoists: String,
    snapshots: String,
}

impl Emitter<'_> {
    /// One boolean rail write: plain assignment in the prefix,
    /// compare-and-set under the `changed` flag in the trailing loop.
    fn w_bool(&self, cas: bool, target: &str, value: &str) -> String {
        if cas {
            format!("set_bool(&mut {target}, {value}, &mut changed);")
        } else {
            format!("{target} = {value};")
        }
    }

    fn w_data(&self, cas: bool, target: &str, value: &str) -> String {
        if cas {
            format!("set_data(&mut {target}, {value}, &mut changed);")
        } else {
            format!("{target} = {value};")
        }
    }

    fn emit_op(
        &mut self,
        body: &mut String,
        op: &MicroOp,
        pad: &str,
        cas: bool,
    ) -> Result<(), CodegenError> {
        let node = op.node() as usize;
        let name = &self.nodes[node].name;
        let kind = self.nodes[node].kind.kind_name();
        match op {
            MicroOp::Eval { .. } => {
                let (inputs, outputs) = &self.node_ports[node];
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): dynamic eval");
                if cas {
                    // Change detection across the rails this eval owns:
                    // snapshot the attached channels and compare afterwards
                    // (an eval only writes its own rail groups, so a state
                    // difference is exactly a rail change).
                    let watched: Vec<String> = outputs
                        .iter()
                        .chain(inputs.iter())
                        .map(|&c| format!("channels[{c}]"))
                        .collect();
                    let _ = writeln!(body, "{pad}    let before = [{}];", watched.join(", "));
                    self.emit_eval_call(body, pad, node, inputs, outputs);
                    let _ =
                        writeln!(body, "{pad}    changed |= before != [{}];", watched.join(", "));
                } else {
                    self.emit_eval_call(body, pad, node, inputs, outputs);
                }
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::FnFwd { inputs, output, .. } => {
                let NodeKind::Function(spec) = &self.nodes[node].kind else {
                    return Err(err(format!("n{node} `{name}` planned as a function block")));
                };
                let inputs = inputs.slice(self.pool);
                let out = *output as usize;
                let operands: Vec<String> =
                    inputs.iter().map(|&c| format!("channels[{c}].data")).collect();
                let value = emit_data_expr(&spec.op, &operands, node, &mut self.hoists)?;
                let value = match mask_literal(self.widths[out]) {
                    Some(mask) => format!("({value}) & {mask}"),
                    None => value,
                };
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): forward");
                let _ = writeln!(body, "{pad}    let all_valid = {};", all_valid_expr(inputs));
                let _ = writeln!(body, "{pad}    let accept_kill = {};", accept_kill_expr(inputs));
                let _ = writeln!(body, "{pad}    let value = {value};");
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{out}].forward_valid"), "all_valid")
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_data(cas, &format!("channels[{out}].data"), "value")
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(
                        cas,
                        &format!("channels[{out}].backward_stop"),
                        "!(all_valid || accept_kill)"
                    )
                );
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::FnBwd { inputs, output, .. } => {
                let inputs = inputs.slice(self.pool);
                let out = *output as usize;
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): backward");
                let _ = writeln!(body, "{pad}    let out = channels[{out}];");
                let _ = writeln!(body, "{pad}    let all_valid = {};", all_valid_expr(inputs));
                let _ = writeln!(body, "{pad}    let accept_kill = {};", accept_kill_expr(inputs));
                let _ = writeln!(
                    body,
                    "{pad}    let output_transfer = all_valid && !out.forward_stop && \
                     !out.backward_valid;"
                );
                let _ =
                    writeln!(body, "{pad}    let annihilate = all_valid && out.backward_valid;");
                let _ = writeln!(body, "{pad}    let fire = output_transfer || annihilate;");
                let _ = writeln!(
                    body,
                    "{pad}    let forward_kill = out.backward_valid && !all_valid && accept_kill;"
                );
                for &c in inputs {
                    let _ = writeln!(
                        body,
                        "{pad}    {}",
                        self.w_bool(cas, &format!("channels[{c}].forward_stop"), "!fire")
                    );
                    let _ = writeln!(
                        body,
                        "{pad}    {}",
                        self.w_bool(cas, &format!("channels[{c}].backward_valid"), "forward_kill")
                    );
                }
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::ZbFwd { input, output, .. } => {
                self.emit_zb_snapshot(node);
                let inp = *input as usize;
                let out = *output as usize;
                let stored = match mask_literal(self.widths[out]) {
                    Some(mask) => format!("zb_{node}.1 & {mask}"),
                    None => format!("zb_{node}.1"),
                };
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): forward");
                let _ = writeln!(
                    body,
                    "{pad}    let anti_stop = !zb_{node}.0 && channels[{inp}].backward_stop;"
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(
                        cas,
                        &format!("channels[{out}].forward_valid"),
                        &format!("zb_{node}.0")
                    )
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_data(cas, &format!("channels[{out}].data"), &stored)
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{out}].backward_stop"), "anti_stop")
                );
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::ZbBwd { input, output, .. } => {
                self.emit_zb_snapshot(node);
                let inp = *input as usize;
                let out = *output as usize;
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): backward");
                let _ = writeln!(
                    body,
                    "{pad}    let stop = zb_{node}.0 && channels[{out}].forward_stop && \
                     !channels[{out}].backward_valid;"
                );
                let _ = writeln!(
                    body,
                    "{pad}    let pass_through = !zb_{node}.0 && channels[{out}].backward_valid;"
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{inp}].forward_stop"), "stop")
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{inp}].backward_valid"), "pass_through")
                );
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::ForkFwd { input, outputs, .. } => {
                self.emit_fork_snapshot(node);
                let inp = *input as usize;
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): forward");
                let _ = writeln!(body, "{pad}    let input_valid = channels[{inp}].forward_valid;");
                let _ = writeln!(body, "{pad}    let data = channels[{inp}].data;");
                for (branch, &c) in outputs.slice(self.pool).iter().enumerate() {
                    let out = c as usize;
                    let data = match mask_literal(self.widths[out]) {
                        Some(mask) => format!("data & {mask}"),
                        None => "data".to_string(),
                    };
                    let _ = writeln!(
                        body,
                        "{pad}    let needs = input_valid && (fork_{node} >> {branch}) & 1 == 1;"
                    );
                    let _ = writeln!(
                        body,
                        "{pad}    {}",
                        self.w_bool(cas, &format!("channels[{out}].forward_valid"), "needs")
                    );
                    let _ = writeln!(
                        body,
                        "{pad}    {}",
                        self.w_data(cas, &format!("channels[{out}].data"), &data)
                    );
                    let _ = writeln!(
                        body,
                        "{pad}    {}",
                        self.w_bool(cas, &format!("channels[{out}].backward_stop"), "!needs")
                    );
                }
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::ForkBwd { input, outputs, .. } => {
                self.emit_fork_snapshot(node);
                let inp = *input as usize;
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): backward");
                let _ = writeln!(body, "{pad}    let input_valid = channels[{inp}].forward_valid;");
                let _ = writeln!(body, "{pad}    let mut done = true;");
                for (branch, &c) in outputs.slice(self.pool).iter().enumerate() {
                    let out = c as usize;
                    let _ = writeln!(body, "{pad}    if (fork_{node} >> {branch}) & 1 == 1 {{");
                    let _ = writeln!(body, "{pad}        let out = channels[{out}];");
                    let _ = writeln!(
                        body,
                        "{pad}        let served = (out.backward_valid && !out.backward_stop) || \
                         (out.forward_valid && !out.forward_stop);"
                    );
                    let _ = writeln!(body, "{pad}        done &= input_valid && served;");
                    let _ = writeln!(body, "{pad}    }}");
                }
                let _ = writeln!(body, "{pad}    let fires = input_valid && done;");
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{inp}].forward_stop"), "!fires")
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{inp}].backward_valid"), "false")
                );
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::MuxFwd { select, data, output, early, .. } => {
                if *early {
                    self.emit_mux_snapshot(node);
                }
                let sel = *select as usize;
                let out = *output as usize;
                let data_channels = data.slice(self.pool);
                let count = data_channels.len();
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): forward");
                let _ = writeln!(body, "{pad}    let sel = channels[{sel}];");
                let _ = writeln!(
                    body,
                    "{pad}    let data_channels: [usize; {count}] = {data_channels:?};"
                );
                let _ = writeln!(body, "{pad}    let selected = (sel.data as usize) % {count};");
                emit_mux_valid(body, pad, node, *early, data_channels);
                let value = match mask_literal(self.widths[out]) {
                    Some(mask) => format!("channels[data_channels[selected]].data & {mask}"),
                    None => "channels[data_channels[selected]].data".to_string(),
                };
                let _ = writeln!(body, "{pad}    let value = {value};");
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{out}].forward_valid"), "valid")
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_data(cas, &format!("channels[{out}].data"), "value")
                );
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{out}].backward_stop"), "true")
                );
                let _ = writeln!(body, "{pad}}}");
            }
            MicroOp::MuxBwd { select, data, output, early, .. } => {
                if *early {
                    self.emit_mux_snapshot(node);
                }
                let sel = *select as usize;
                let out = *output as usize;
                let data_channels = data.slice(self.pool);
                let count = data_channels.len();
                let _ = writeln!(body, "{pad}{{ // n{node} `{name}` ({kind}): backward");
                let _ = writeln!(body, "{pad}    let sel = channels[{sel}];");
                let _ = writeln!(
                    body,
                    "{pad}    let data_channels: [usize; {count}] = {data_channels:?};"
                );
                let _ = writeln!(body, "{pad}    let selected = (sel.data as usize) % {count};");
                emit_mux_valid(body, pad, node, *early, data_channels);
                let _ =
                    writeln!(body, "{pad}    let fire = valid && !channels[{out}].forward_stop;");
                let _ = writeln!(
                    body,
                    "{pad}    {}",
                    self.w_bool(cas, &format!("channels[{sel}].forward_stop"), "!fire")
                );
                if *early {
                    let _ =
                        writeln!(body, "{pad}    let clean = (mux_{node} >> selected) & 1 == 0;");
                    let _ = writeln!(
                        body,
                        "{pad}    for (j, &ch) in data_channels.iter().enumerate() {{"
                    );
                    let _ = writeln!(
                        body,
                        "{pad}        let is_selected = j == selected && sel.forward_valid;"
                    );
                    let _ = writeln!(
                        body,
                        "{pad}        let owed = (mux_{node} >> j) & 1 == 1 || (fire && \
                         !is_selected);"
                    );
                    let _ = writeln!(
                        body,
                        "{pad}        let consuming = is_selected && fire && clean;"
                    );
                    let _ = writeln!(body, "{pad}        let kill = owed && !consuming;");
                    let _ = writeln!(
                        body,
                        "{pad}        let stop = if kill {{ false }} else if is_selected {{ \
                         !fire }} else {{ true }};"
                    );
                    let _ = writeln!(
                        body,
                        "{pad}        {}",
                        self.w_bool(cas, "channels[ch].forward_stop", "stop")
                    );
                    let _ = writeln!(
                        body,
                        "{pad}        {}",
                        self.w_bool(cas, "channels[ch].backward_valid", "kill")
                    );
                    let _ = writeln!(body, "{pad}    }}");
                } else {
                    let _ = writeln!(body, "{pad}    for &ch in data_channels.iter() {{");
                    let _ = writeln!(
                        body,
                        "{pad}        {}",
                        self.w_bool(cas, "channels[ch].forward_stop", "!fire")
                    );
                    let _ = writeln!(
                        body,
                        "{pad}        {}",
                        self.w_bool(cas, "channels[ch].backward_valid", "false")
                    );
                    let _ = writeln!(body, "{pad}    }}");
                }
                let _ = writeln!(body, "{pad}}}");
            }
        }
        Ok(())
    }

    fn emit_eval_call(
        &self,
        body: &mut String,
        pad: &str,
        node: usize,
        inputs: &[usize],
        outputs: &[usize],
    ) {
        let _ = writeln!(
            body,
            "{pad}    let mut io = elastic_sim::controller::NodeIo::new(channels, &{inputs:?}, \
             &{outputs:?});"
        );
        let _ = writeln!(body, "{pad}    controllers[{node}].eval(&mut io);");
        // `NodeIo::new` is the unmasked view (the engine's tracked view
        // masks at write time); restore the wire-width invariant before any
        // downstream op reads the data.
        for &out in outputs {
            if let Some(mask) = mask_literal(self.widths[out]) {
                let _ = writeln!(body, "{pad}    channels[{out}].data &= {mask};");
            }
        }
    }

    fn emit_zb_snapshot(&mut self, node: usize) {
        let marker = format!("let zb_{node}:");
        if self.snapshots.contains(&marker) {
            return;
        }
        let s = &mut self.snapshots;
        let _ = writeln!(s, "    let zb_{node}: (bool, u64) = {{");
        let _ = writeln!(
            s,
            "        let b = controllers[{node}].as_any().and_then(|a| \
             a.downcast_ref::<elastic_sim::controllers::buffer::ZeroBackwardBuffer>())"
        );
        let _ = writeln!(s, "            .expect(\"node {node} is a zero-backward buffer\");");
        let _ = writeln!(s, "        (b.is_full(), b.stored().unwrap_or(0))");
        let _ = writeln!(s, "    }};");
    }

    fn emit_fork_snapshot(&mut self, node: usize) {
        let marker = format!("let fork_{node}:");
        if self.snapshots.contains(&marker) {
            return;
        }
        let s = &mut self.snapshots;
        let _ = writeln!(s, "    let fork_{node}: u64 = controllers[{node}].as_any()");
        let _ = writeln!(
            s,
            "        .and_then(|a| a.downcast_ref::<elastic_sim::controllers::fork::EagerFork>())"
        );
        let _ = writeln!(s, "        .expect(\"node {node} is an eager fork\").pending_mask();");
    }

    fn emit_mux_snapshot(&mut self, node: usize) {
        let marker = format!("let mux_{node}:");
        if self.snapshots.contains(&marker) {
            return;
        }
        let s = &mut self.snapshots;
        let _ = writeln!(s, "    let mux_{node}: u64 = {{");
        let _ = writeln!(
            s,
            "        let m = controllers[{node}].as_any().and_then(|a| \
             a.downcast_ref::<elastic_sim::controllers::mux::MuxController>())"
        );
        let _ = writeln!(s, "            .expect(\"node {node} is a mux\");");
        let _ = writeln!(s, "        let mut mask = 0u64;");
        let _ = writeln!(
            s,
            "        for (j, &owed) in m.owed_anti_tokens().iter().take(64).enumerate() {{"
        );
        let _ = writeln!(s, "            if owed > 0 {{ mask |= 1 << j; }}");
        let _ = writeln!(s, "        }}");
        let _ = writeln!(s, "        mask");
        let _ = writeln!(s, "    }};");
    }
}

fn all_valid_expr(inputs: &[u32]) -> String {
    if inputs.is_empty() {
        return "true".to_string();
    }
    inputs.iter().map(|&c| format!("channels[{c}].forward_valid")).collect::<Vec<_>>().join(" && ")
}

fn accept_kill_expr(inputs: &[u32]) -> String {
    if inputs.is_empty() {
        return "true".to_string();
    }
    inputs.iter().map(|&c| format!("!channels[{c}].backward_stop")).collect::<Vec<_>>().join(" && ")
}

fn emit_mux_valid(body: &mut String, pad: &str, node: usize, early: bool, data_channels: &[u32]) {
    if early {
        let _ = writeln!(
            body,
            "{pad}    let valid = sel.forward_valid && \
             channels[data_channels[selected]].forward_valid && (mux_{node} >> selected) & 1 == \
             0;"
        );
    } else {
        let all = data_channels
            .iter()
            .map(|&c| format!("channels[{c}].forward_valid"))
            .collect::<Vec<_>>()
            .join(" && ");
        let _ = writeln!(body, "{pad}    let valid = sel.forward_valid && {all};");
    }
}

/// Inlines one datapath operation over `operands` (expressions yielding
/// `u64`), mirroring `evaluate(op, inputs).unwrap_or(0)` — the exact value
/// the function controller drives. Operations whose evaluation would error
/// on too few operands emit a literal `0u64`; variadic folds consume every
/// operand, like `evaluate` does.
fn emit_data_expr(
    op: &Op,
    operands: &[String],
    node: usize,
    hoists: &mut String,
) -> Result<String, CodegenError> {
    let need = |n: usize| -> Option<String> { (operands.len() < n).then(|| "0u64".to_string()) };
    let fold = |sep: &dyn Fn(&str, &str) -> String, empty: &str| -> String {
        match operands {
            [] => empty.to_string(),
            [first, rest @ ..] => {
                let mut acc = first.clone();
                for item in rest {
                    acc = sep(&acc, item);
                }
                acc
            }
        }
    };
    let expr = match op {
        Op::Identity | Op::Opaque { .. } => need(1).unwrap_or_else(|| operands[0].clone()),
        Op::Const(value) => format!("{value:#x}u64"),
        Op::Not => need(1).unwrap_or_else(|| format!("!{}", operands[0])),
        Op::Neg => need(1).unwrap_or_else(|| format!("{}.wrapping_neg()", operands[0])),
        Op::Add => fold(&|a, b| format!("{a}.wrapping_add({b})"), "0u64"),
        Op::Sub => {
            need(2).unwrap_or_else(|| format!("{}.wrapping_sub({})", operands[0], operands[1]))
        }
        Op::And => fold(&|a, b| format!("({a} & {b})"), "0u64"),
        Op::Or => fold(&|a, b| format!("({a} | {b})"), "0u64"),
        Op::Xor => fold(&|a, b| format!("({a} ^ {b})"), "0u64"),
        Op::Shl => need(2).unwrap_or_else(|| {
            format!("{}.wrapping_shl(({} & 63) as u32)", operands[0], operands[1])
        }),
        Op::Shr => need(2).unwrap_or_else(|| {
            format!("{}.wrapping_shr(({} & 63) as u32)", operands[0], operands[1])
        }),
        Op::Inc => need(1).unwrap_or_else(|| format!("{}.wrapping_add(1)", operands[0])),
        Op::Dec => need(1).unwrap_or_else(|| format!("{}.wrapping_sub(1)", operands[0])),
        Op::Eq => {
            need(2).unwrap_or_else(|| format!("u64::from({} == {})", operands[0], operands[1]))
        }
        Op::Ne => {
            need(2).unwrap_or_else(|| format!("u64::from({} != {})", operands[0], operands[1]))
        }
        Op::Lt => {
            need(2).unwrap_or_else(|| format!("u64::from({} < {})", operands[0], operands[1]))
        }
        Op::Alu8 => need(3).unwrap_or_else(|| {
            format!(
                "elastic_datapath::alu::alu8_word({}, {}, {})",
                operands[0], operands[1], operands[2]
            )
        }),
        Op::RippleAdd { width } => need(2).unwrap_or_else(|| {
            format!(
                "elastic_datapath::adder::ripple_add({}, {}, {width}u8)",
                operands[0], operands[1]
            )
        }),
        Op::KoggeStoneAdd { width } => need(2).unwrap_or_else(|| {
            format!(
                "elastic_datapath::adder::kogge_stone_add({}, {}, {width}u8)",
                operands[0], operands[1]
            )
        }),
        Op::ApproxAdd { width, spec_bits } => need(2).unwrap_or_else(|| {
            format!(
                "elastic_datapath::adder::approx_add({}, {}, {width}u8, {spec_bits}u8)",
                operands[0], operands[1]
            )
        }),
        Op::ApproxAddErr { width, spec_bits } => need(2).unwrap_or_else(|| {
            format!(
                "elastic_datapath::adder::approx_add_error({}, {}, {width}u8, {spec_bits}u8)",
                operands[0], operands[1]
            )
        }),
        Op::SecdedEncode { data_width }
        | Op::SecdedCorrect { data_width }
        | Op::SecdedSyndrome { data_width } => {
            if !(1..=57).contains(data_width) {
                return Err(err(format!(
                    "n{node}: SECDED width {data_width} is outside 1..=57 (the interpreted \
                     engines panic at first evaluation; there is no emission equivalent)"
                )));
            }
            match need(1) {
                Some(zero) => zero,
                None => {
                    let marker = format!("let secded_{node} =");
                    if !hoists.contains(&marker) {
                        let _ = writeln!(
                            hoists,
                            "    let secded_{node} = \
                             elastic_datapath::secded::Secded::new({data_width}u8);"
                        );
                    }
                    match op {
                        Op::SecdedEncode { .. } => format!("secded_{node}.encode({})", operands[0]),
                        Op::SecdedCorrect { .. } => {
                            format!("secded_{node}.correct({})", operands[0])
                        }
                        _ => format!("secded_{node}.classify({}).to_word()", operands[0]),
                    }
                }
            }
        }
        Op::BitSelect { bit } => {
            need(1).unwrap_or_else(|| format!("({} >> {}) & 1", operands[0], bit & 63))
        }
        Op::Mask { width } => need(1).unwrap_or_else(|| {
            format!("elastic_datapath::adder::mask({}, {width}u8)", operands[0])
        }),
        Op::Lut(table) => match need(1) {
            Some(zero) => zero,
            None if table.is_empty() => "0u64".to_string(),
            None => {
                let marker = format!("let lut_{node}:");
                if !hoists.contains(&marker) {
                    let _ = writeln!(hoists, "    let lut_{node}: &[u64] = &{table:?};");
                }
                format!("lut_{node}[({} as usize) % {}]", operands[0], table.len())
            }
        },
        other => {
            return Err(err(format!("n{node}: no closed emission form for datapath op {other:?}")))
        }
    };
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::kind::SourcePattern;
    use elastic_core::library::{
        deep_pipeline, fig1a, fig1b, fig1c, fig1d, resilient_speculative, Fig1Config,
        ResilientConfig,
    };
    use elastic_core::{BufferSpec, ForkSpec, SinkSpec, SourceSpec};

    #[test]
    fn paper_designs_emit_settle_functions() {
        let fig1 = Fig1Config::default();
        let designs: Vec<(&str, Netlist)> = vec![
            ("fig1a", fig1a(&fig1).netlist),
            ("fig1b", fig1b(&fig1).netlist),
            ("fig1c", fig1c(&fig1).netlist),
            ("fig1d", fig1d(&fig1).netlist),
            ("fig7b", resilient_speculative(&ResilientConfig::default()).netlist),
            (
                "pipeline",
                deep_pipeline(
                    16,
                    BufferSpec::standard(1),
                    elastic_core::kind::BackpressurePattern::Never,
                ),
            ),
        ];
        for (name, netlist) in designs {
            let source = emit_settle_fn(&netlist, "settle")
                .unwrap_or_else(|error| panic!("{name}: {error}"));
            assert!(source.contains("pub fn settle("), "{name}: missing function header");
            assert!(source.contains("ChannelState::default()"), "{name}: missing the clear phase");
        }
    }

    #[test]
    fn acyclic_designs_have_no_relaxation_loop() {
        let netlist = deep_pipeline(
            8,
            BufferSpec::standard(1),
            elastic_core::kind::BackpressurePattern::Never,
        );
        let source = emit_settle_fn(&netlist, "settle").unwrap();
        assert!(!source.contains("Trailing segment"), "a pipeline is fully straight-line");
        assert!(!source.contains("set_bool"), "no compare-and-set helpers without trailing ops");
    }

    #[test]
    fn rail_cycles_emit_a_bounded_relaxation_loop() {
        // Figure 1(d) speculates across the select loop: part of its rail
        // graph is genuinely cyclic and settles by iteration.
        let netlist = fig1d(&Fig1Config::default()).netlist;
        let source = emit_settle_fn(&netlist, "settle").unwrap();
        assert!(source.contains("Trailing segment"), "fig1d has trailing ops");
        assert!(source.contains("let mut changed = false;"), "relaxation tracks changes");
        assert!(source.contains("if !changed { break; }"), "relaxation stops at the fixpoint");
    }

    #[test]
    fn generated_functions_cannot_be_emitted_for_lazy_forks() {
        let mut n = Netlist::new("lazy");
        let src = n.add_source(
            "src",
            SourceSpec { pattern: SourcePattern::Always, ..SourceSpec::default() },
        );
        let fork = n.add_fork("fork", ForkSpec::lazy(2));
        let sink_a = n.add_sink("sink_a", SinkSpec::always_ready());
        let sink_b = n.add_sink("sink_b", SinkSpec::always_ready());
        n.connect_named(
            "in",
            elastic_core::Port::output(src, 0),
            elastic_core::Port::input(fork, 0),
            8,
        )
        .unwrap();
        n.connect_named(
            "a",
            elastic_core::Port::output(fork, 0),
            elastic_core::Port::input(sink_a, 0),
            8,
        )
        .unwrap();
        n.connect_named(
            "b",
            elastic_core::Port::output(fork, 1),
            elastic_core::Port::input(sink_b, 0),
            8,
        )
        .unwrap();
        n.validate().unwrap();

        let error = emit_settle_fn(&n, "settle").expect_err("lazy forks need two-pass settling");
        assert!(error.reason.contains("optimistic"), "{error}");
    }

    #[test]
    fn invalid_function_names_are_rejected() {
        let netlist = deep_pipeline(
            4,
            BufferSpec::standard(1),
            elastic_core::kind::BackpressurePattern::Never,
        );
        assert!(emit_settle_fn(&netlist, "1bad").is_err());
        assert!(emit_settle_fn(&netlist, "").is_err());
        assert!(emit_settle_fn(&netlist, "has space").is_err());
    }
}
