//! Compiled settle backend: a netlist lowered to fused, monomorphic micro-ops.
//!
//! [`SettleStrategy::Compiled`](crate::engine::SettleStrategy::Compiled)
//! replaces the event-driven worklist fixpoint with a **plan** built once per
//! simulation: every controller whose `eval` equations are statically known
//! is decomposed into one or two [`MicroOp`]s — a *forward* op driving the
//! producer-owned rail group `{V+, data, S-}` and a *backward* op driving the
//! consumer-owned group `{S+, V-}` — dispatched through a plain `match`
//! instead of a vtable. The ops are scheduled once by Kahn's algorithm over
//! the rail-dependency graph (one writer per rail group, edges
//! writer → reader), splitting the plan into
//!
//! * a **straight-line prefix** executed exactly once per cycle (the
//!   combinational wavefront needs no worklist: every operand rail is final
//!   when an op runs), and
//! * a **trailing segment** of ops on or downstream of rail cycles, settled
//!   by Jacobi sweeps in deterministic order until a sweep changes nothing,
//!   capped at the engine's settle budget (the same full-sweep-equivalent
//!   unit the other strategies use).
//!
//! Controllers the planner does not specialize (shared modules, commit
//! stages, variable-latency units, future kinds) become [`MicroOp::Eval`]
//! ops: a change-tracked dynamic `Controller::eval`, bit-identical to the
//! other engines by construction. Fully registered controllers (sources,
//! sinks, standard buffers — `eval_reads_channels() == false`) are also
//! `Eval` ops; they have no rail reads, so they always land at the head of
//! the prefix and run once.
//!
//! The few specialized controllers whose equations read *sequential* state
//! (zero-backward buffers, eager forks, early-evaluation muxes) are handled
//! by **snapshots**: their state is read once per cycle through
//! [`Controller::as_any`] before any op runs — legal because `eval` is a
//! pure function of `&self` and the settle phase never commits state.
//!
//! The plan holds no cross-cycle state (snapshots are refreshed every
//! cycle), so `reset_*`, fault arming, monitors and deadlines work
//! unchanged. Netlists containing optimistic controllers (lazy forks) are
//! **not** planned; the engine transparently falls back to the event-driven
//! strategy, which implements the optimistic two-pass seeding those
//! controllers require.

use elastic_core::{Netlist, NodeKind, Op};
use elastic_datapath::evaluate;
use elastic_datapath::secded::Secded;

use crate::controller::{Controller, NodeIo};
use crate::controllers::buffer::ZeroBackwardBuffer;
use crate::controllers::fork::EagerFork;
use crate::controllers::mux::MuxController;
use crate::signal::ChannelState;

/// A contiguous slice of the shared channel-index pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolRange {
    start: u32,
    len: u32,
}

impl PoolRange {
    pub(crate) fn slice<'p>(&self, pool: &'p [u32]) -> &'p [u32] {
        &pool[self.start as usize..(self.start + self.len) as usize]
    }
}

/// Datapath operation of a function block, specialized at plan-build time.
///
/// Closed-form operations are inlined (mirroring
/// [`elastic_datapath::evaluate`] bit for bit, including its
/// missing-operand → 0 behaviour after the `unwrap_or(0)` the function
/// controller applies); SECDED codes are prebuilt once instead of per
/// evaluation; everything else falls back to `evaluate` itself.
#[derive(Debug, Clone)]
pub(crate) enum DataOp {
    Identity,
    Const(u64),
    Not,
    Neg,
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Inc,
    Dec,
    Eq,
    Ne,
    Lt,
    SecdedEncode(Secded),
    SecdedCorrect(Secded),
    SecdedSyndrome(Secded),
    General(Op),
}

impl DataOp {
    fn from_op(op: &Op) -> DataOp {
        match op {
            Op::Identity => DataOp::Identity,
            Op::Const(value) => DataOp::Const(*value),
            Op::Not => DataOp::Not,
            Op::Neg => DataOp::Neg,
            Op::Add => DataOp::Add,
            Op::Sub => DataOp::Sub,
            Op::And => DataOp::And,
            Op::Or => DataOp::Or,
            Op::Xor => DataOp::Xor,
            Op::Shl => DataOp::Shl,
            Op::Shr => DataOp::Shr,
            Op::Inc => DataOp::Inc,
            Op::Dec => DataOp::Dec,
            Op::Eq => DataOp::Eq,
            Op::Ne => DataOp::Ne,
            Op::Lt => DataOp::Lt,
            // Invalid widths keep the general path so they panic at first
            // evaluation, exactly when the interpreted engines would.
            Op::SecdedEncode { data_width } if (1..=57).contains(data_width) => {
                DataOp::SecdedEncode(Secded::new(*data_width))
            }
            Op::SecdedCorrect { data_width } if (1..=57).contains(data_width) => {
                DataOp::SecdedCorrect(Secded::new(*data_width))
            }
            Op::SecdedSyndrome { data_width } if (1..=57).contains(data_width) => {
                DataOp::SecdedSyndrome(Secded::new(*data_width))
            }
            other => DataOp::General(other.clone()),
        }
    }

    /// Mirrors `evaluate(op, inputs).unwrap_or(0)` — the exact expression the
    /// function controller computes.
    #[inline]
    fn eval(&self, inputs: &[u64]) -> u64 {
        match self {
            DataOp::Identity => inputs.first().copied().unwrap_or(0),
            DataOp::Const(value) => *value,
            DataOp::Not => inputs.first().map(|&a| !a).unwrap_or(0),
            DataOp::Neg => inputs.first().map(|&a| a.wrapping_neg()).unwrap_or(0),
            DataOp::Add => {
                if inputs.is_empty() {
                    0
                } else {
                    inputs.iter().fold(0u64, |acc, &x| acc.wrapping_add(x))
                }
            }
            DataOp::Sub => match inputs {
                [a, b, ..] => a.wrapping_sub(*b),
                _ => 0,
            },
            DataOp::And => {
                if inputs.is_empty() {
                    0
                } else {
                    inputs.iter().fold(u64::MAX, |acc, &x| acc & x)
                }
            }
            DataOp::Or => inputs.iter().fold(0u64, |acc, &x| acc | x),
            DataOp::Xor => inputs.iter().fold(0u64, |acc, &x| acc ^ x),
            DataOp::Shl => match inputs {
                [a, b, ..] => a.wrapping_shl((*b & 63) as u32),
                _ => 0,
            },
            DataOp::Shr => match inputs {
                [a, b, ..] => a.wrapping_shr((*b & 63) as u32),
                _ => 0,
            },
            DataOp::Inc => inputs.first().map(|&a| a.wrapping_add(1)).unwrap_or(0),
            DataOp::Dec => inputs.first().map(|&a| a.wrapping_sub(1)).unwrap_or(0),
            DataOp::Eq => match inputs {
                [a, b, ..] => u64::from(a == b),
                _ => 0,
            },
            DataOp::Ne => match inputs {
                [a, b, ..] => u64::from(a != b),
                _ => 0,
            },
            DataOp::Lt => match inputs {
                [a, b, ..] => u64::from(a < b),
                _ => 0,
            },
            DataOp::SecdedEncode(code) => inputs.first().map(|&a| code.encode(a)).unwrap_or(0),
            DataOp::SecdedCorrect(code) => inputs.first().map(|&a| code.correct(a)).unwrap_or(0),
            DataOp::SecdedSyndrome(code) => {
                inputs.first().map(|&a| code.classify(a).to_word()).unwrap_or(0)
            }
            DataOp::General(op) => evaluate(op, inputs).unwrap_or(0),
        }
    }
}

/// One fused settle operation. Channel operands are dense channel indices;
/// multi-channel operand lists live in the plan's shared pool.
#[derive(Debug, Clone)]
pub(crate) enum MicroOp {
    /// Change-tracked dynamic `Controller::eval` — registered controllers
    /// (no rail reads) and every kind the planner does not specialize.
    Eval { node: u32 },
    /// Function block, forward group: join validity, datapath value, `S-`.
    FnFwd { node: u32, inputs: PoolRange, output: u32, op: DataOp },
    /// Function block, backward group: `S+`/`V-` toward every input.
    FnBwd { node: u32, inputs: PoolRange, output: u32 },
    /// Zero-backward buffer, forward group (reads the stored-word snapshot).
    ZbFwd { node: u32, input: u32, output: u32, slot: u32 },
    /// Zero-backward buffer, backward group.
    ZbBwd { node: u32, input: u32, output: u32, slot: u32 },
    /// Eager fork, forward group (reads the pending-branch snapshot).
    ForkFwd { node: u32, input: u32, outputs: PoolRange, slot: u32 },
    /// Eager fork, backward group.
    ForkBwd { node: u32, input: u32, outputs: PoolRange, slot: u32 },
    /// Multiplexor, forward group. `slot` indexes the owed-anti-token
    /// snapshot for early-evaluation muxes (`u32::MAX` for lazy ones).
    MuxFwd { node: u32, select: u32, data: PoolRange, output: u32, early: bool, slot: u32 },
    /// Multiplexor, backward group.
    MuxBwd { node: u32, select: u32, data: PoolRange, output: u32, early: bool, slot: u32 },
}

impl MicroOp {
    pub(crate) fn node(&self) -> u32 {
        match self {
            MicroOp::Eval { node }
            | MicroOp::FnFwd { node, .. }
            | MicroOp::FnBwd { node, .. }
            | MicroOp::ZbFwd { node, .. }
            | MicroOp::ZbBwd { node, .. }
            | MicroOp::ForkFwd { node, .. }
            | MicroOp::ForkBwd { node, .. }
            | MicroOp::MuxFwd { node, .. }
            | MicroOp::MuxBwd { node, .. } => *node,
        }
    }
}

/// Where one snapshot slot is refreshed from at the start of every settle.
#[derive(Debug, Clone, Copy)]
enum SnapshotSource {
    /// `(is_full, stored_word)` of a zero-backward buffer.
    ZeroBackward { node: u32, slot: u32 },
    /// Effective-pending bitmask of an eager fork.
    Fork { node: u32, slot: u32 },
    /// Owed-anti-token bitmask (owed > 0 per data input) of an early mux.
    Mux { node: u32, slot: u32 },
}

/// The engine state one settle pass operates on — disjoint borrows of the
/// `Simulation` fields, constructed in `engine.rs` (the plan itself is taken
/// out of the simulation for the duration of the call).
pub(crate) struct SettleCtx<'a> {
    pub(crate) channels: &'a mut [ChannelState],
    pub(crate) controllers: &'a [Box<dyn Controller>],
    pub(crate) node_ports: &'a [(Vec<usize>, Vec<usize>)],
    pub(crate) channel_widths: &'a [u8],
    pub(crate) dirty: &'a mut Vec<usize>,
    pub(crate) oscillating: &'a mut Vec<u32>,
    /// Settle budget in full-sweep equivalents (caps trailing sweeps).
    pub(crate) budget: usize,
    pub(crate) settle_iterations: &'a mut u64,
    pub(crate) controller_evals: &'a mut u64,
}

/// A netlist lowered to a scheduled sequence of [`MicroOp`]s.
#[derive(Debug)]
pub(crate) struct CompiledPlan {
    /// All ops: `ops[..prefix_len]` is the straight-line prefix,
    /// `ops[prefix_len..]` the trailing (iterated) segment.
    pub(crate) ops: Vec<MicroOp>,
    pub(crate) prefix_len: usize,
    /// Shared channel-index pool backing every [`PoolRange`].
    pub(crate) pool: Vec<u32>,
    /// Per-channel data mask derived from the declared width.
    channel_masks: Vec<u64>,
    snapshots: Vec<SnapshotSource>,
    /// Snapshot storage, refreshed once per settle.
    zb: Vec<(bool, u64)>,
    fork_pending: Vec<u64>,
    mux_owed: Vec<u64>,
    /// Reusable operand scratch for datapath evaluation.
    operands: Vec<u64>,
}

/// Rail-group index: the producer-owned group `{V+, data, S-}` of channel
/// `c` is `2c`, the consumer-owned group `{S+, V-}` is `2c + 1`.
const FWD: usize = 0;
const BWD: usize = 1;

fn rail(channel: u32, group: usize) -> usize {
    channel as usize * 2 + group
}

fn intern(pool: &mut Vec<u32>, channels: &[usize]) -> PoolRange {
    let start = pool.len() as u32;
    pool.extend(channels.iter().map(|&c| c as u32));
    PoolRange { start, len: channels.len() as u32 }
}

fn mask_for(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width).wrapping_sub(1)
    }
}

fn snapshot_ref<T: 'static>(controllers: &[Box<dyn Controller>], node: u32) -> &T {
    controllers[node as usize]
        .as_any()
        .and_then(|any| any.downcast_ref::<T>())
        .expect("compiled snapshot source matches the controller's concrete type")
}

impl CompiledPlan {
    /// Lowers a validated netlist into a scheduled plan. `node_ports`,
    /// `reads_channels` and `channel_widths` are the engine's dense tables;
    /// dense node order is the `live_nodes()` order they were built in.
    ///
    /// Must not be called for netlists with optimistic controllers (the
    /// engine falls back to the event-driven strategy for those).
    pub(crate) fn build(
        netlist: &Netlist,
        node_ports: &[(Vec<usize>, Vec<usize>)],
        reads_channels: &[bool],
        channel_widths: &[u8],
    ) -> CompiledPlan {
        let mut ops = Vec::new();
        let mut pool = Vec::new();
        let mut snapshots = Vec::new();
        let mut zb_slots = 0u32;
        let mut fork_slots = 0u32;
        let mut mux_slots = 0u32;

        for (index, node) in netlist.live_nodes().enumerate() {
            let node_u32 = index as u32;
            let (inputs, outputs) = &node_ports[index];
            if !reads_channels[index] {
                // Fully registered: one dynamic eval, no rail reads.
                ops.push(MicroOp::Eval { node: node_u32 });
                continue;
            }
            match &node.kind {
                NodeKind::Function(spec) => {
                    let input_range = intern(&mut pool, inputs);
                    let output = outputs[0] as u32;
                    ops.push(MicroOp::FnFwd {
                        node: node_u32,
                        inputs: input_range,
                        output,
                        op: DataOp::from_op(&spec.op),
                    });
                    ops.push(MicroOp::FnBwd { node: node_u32, inputs: input_range, output });
                }
                NodeKind::Buffer(spec) if spec.backward_latency == 0 => {
                    let slot = zb_slots;
                    zb_slots += 1;
                    snapshots.push(SnapshotSource::ZeroBackward { node: node_u32, slot });
                    let input = inputs[0] as u32;
                    let output = outputs[0] as u32;
                    ops.push(MicroOp::ZbFwd { node: node_u32, input, output, slot });
                    ops.push(MicroOp::ZbBwd { node: node_u32, input, output, slot });
                }
                NodeKind::Fork(spec) if spec.eager && spec.outputs <= 64 => {
                    let slot = fork_slots;
                    fork_slots += 1;
                    snapshots.push(SnapshotSource::Fork { node: node_u32, slot });
                    let input = inputs[0] as u32;
                    let output_range = intern(&mut pool, outputs);
                    ops.push(MicroOp::ForkFwd {
                        node: node_u32,
                        input,
                        outputs: output_range,
                        slot,
                    });
                    ops.push(MicroOp::ForkBwd {
                        node: node_u32,
                        input,
                        outputs: output_range,
                        slot,
                    });
                }
                NodeKind::Mux(spec)
                    if spec.data_inputs >= 1 && (!spec.early_eval || spec.data_inputs <= 64) =>
                {
                    let slot = if spec.early_eval {
                        let slot = mux_slots;
                        mux_slots += 1;
                        snapshots.push(SnapshotSource::Mux { node: node_u32, slot });
                        slot
                    } else {
                        u32::MAX
                    };
                    let select = inputs[0] as u32;
                    let data_range = intern(&mut pool, &inputs[1..]);
                    let output = outputs[0] as u32;
                    ops.push(MicroOp::MuxFwd {
                        node: node_u32,
                        select,
                        data: data_range,
                        output,
                        early: spec.early_eval,
                        slot,
                    });
                    ops.push(MicroOp::MuxBwd {
                        node: node_u32,
                        select,
                        data: data_range,
                        output,
                        early: spec.early_eval,
                        slot,
                    });
                }
                _ => ops.push(MicroOp::Eval { node: node_u32 }),
            }
        }

        let (ops, prefix_len) = schedule(ops, &pool, node_ports, reads_channels, channel_widths);

        CompiledPlan {
            ops,
            prefix_len,
            pool,
            channel_masks: channel_widths.iter().map(|&w| mask_for(w)).collect(),
            snapshots,
            zb: vec![(false, 0); zb_slots as usize],
            fork_pending: vec![0; fork_slots as usize],
            mux_owed: vec![0; mux_slots as usize],
            operands: Vec::new(),
        }
    }

    /// Drives the channels to their fixed point for one cycle. Returns
    /// `false` when the trailing segment fails to stabilise within the
    /// budget; the caller then finds the oscillating nodes in
    /// `ctx.oscillating` and the last wave's channels in `ctx.dirty`,
    /// exactly like the other strategies.
    pub(crate) fn settle(&mut self, ctx: &mut SettleCtx<'_>) -> bool {
        let CompiledPlan {
            ops,
            prefix_len,
            pool,
            channel_masks,
            snapshots,
            zb,
            fork_pending,
            mux_owed,
            operands,
        } = self;

        // Snapshot the sequential state the specialized equations read;
        // `eval` never mutates it, so once per settle is exact.
        for source in snapshots.iter() {
            match *source {
                SnapshotSource::ZeroBackward { node, slot } => {
                    let buffer: &ZeroBackwardBuffer = snapshot_ref(ctx.controllers, node);
                    zb[slot as usize] = (buffer.is_full(), buffer.stored().unwrap_or(0));
                }
                SnapshotSource::Fork { node, slot } => {
                    let fork: &EagerFork = snapshot_ref(ctx.controllers, node);
                    fork_pending[slot as usize] = fork.pending_mask();
                }
                SnapshotSource::Mux { node, slot } => {
                    let mux: &MuxController = snapshot_ref(ctx.controllers, node);
                    let mut mask = 0u64;
                    for (j, &owed) in mux.owed_anti_tokens().iter().take(64).enumerate() {
                        if owed > 0 {
                            mask |= 1u64 << j;
                        }
                    }
                    mux_owed[slot as usize] = mask;
                }
            }
        }

        ctx.dirty.clear();
        for op in &ops[..*prefix_len] {
            exec(op, pool, channel_masks, zb, fork_pending, mux_owed, operands, ctx, false);
        }
        *ctx.settle_iterations += *prefix_len as u64;

        let trailing = &ops[*prefix_len..];
        if trailing.is_empty() {
            return true;
        }
        for _ in 0..ctx.budget {
            *ctx.settle_iterations += trailing.len() as u64;
            ctx.dirty.clear();
            ctx.oscillating.clear();
            let mut changed = false;
            for op in trailing {
                if exec(op, pool, channel_masks, zb, fork_pending, mux_owed, operands, ctx, true) {
                    changed = true;
                    ctx.oscillating.push(op.node());
                }
            }
            if !changed {
                ctx.oscillating.clear();
                return true;
            }
        }
        false
    }
}

/// Computes the per-op schedule: writer table over rail groups, dependency
/// edges writer → reader, Kahn topological order. Ops left unscheduled (on a
/// rail cycle, reading their own writes, or downstream of either) form the
/// trailing segment in original op order.
fn schedule(
    ops: Vec<MicroOp>,
    pool: &[u32],
    node_ports: &[(Vec<usize>, Vec<usize>)],
    reads_channels: &[bool],
    channel_widths: &[u8],
) -> (Vec<MicroOp>, usize) {
    let rail_count = channel_widths.len() * 2;
    let mut writer = vec![usize::MAX; rail_count];
    for (index, op) in ops.iter().enumerate() {
        for r in write_rails(op, pool, node_ports) {
            debug_assert_eq!(writer[r], usize::MAX, "every rail group has a single writer");
            writer[r] = index;
        }
    }

    let mut in_degree = vec![0u32; ops.len()];
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); ops.len()];
    for (index, op) in ops.iter().enumerate() {
        for r in read_rails(op, pool, node_ports, reads_channels) {
            let w = writer[r];
            if w == usize::MAX {
                continue;
            }
            in_degree[index] += 1;
            if w == index {
                // Reading a rail the op itself writes (a self-loop channel):
                // the in-degree contribution is never released, forcing the
                // op — and everything downstream — into the trailing
                // segment, where iteration either reaches the fixpoint or
                // reports the combinational loop, like the other engines.
                continue;
            }
            successors[w].push(index as u32);
        }
    }

    let mut queue: std::collections::VecDeque<usize> =
        (0..ops.len()).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(ops.len());
    while let Some(index) = queue.pop_front() {
        order.push(index);
        for &next in &successors[index] {
            in_degree[next as usize] -= 1;
            if in_degree[next as usize] == 0 {
                queue.push_back(next as usize);
            }
        }
    }
    let prefix_len = order.len();
    let mut scheduled = vec![false; ops.len()];
    for &index in &order {
        scheduled[index] = true;
    }
    for (index, done) in scheduled.iter().enumerate() {
        if !done {
            order.push(index);
        }
    }

    let mut slots: Vec<Option<MicroOp>> = ops.into_iter().map(Some).collect();
    let ordered = order.iter().map(|&i| slots[i].take().expect("each op scheduled once")).collect();
    (ordered, prefix_len)
}

/// Rail groups written by an op (the rails its node owns, split by group).
fn write_rails(op: &MicroOp, pool: &[u32], node_ports: &[(Vec<usize>, Vec<usize>)]) -> Vec<usize> {
    match op {
        MicroOp::Eval { node } => {
            let (inputs, outputs) = &node_ports[*node as usize];
            outputs
                .iter()
                .map(|&c| rail(c as u32, FWD))
                .chain(inputs.iter().map(|&c| rail(c as u32, BWD)))
                .collect()
        }
        MicroOp::FnFwd { output, .. } => vec![rail(*output, FWD)],
        MicroOp::FnBwd { inputs, .. } => inputs.slice(pool).iter().map(|&c| rail(c, BWD)).collect(),
        MicroOp::ZbFwd { output, .. } => vec![rail(*output, FWD)],
        MicroOp::ZbBwd { input, .. } => vec![rail(*input, BWD)],
        MicroOp::ForkFwd { outputs, .. } => {
            outputs.slice(pool).iter().map(|&c| rail(c, FWD)).collect()
        }
        MicroOp::ForkBwd { input, .. } => vec![rail(*input, BWD)],
        MicroOp::MuxFwd { output, .. } => vec![rail(*output, FWD)],
        MicroOp::MuxBwd { select, data, .. } => std::iter::once(rail(*select, BWD))
            .chain(data.slice(pool).iter().map(|&c| rail(c, BWD)))
            .collect(),
    }
}

/// Rail groups an op's equations read.
fn read_rails(
    op: &MicroOp,
    pool: &[u32],
    node_ports: &[(Vec<usize>, Vec<usize>)],
    reads_channels: &[bool],
) -> Vec<usize> {
    match op {
        MicroOp::Eval { node } => {
            if !reads_channels[*node as usize] {
                return Vec::new();
            }
            // Unspecialized kinds: assume the eval may read every attached
            // rail it does not own.
            let (inputs, outputs) = &node_ports[*node as usize];
            inputs
                .iter()
                .map(|&c| rail(c as u32, FWD))
                .chain(outputs.iter().map(|&c| rail(c as u32, BWD)))
                .collect()
        }
        MicroOp::FnFwd { inputs, .. } => inputs.slice(pool).iter().map(|&c| rail(c, FWD)).collect(),
        MicroOp::FnBwd { inputs, output, .. } => inputs
            .slice(pool)
            .iter()
            .map(|&c| rail(c, FWD))
            .chain(std::iter::once(rail(*output, BWD)))
            .collect(),
        MicroOp::ZbFwd { input, .. } => vec![rail(*input, FWD)],
        MicroOp::ZbBwd { output, .. } => vec![rail(*output, BWD)],
        MicroOp::ForkFwd { input, .. } => vec![rail(*input, FWD)],
        MicroOp::ForkBwd { input, outputs, .. } => std::iter::once(rail(*input, FWD))
            .chain(outputs.slice(pool).iter().flat_map(|&c| [rail(c, FWD), rail(c, BWD)]))
            .collect(),
        MicroOp::MuxFwd { select, data, .. } => std::iter::once(rail(*select, FWD))
            .chain(data.slice(pool).iter().map(|&c| rail(c, FWD)))
            .collect(),
        MicroOp::MuxBwd { select, data, output, .. } => std::iter::once(rail(*select, FWD))
            .chain(data.slice(pool).iter().map(|&c| rail(c, FWD)))
            .chain(std::iter::once(rail(*output, BWD)))
            .collect(),
    }
}

#[inline]
fn set_bool(slot: &mut bool, value: bool) -> bool {
    if *slot != value {
        *slot = value;
        true
    } else {
        false
    }
}

#[inline]
fn set_data(slot: &mut u64, value: u64) -> bool {
    if *slot != value {
        *slot = value;
        true
    } else {
        false
    }
}

/// Executes one micro-op against the current channel state. Every write is
/// compare-and-set; returns `true` when any signal changed. With `track`
/// set, changed channels are pushed onto `ctx.dirty` (the trailing sweeps'
/// convergence witness).
#[allow(clippy::too_many_arguments)]
#[inline]
fn exec(
    op: &MicroOp,
    pool: &[u32],
    masks: &[u64],
    zb: &[(bool, u64)],
    fork_pending: &[u64],
    mux_owed: &[u64],
    operands: &mut Vec<u64>,
    ctx: &mut SettleCtx<'_>,
    track: bool,
) -> bool {
    match op {
        MicroOp::Eval { node } => {
            let index = *node as usize;
            let before = ctx.dirty.len();
            let (inputs, outputs) = &ctx.node_ports[index];
            let mut io =
                NodeIo::tracked(ctx.channels, inputs, outputs, ctx.channel_widths, ctx.dirty);
            ctx.controllers[index].eval(&mut io);
            *ctx.controller_evals += 1;
            let changed = ctx.dirty.len() > before;
            if !track {
                ctx.dirty.truncate(before);
            }
            changed
        }
        MicroOp::FnFwd { inputs, output, op: data_op, .. } => {
            let out = *output as usize;
            let mut all_valid = true;
            let mut all_accept_kill = true;
            operands.clear();
            for &ch in inputs.slice(pool) {
                let c = &ctx.channels[ch as usize];
                all_valid &= c.forward_valid;
                all_accept_kill &= !c.backward_stop;
                operands.push(c.data);
            }
            let value = data_op.eval(operands) & masks[out];
            let anti_stop = !(all_valid || all_accept_kill);
            let c = &mut ctx.channels[out];
            let changed = set_bool(&mut c.forward_valid, all_valid)
                | set_data(&mut c.data, value)
                | set_bool(&mut c.backward_stop, anti_stop);
            if changed && track {
                ctx.dirty.push(out);
            }
            changed
        }
        MicroOp::FnBwd { inputs, output, .. } => {
            let out = &ctx.channels[*output as usize];
            let kill = out.backward_valid;
            let output_stop = out.forward_stop;
            let mut all_valid = true;
            let mut all_accept_kill = true;
            for &ch in inputs.slice(pool) {
                let c = &ctx.channels[ch as usize];
                all_valid &= c.forward_valid;
                all_accept_kill &= !c.backward_stop;
            }
            let output_transfer = all_valid && !output_stop && !kill;
            let annihilate = all_valid && kill;
            let forward_kill = kill && !all_valid && all_accept_kill;
            let fire = output_transfer || annihilate;
            let mut changed = false;
            for &ch in inputs.slice(pool) {
                let c = &mut ctx.channels[ch as usize];
                let ch_changed = set_bool(&mut c.forward_stop, !fire)
                    | set_bool(&mut c.backward_valid, forward_kill);
                if ch_changed {
                    changed = true;
                    if track {
                        ctx.dirty.push(ch as usize);
                    }
                }
            }
            changed
        }
        MicroOp::ZbFwd { input, output, slot, .. } => {
            let (full, stored) = zb[*slot as usize];
            let out = *output as usize;
            let anti_stop = !full && ctx.channels[*input as usize].backward_stop;
            let c = &mut ctx.channels[out];
            let changed = set_bool(&mut c.forward_valid, full)
                | set_data(&mut c.data, stored & masks[out])
                | set_bool(&mut c.backward_stop, anti_stop);
            if changed && track {
                ctx.dirty.push(out);
            }
            changed
        }
        MicroOp::ZbBwd { input, output, slot, .. } => {
            let (full, _) = zb[*slot as usize];
            let out = &ctx.channels[*output as usize];
            let stop = full && out.forward_stop && !out.backward_valid;
            let pass_through = !full && out.backward_valid;
            let input_index = *input as usize;
            let c = &mut ctx.channels[input_index];
            let changed =
                set_bool(&mut c.forward_stop, stop) | set_bool(&mut c.backward_valid, pass_through);
            if changed && track {
                ctx.dirty.push(input_index);
            }
            changed
        }
        MicroOp::ForkFwd { input, outputs, slot, .. } => {
            let inp = ctx.channels[*input as usize];
            let pending = fork_pending[*slot as usize];
            let mut changed = false;
            for (branch, &ch) in outputs.slice(pool).iter().enumerate() {
                let needs = inp.forward_valid && (pending >> branch) & 1 == 1;
                let out = ch as usize;
                let c = &mut ctx.channels[out];
                let ch_changed = set_bool(&mut c.forward_valid, needs)
                    | set_data(&mut c.data, inp.data & masks[out])
                    | set_bool(&mut c.backward_stop, !needs);
                if ch_changed {
                    changed = true;
                    if track {
                        ctx.dirty.push(out);
                    }
                }
            }
            changed
        }
        MicroOp::ForkBwd { input, outputs, slot, .. } => {
            let input_valid = ctx.channels[*input as usize].forward_valid;
            let pending = fork_pending[*slot as usize];
            let mut done = true;
            for (branch, &ch) in outputs.slice(pool).iter().enumerate() {
                if (pending >> branch) & 1 == 0 {
                    continue;
                }
                let out = &ctx.channels[ch as usize];
                let killed = out.backward_valid && !out.backward_stop;
                let transferred = out.forward_valid && !out.forward_stop;
                if !(input_valid && (killed || transferred)) {
                    done = false;
                }
            }
            let input_fires = input_valid && done;
            let input_index = *input as usize;
            let c = &mut ctx.channels[input_index];
            let changed = set_bool(&mut c.forward_stop, !input_fires)
                | set_bool(&mut c.backward_valid, false);
            if changed && track {
                ctx.dirty.push(input_index);
            }
            changed
        }
        MicroOp::MuxFwd { select, data, output, early, slot, .. } => {
            let sel = ctx.channels[*select as usize];
            let data_channels = data.slice(pool);
            let selected = (sel.data as usize) % data_channels.len();
            let selected_channel = data_channels[selected] as usize;
            let valid = if *early {
                let clean = (mux_owed[*slot as usize] >> selected) & 1 == 0;
                sel.forward_valid && ctx.channels[selected_channel].forward_valid && clean
            } else {
                let all_data_valid =
                    data_channels.iter().all(|&ch| ctx.channels[ch as usize].forward_valid);
                sel.forward_valid && all_data_valid
            };
            let value = ctx.channels[selected_channel].data;
            let out = *output as usize;
            let c = &mut ctx.channels[out];
            let changed = set_bool(&mut c.forward_valid, valid)
                | set_data(&mut c.data, value & masks[out])
                | set_bool(&mut c.backward_stop, true);
            if changed && track {
                ctx.dirty.push(out);
            }
            changed
        }
        MicroOp::MuxBwd { select, data, output, early, slot, .. } => {
            let sel = ctx.channels[*select as usize];
            let data_channels = data.slice(pool);
            let selected = (sel.data as usize) % data_channels.len();
            let selected_channel = data_channels[selected] as usize;
            let owed_mask = if *early { mux_owed[*slot as usize] } else { 0 };
            let clean = (owed_mask >> selected) & 1 == 0;
            let valid = if *early {
                sel.forward_valid && ctx.channels[selected_channel].forward_valid && clean
            } else {
                let all_data_valid =
                    data_channels.iter().all(|&ch| ctx.channels[ch as usize].forward_valid);
                sel.forward_valid && all_data_valid
            };
            let fire = valid && !ctx.channels[*output as usize].forward_stop;
            let mut changed = false;
            {
                let select_index = *select as usize;
                let c = &mut ctx.channels[select_index];
                if set_bool(&mut c.forward_stop, !fire) {
                    changed = true;
                    if track {
                        ctx.dirty.push(select_index);
                    }
                }
            }
            for (j, &ch) in data_channels.iter().enumerate() {
                let (kill, stop) = if *early {
                    let is_selected = j == selected && sel.forward_valid;
                    let owed = (owed_mask >> j) & 1 == 1 || (fire && !is_selected);
                    let consuming = is_selected && fire && clean;
                    let kill = owed && !consuming;
                    let stop = if kill {
                        false
                    } else if is_selected {
                        !fire
                    } else {
                        true
                    };
                    (kill, stop)
                } else {
                    (false, !fire)
                };
                let index = ch as usize;
                let c = &mut ctx.channels[index];
                let ch_changed =
                    set_bool(&mut c.forward_stop, stop) | set_bool(&mut c.backward_valid, kill);
                if ch_changed {
                    changed = true;
                    if track {
                        ctx.dirty.push(index);
                    }
                }
            }
            changed
        }
    }
}
