//! The controller abstraction: one small SELF handshake machine per node.
//!
//! A [`Controller`] is the cycle-accurate model of one netlist node. Every
//! clock cycle the engine:
//!
//! 1. repeatedly calls [`Controller::eval`] on every controller until the
//!    channel signals reach a fixed point (the combinational phase), then
//! 2. calls [`Controller::commit`] exactly once on every controller with the
//!    settled signals (the clock edge).
//!
//! `eval` must be a pure function of the controller's sequential state and of
//! the signals it *reads*; it drives only the signals its node owns (see
//! [`crate::signal::ChannelState`] for the ownership convention).
//!
//! ## Kill/transfer precedence
//!
//! When a token and an anti-token meet at a node boundary during the same
//! cycle (the producer offers `V+` while the consumer asserts `V-`), the two
//! cancel: the producer treats its token as *killed* (not delivered) and the
//! consumer must not latch it. All controllers in [`crate::controllers`]
//! follow this "kill wins over transfer" convention so both endpoints agree
//! on what happened.

use crate::signal::ChannelState;

/// Read/write access to the channels attached to one node during `eval`.
///
/// Indices are port indices of the node (matching the conventions documented
/// on [`elastic_core::NodeKind`]); the translation to global channel indices
/// is fixed when the simulation is built.
///
/// Every setter is **change-tracked**: it compares the new value against the
/// stored one and records the channel index in the dirty list (when one is
/// attached via [`NodeIo::tracked`]) only on an actual change. The engine's
/// event-driven settle phase uses this to re-evaluate exactly the controllers
/// whose observed signals changed.
#[derive(Debug)]
pub struct NodeIo<'a> {
    channels: &'a mut [ChannelState],
    input_channels: &'a [usize],
    output_channels: &'a [usize],
    /// Declared bit width per global channel; empty means "no masking"
    /// (controller unit tests drive raw 64-bit words).
    channel_widths: &'a [u8],
    dirty: Option<&'a mut Vec<usize>>,
}

impl<'a> NodeIo<'a> {
    /// Creates an untracked port view for one node (used for commits and in
    /// controller unit tests).
    pub fn new(
        channels: &'a mut [ChannelState],
        input_channels: &'a [usize],
        output_channels: &'a [usize],
    ) -> Self {
        NodeIo { channels, input_channels, output_channels, channel_widths: &[], dirty: None }
    }

    /// Creates a change-tracked port view: every setter that changes a stored
    /// signal pushes the affected global channel index onto `dirty` (possibly
    /// more than once; consumers dedupe). `channel_widths` gives the declared
    /// width of every global channel; data driven through
    /// [`NodeIo::set_output_data`] is masked to it, so a channel never
    /// carries more bits than its declaration — the invariant the structural
    /// HDL views rely on (a Verilog wire truncates, so must we), and the
    /// reason width-converting forks/joins are safe to generate.
    pub fn tracked(
        channels: &'a mut [ChannelState],
        input_channels: &'a [usize],
        output_channels: &'a [usize],
        channel_widths: &'a [u8],
        dirty: &'a mut Vec<usize>,
    ) -> Self {
        NodeIo { channels, input_channels, output_channels, channel_widths, dirty: Some(dirty) }
    }

    /// Number of input ports of the node.
    pub fn input_count(&self) -> usize {
        self.input_channels.len()
    }

    /// Number of output ports of the node.
    pub fn output_count(&self) -> usize {
        self.output_channels.len()
    }

    /// The channel state attached to input port `index`.
    pub fn input(&self, index: usize) -> ChannelState {
        self.channels[self.input_channels[index]]
    }

    /// The channel state attached to output port `index`.
    pub fn output(&self, index: usize) -> ChannelState {
        self.channels[self.output_channels[index]]
    }

    /// Compare-and-set of one channel field, recording the channel as dirty
    /// on an actual change.
    fn write<T: PartialEq>(
        &mut self,
        channel: usize,
        field: impl FnOnce(&mut ChannelState) -> &mut T,
        value: T,
    ) {
        let slot = field(&mut self.channels[channel]);
        if *slot != value {
            *slot = value;
            if let Some(dirty) = self.dirty.as_deref_mut() {
                dirty.push(channel);
            }
        }
    }

    /// Drives `S+` on input port `index` (consumer-owned signal).
    pub fn set_input_stop(&mut self, index: usize, stop: bool) {
        self.write(self.input_channels[index], |c| &mut c.forward_stop, stop);
    }

    /// Drives `V-` on input port `index` (consumer-owned signal).
    pub fn set_input_kill(&mut self, index: usize, kill: bool) {
        self.write(self.input_channels[index], |c| &mut c.backward_valid, kill);
    }

    /// Drives `V+` on output port `index` (producer-owned signal).
    pub fn set_output_valid(&mut self, index: usize, valid: bool) {
        self.write(self.output_channels[index], |c| &mut c.forward_valid, valid);
    }

    /// Drives the data word on output port `index` (producer-owned signal).
    ///
    /// The word is masked to the channel's declared width (when the view was
    /// built with widths): every producer — including width-preserving
    /// pass-through controllers such as forks and buffers — truncates exactly
    /// like the wire it models, so a narrow channel fed by a wide producer
    /// behaves identically in simulation and in the emitted HDL.
    pub fn set_output_data(&mut self, index: usize, data: u64) {
        let channel = self.output_channels[index];
        let masked = match self.channel_widths.get(channel) {
            Some(&width) if width < 64 => data & ((1u64 << width) - 1),
            _ => data,
        };
        self.write(channel, |c| &mut c.data, masked);
    }

    /// Drives `S-` on output port `index` (producer-owned signal).
    pub fn set_output_anti_stop(&mut self, index: usize, stop: bool) {
        self.write(self.output_channels[index], |c| &mut c.backward_stop, stop);
    }

    /// Data words currently offered on all input ports (in port order).
    pub fn input_data(&self) -> Vec<u64> {
        (0..self.input_count()).map(|i| self.input(i).data).collect()
    }

    /// `true` when every input port carries a valid token.
    pub fn all_inputs_valid(&self) -> bool {
        (0..self.input_count()).all(|i| self.input(i).forward_valid)
    }
}

/// Per-node statistics exposed by a controller after simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Forward transfers completed on the node's (first) output.
    pub output_transfers: u64,
    /// Tokens cancelled by anti-tokens at this node.
    pub killed_tokens: u64,
    /// Cycles in which the node stalled a valid input.
    pub stall_cycles: u64,
    /// Mispredictions observed (speculative shared modules only).
    pub mispredictions: u64,
}

/// A cycle-accurate model of one netlist node.
pub trait Controller: std::fmt::Debug {
    /// Combinational evaluation: read the attached channels and drive the
    /// node-owned signals. Called repeatedly within a cycle until the channel
    /// signals stop changing; it must therefore be deterministic and depend
    /// only on the sequential state and the read signals.
    fn eval(&self, io: &mut NodeIo<'_>);

    /// `true` when this controller's settle equations have more than one
    /// fixed point and the engine must run the **optimistic seeding pass**
    /// before the honest fixpoint (see the engine's module docs). Lazy forks
    /// are the one such component: a branch's valid is withheld while any
    /// sibling is not ready, and a reconverging join's stop is held while
    /// the valids are missing — a circular wait with a live *and* a dead
    /// solution. Controllers returning `true` must override
    /// [`Controller::eval_optimistic`].
    fn is_optimistic(&self) -> bool {
        false
    }

    /// The optimistic variant of [`Controller::eval`], used only during the
    /// engine's seeding pass: drive the signals *as if* every circular-wait
    /// precondition held (a lazy fork offers all branch copies as if all
    /// branches were ready). Every signal written here is rewritten by the
    /// honest [`Controller::eval`] before the cycle settles, so optimistic
    /// assumptions never leak into the committed state — they only steer a
    /// multi-fixpoint system towards its live solution.
    fn eval_optimistic(&self, io: &mut NodeIo<'_>) {
        self.eval(io);
    }

    /// Clock edge: update the sequential state from the settled signals.
    fn commit(&mut self, io: &NodeIo<'_>);

    /// Rewinds all sequential state (including statistics) to its
    /// post-construction value, so a simulation can be re-run without being
    /// rebuilt (see [`crate::Simulation::reset`]). Implementations may keep
    /// their allocations, but every *observable* — driven signals, committed
    /// state, statistics — must be indistinguishable from a freshly
    /// constructed controller.
    fn reset(&mut self);

    /// Replaces the sink's back-pressure pattern and rewinds the controller
    /// (sinks only — every other node kind returns `false` and ignores the
    /// pattern). The replacement is persistent: later [`Controller::reset`]
    /// calls rewind to the *new* pattern.
    fn override_backpressure(&mut self, pattern: &elastic_core::kind::BackpressurePattern) -> bool {
        let _ = pattern;
        false
    }

    /// Replaces the source's offer pattern and rewinds the controller
    /// (sources only — every other node kind returns `false` and ignores the
    /// pattern). The data stream is kept: only *when* tokens are offered
    /// changes, which is what the environment-injection sweeps of the fuzzing
    /// harness vary. The replacement is persistent: later
    /// [`Controller::reset`] calls rewind to the *new* pattern.
    fn override_source_pattern(&mut self, pattern: &elastic_core::kind::SourcePattern) -> bool {
        let _ = pattern;
        false
    }

    /// Replaces the shared module's prediction policy (speculative shared
    /// modules only — every other node kind drops the box and returns
    /// `false`). The caller provides a freshly initialised scheduler; the
    /// replacement is persistent across later [`Controller::reset`] calls,
    /// which rewind it via [`elastic_core::Scheduler::reset`].
    fn override_scheduler(&mut self, scheduler: Box<dyn elastic_core::Scheduler>) -> bool {
        let _ = scheduler;
        false
    }

    /// `true` when [`Controller::eval`] reads any attached channel signal.
    ///
    /// Fully registered controllers (the standard elastic buffer, sources,
    /// sinks) drive all of their signals from sequential state alone; the
    /// engine then evaluates them exactly once per cycle and never re-wakes
    /// them, and uses them as the cut points that break control loops when it
    /// computes the static evaluation order. Returning `true` is always safe;
    /// returning `false` for a controller that *does* read channels makes the
    /// simulation silently miss signal updates — only override this when
    /// `eval` is a function of `&self` alone.
    fn eval_reads_channels(&self) -> bool {
        true
    }

    /// Concrete-type escape hatch for the compiled settle backend.
    ///
    /// The compiled planner ([`crate::engine::SettleStrategy::Compiled`])
    /// snapshots the sequential state of a few controller kinds once per cycle
    /// (zero-backward buffers, eager forks, early-evaluation muxes) so it can
    /// replay their `eval` equations without dynamic dispatch. Controllers
    /// that participate override this to return `Some(self)`; everything else
    /// keeps the `None` default and is evaluated through the trait as usual.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Statistics collected so far.
    fn stats(&self) -> NodeStats {
        NodeStats::default()
    }

    /// Prediction feedback of the most recent cycle (speculative shared
    /// modules only) — used by the engine to build prediction-accuracy
    /// reports.
    fn last_feedback(&self) -> Option<&elastic_core::SharedFeedback> {
        None
    }

    /// The transfer stream recorded by the node, when it records one
    /// (sinks only): `(cycle, value)` pairs in transfer order.
    fn transfer_stream(&self) -> Option<&[(u64, u64)]> {
        None
    }

    /// Per-user `(transfers, kills)` counters (speculative shared modules only).
    fn per_user_stats(&self) -> Option<(Vec<u64>, Vec<u64>)> {
        None
    }

    /// Per-lane commit/squash/occupancy counters (in-order commit stages
    /// only) — the observable behind the depth sweeps of
    /// `BENCH_commit_depth.json`.
    fn commit_stats(&self) -> Option<crate::metrics::CommitStageStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_io_reads_and_writes_the_right_channels() {
        let mut channels = vec![ChannelState::default(); 3];
        channels[2].data = 77;
        channels[2].forward_valid = true;
        let inputs = vec![2usize];
        let outputs = vec![0usize, 1usize];
        let mut io = NodeIo::new(&mut channels, &inputs, &outputs);

        assert_eq!(io.input_count(), 1);
        assert_eq!(io.output_count(), 2);
        assert!(io.input(0).forward_valid);
        assert_eq!(io.input_data(), vec![77]);
        assert!(io.all_inputs_valid());

        io.set_output_valid(1, true);
        io.set_output_data(1, 9);
        io.set_input_stop(0, true);
        io.set_input_kill(0, true);
        io.set_output_anti_stop(0, true);

        assert!(channels[1].forward_valid);
        assert_eq!(channels[1].data, 9);
        assert!(channels[2].forward_stop);
        assert!(channels[2].backward_valid);
        assert!(channels[0].backward_stop);
    }

    #[test]
    fn default_stats_are_zero() {
        #[derive(Debug)]
        struct Dummy;
        impl Controller for Dummy {
            fn eval(&self, _io: &mut NodeIo<'_>) {}
            fn commit(&mut self, _io: &NodeIo<'_>) {}
            fn reset(&mut self) {}
        }
        assert_eq!(Dummy.stats(), NodeStats::default());
        assert!(Dummy.last_feedback().is_none());
        let mut dummy = Dummy;
        assert!(
            !dummy.override_backpressure(&elastic_core::kind::BackpressurePattern::Never),
            "only sinks support back-pressure overrides"
        );
    }
}
