//! Elastic buffer controllers.
//!
//! Two implementations mirror the two EB variants of the paper:
//!
//! * [`StandardBuffer`] — the latch-based EB of Figure 2(a): forward latency
//!   1, backward latency 1, capacity ≥ 2. All of its driven signals are
//!   functions of the sequential state only, which is exactly what gives it
//!   its one-cycle backward latency.
//! * [`ZeroBackwardBuffer`] — the Figure-5 EB: forward latency 1, backward
//!   latency 0, capacity 1. Stop and kill information traverses it
//!   combinationally, which is what makes speculation recovery fast
//!   (Section 4.3).
//!
//! Both follow the abstract FIFO model of Figure 3: the buffer stores either
//! tokens or anti-tokens (never both), and tokens/anti-tokens cancel at its
//! boundaries.

use std::collections::VecDeque;

use elastic_core::BufferSpec;

use crate::controller::{Controller, NodeIo, NodeStats};

const IN: usize = 0;
const OUT: usize = 0;

/// The standard `Lf = 1`, `Lb = 1` elastic buffer.
#[derive(Debug)]
pub struct StandardBuffer {
    spec: BufferSpec,
    tokens: VecDeque<u64>,
    anti_tokens: u32,
    stats: NodeStats,
}

impl StandardBuffer {
    /// Creates the buffer with its initial occupancy.
    pub fn new(spec: BufferSpec) -> Self {
        let mut tokens = VecDeque::new();
        for _ in 0..spec.init_tokens.max(0) {
            tokens.push_back(spec.init_value);
        }
        let anti_tokens = (-spec.init_tokens).max(0) as u32;
        StandardBuffer { spec, tokens, anti_tokens, stats: NodeStats::default() }
    }

    /// Number of tokens currently stored (diagnostic).
    pub fn occupancy(&self) -> usize {
        self.tokens.len()
    }
}

impl StandardBuffer {
    fn rewind(&mut self) {
        self.tokens.clear();
        for _ in 0..self.spec.init_tokens.max(0) {
            self.tokens.push_back(self.spec.init_value);
        }
        self.anti_tokens = (-self.spec.init_tokens).max(0) as u32;
        self.stats = NodeStats::default();
    }
}

impl Controller for StandardBuffer {
    fn eval(&self, io: &mut NodeIo<'_>) {
        // Forward side: offer the oldest token; stop the producer when full.
        io.set_output_valid(OUT, !self.tokens.is_empty());
        io.set_output_data(OUT, self.tokens.front().copied().unwrap_or(0));
        io.set_input_stop(IN, self.tokens.len() >= self.spec.capacity as usize);
        // Backward side: propagate stored anti-tokens towards the producer;
        // refuse new anti-tokens only when there is neither a token to cancel
        // against nor room in the counterflow storage.
        io.set_input_kill(IN, self.anti_tokens > 0);
        let can_absorb_anti = !self.tokens.is_empty() || self.anti_tokens < self.spec.anti_capacity;
        io.set_output_anti_stop(OUT, !can_absorb_anti);
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let input = io.input(IN);
        let output = io.output(OUT);

        // Output boundary: a token leaves, or is cancelled by an incoming
        // anti-token (kill wins when both could happen).
        let out_kill = output.backward_transfer();
        let out_transfer = output.forward_valid && !output.forward_stop && !out_kill;
        if out_kill {
            if self.tokens.pop_front().is_some() {
                self.stats.killed_tokens += 1;
            } else {
                self.anti_tokens = (self.anti_tokens + 1).min(self.spec.anti_capacity);
            }
        } else if out_transfer {
            self.tokens.pop_front();
            self.stats.output_transfers += 1;
        } else if output.forward_valid && output.forward_stop {
            self.stats.stall_cycles += 1;
        }

        // Input boundary: an anti-token leaves backwards and/or a token
        // arrives; when both meet they annihilate.
        let anti_left = input.backward_transfer();
        let token_arrived = input.forward_valid && !input.forward_stop;
        match (token_arrived, anti_left) {
            (true, true) => {
                // The arriving token cancels against the anti-token at the boundary.
                self.anti_tokens = self.anti_tokens.saturating_sub(1);
                self.stats.killed_tokens += 1;
            }
            (true, false) => {
                if self.anti_tokens > 0 {
                    self.anti_tokens -= 1;
                    self.stats.killed_tokens += 1;
                } else {
                    self.tokens.push_back(input.data);
                }
            }
            (false, true) => {
                self.anti_tokens = self.anti_tokens.saturating_sub(1);
            }
            (false, false) => {}
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.rewind();
    }

    /// Both handshake directions are fully registered: `eval` is a function
    /// of the FIFO state alone, so the standard buffer cuts every zero-delay
    /// control path and is never re-evaluated within a cycle.
    fn eval_reads_channels(&self) -> bool {
        false
    }
}

/// The `Lf = 1`, `Lb = 0`, `C = 1` elastic buffer of Figure 5.
#[derive(Debug)]
pub struct ZeroBackwardBuffer {
    /// The initial occupancy restored by [`Controller::reset`].
    initial: Option<u64>,
    stored: Option<u64>,
    stats: NodeStats,
}

impl ZeroBackwardBuffer {
    /// Creates the buffer with its initial occupancy (at most one token).
    pub fn new(spec: BufferSpec) -> Self {
        let initial = if spec.init_tokens > 0 { Some(spec.init_value) } else { None };
        ZeroBackwardBuffer { initial, stored: initial, stats: NodeStats::default() }
    }

    /// `true` when the buffer currently stores a token (diagnostic).
    pub fn is_full(&self) -> bool {
        self.stored.is_some()
    }

    /// The stored word, if any — the only sequential state `eval` reads.
    /// Exposed so the compiled settle backend (and codegen output) can
    /// snapshot it once per cycle instead of dispatching through the trait.
    pub fn stored(&self) -> Option<u64> {
        self.stored
    }
}

impl Controller for ZeroBackwardBuffer {
    fn eval(&self, io: &mut NodeIo<'_>) {
        let full = self.stored.is_some();
        let output = io.output(OUT);
        let input = io.input(IN);

        io.set_output_valid(OUT, full);
        io.set_output_data(OUT, self.stored.unwrap_or(0));
        // Backward latency 0: the producer-facing stop combines the occupancy
        // with the consumer's stop in the same cycle.
        io.set_input_stop(IN, full && output.forward_stop && !output.backward_valid);
        // Anti-tokens pass through combinationally when the buffer is empty;
        // a stored token absorbs them. Stop them only when they can neither
        // cancel here nor continue upstream.
        let pass_through = !full && output.backward_valid;
        io.set_input_kill(IN, pass_through);
        io.set_output_anti_stop(OUT, !full && input.backward_stop);
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let input = io.input(IN);
        let output = io.output(OUT);
        let was_full = self.stored.is_some();

        if was_full {
            let killed = output.backward_transfer();
            let left = output.forward_valid && !output.forward_stop && !killed;
            if killed {
                self.stored = None;
                self.stats.killed_tokens += 1;
            } else if left {
                self.stored = None;
                self.stats.output_transfers += 1;
            } else if output.forward_stop {
                self.stats.stall_cycles += 1;
            }
        }

        // Input boundary. A token is accepted when the producer saw no stop;
        // if an anti-token was simultaneously passing through, the two cancel
        // at the boundary and nothing is stored.
        let token_arrived = input.forward_valid && !input.forward_stop;
        let anti_passed = input.backward_transfer();
        if token_arrived {
            if anti_passed {
                self.stats.killed_tokens += 1;
            } else if self.stored.is_none() {
                self.stored = Some(input.data);
            }
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stored = self.initial;
        self.stats = NodeStats::default();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;

    fn run_eval(controller: &dyn Controller, channels: &mut [ChannelState]) {
        let inputs = vec![0usize];
        let outputs = vec![1usize];
        let mut io = NodeIo::new(channels, &inputs, &outputs);
        controller.eval(&mut io);
    }

    fn run_commit(controller: &mut dyn Controller, channels: &mut [ChannelState]) {
        let inputs = vec![0usize];
        let outputs = vec![1usize];
        let io = NodeIo::new(channels, &inputs, &outputs);
        controller.commit(&io);
    }

    #[test]
    fn standard_buffer_has_one_cycle_forward_latency() {
        let mut eb = StandardBuffer::new(BufferSpec::bubble());
        let mut channels = [ChannelState::default(), ChannelState::default()];
        // Cycle 0: a token arrives; the output is not yet valid.
        channels[0].forward_valid = true;
        channels[0].data = 7;
        run_eval(&eb, &mut channels);
        assert!(!channels[1].forward_valid);
        assert!(!channels[0].forward_stop, "an empty buffer accepts");
        run_commit(&mut eb, &mut channels);
        assert_eq!(eb.occupancy(), 1);
        // Cycle 1: the token is visible downstream.
        channels[0].forward_valid = false;
        run_eval(&eb, &mut channels);
        assert!(channels[1].forward_valid);
        assert_eq!(channels[1].data, 7);
    }

    #[test]
    fn standard_buffer_stops_when_full_and_backpressured() {
        let mut eb = StandardBuffer::new(BufferSpec::standard(0));
        let mut channels = [ChannelState::default(), ChannelState::default()];
        channels[1].forward_stop = true; // downstream refuses forever
        for value in 0..4u64 {
            channels[0].forward_valid = true;
            channels[0].data = value;
            run_eval(&eb, &mut channels);
            run_commit(&mut eb, &mut channels);
        }
        // Capacity 2: only the first two tokens were accepted, then stop.
        assert_eq!(eb.occupancy(), 2);
        run_eval(&eb, &mut channels);
        assert!(channels[0].forward_stop, "a full buffer must stall its producer");
    }

    #[test]
    fn standard_buffer_cancels_tokens_against_arriving_anti_tokens() {
        let mut eb = StandardBuffer::new(BufferSpec::standard(1));
        let mut channels = [ChannelState::default(), ChannelState::default()];
        channels[1].forward_stop = true;
        channels[1].backward_valid = true; // the consumer kills the stored token
        run_eval(&eb, &mut channels);
        assert!(!channels[1].backward_stop, "a buffer holding a token absorbs the anti-token");
        run_commit(&mut eb, &mut channels);
        assert_eq!(eb.occupancy(), 0);
        assert_eq!(eb.stats().killed_tokens, 1);
    }

    #[test]
    fn standard_buffer_stores_and_forwards_anti_tokens_when_empty() {
        let mut eb = StandardBuffer::new(BufferSpec::bubble());
        let mut channels = [ChannelState::default(), ChannelState::default()];
        // An anti-token arrives at the empty buffer: it is stored …
        channels[1].backward_valid = true;
        channels[0].backward_stop = true; // producer cannot take it yet
        run_eval(&eb, &mut channels);
        run_commit(&mut eb, &mut channels);
        channels[1].backward_valid = false;
        // … and propagated backwards one cycle later (backward latency 1).
        channels[0].backward_stop = false;
        run_eval(&eb, &mut channels);
        assert!(channels[0].backward_valid);
        run_commit(&mut eb, &mut channels);
        // Once forwarded, the counterflow storage is empty again.
        run_eval(&eb, &mut channels);
        assert!(!channels[0].backward_valid);
    }

    #[test]
    fn zero_backward_buffer_propagates_stop_combinationally() {
        let eb = ZeroBackwardBuffer::new(BufferSpec::zero_backward(1));
        let mut channels = [ChannelState::default(), ChannelState::default()];
        channels[1].forward_stop = true;
        run_eval(&eb, &mut channels);
        assert!(channels[0].forward_stop, "stop must traverse the Lb=0 buffer in the same cycle");
        channels[1].forward_stop = false;
        run_eval(&eb, &mut channels);
        assert!(!channels[0].forward_stop);
    }

    #[test]
    fn zero_backward_buffer_passes_anti_tokens_through_when_empty() {
        let eb = ZeroBackwardBuffer::new(BufferSpec::zero_backward(0));
        let mut channels = [ChannelState::default(), ChannelState::default()];
        channels[1].backward_valid = true;
        run_eval(&eb, &mut channels);
        assert!(
            channels[0].backward_valid,
            "kill must traverse the empty Lb=0 buffer combinationally"
        );
        assert!(!channels[1].backward_stop);
    }

    #[test]
    fn zero_backward_buffer_absorbs_anti_tokens_into_its_stored_token() {
        let mut eb = ZeroBackwardBuffer::new(BufferSpec::zero_backward(1));
        let mut channels = [ChannelState::default(), ChannelState::default()];
        channels[1].backward_valid = true;
        channels[1].forward_stop = true;
        run_eval(&eb, &mut channels);
        assert!(!channels[0].backward_valid, "the stored token absorbs the kill locally");
        run_commit(&mut eb, &mut channels);
        assert!(!eb.is_full());
        assert_eq!(eb.stats().killed_tokens, 1);
    }

    #[test]
    fn zero_backward_buffer_streams_at_full_rate() {
        let mut eb = ZeroBackwardBuffer::new(BufferSpec::zero_backward(0));
        let mut channels = [ChannelState::default(), ChannelState::default()];
        let mut received = Vec::new();
        for value in 0..8u64 {
            channels[0].forward_valid = true;
            channels[0].data = value;
            run_eval(&eb, &mut channels);
            if channels[1].forward_valid {
                received.push(channels[1].data);
            }
            run_commit(&mut eb, &mut channels);
        }
        // Capacity 1 with Lb = 0 still sustains one token per cycle.
        assert_eq!(received, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
