//! The in-order commit stage of a speculative shared module (Section 4.2).
//!
//! One lane per shared-module user. Each lane is a small FIFO that parks the
//! user's speculatively computed results until the consumer — the
//! early-evaluation multiplexor resolving the speculation — either
//! **commits** a result (forward transfer) or **squashes** it (anti-token).
//! Three properties make the composition sound for *any* scheduler:
//!
//! * **persistence** — a lane's offered result is a function of its FIFO
//!   occupancy alone, so the offer never retracts when the shared module's
//!   prediction changes; the retraction wave of Section 4.2 dies at this
//!   stage;
//! * **per-lane program order** — a lane delivers results in exactly the
//!   order its user's operands were consumed (FIFO), so per-user streams can
//!   never reorder no matter how the scheduler interleaves the users;
//! * **decoupling** — a granted user's result is accepted the moment it is
//!   computed (lane not full), whether or not the consumer is ready that
//!   cycle, so an adversarial scheduler can no longer starve a user against
//!   aligned consumer back-pressure.
//!
//! The backward (stop/kill) path is combinational, like the Figure-5
//! zero-backward buffer: a kill arriving at an empty lane continues towards
//! the shared module in the same cycle, where it annihilates the waiting
//! operand — keeping misprediction recovery single-cycle (Section 4.3).

use elastic_core::CommitSpec;

use crate::controller::{Controller, NodeIo, NodeStats};
use crate::metrics::CommitStageStats;

/// Controller for an in-order commit stage.
#[derive(Debug)]
pub struct CommitStage {
    spec: CommitSpec,
    /// Parked results per lane, oldest first.
    lanes: Vec<std::collections::VecDeque<u64>>,
    /// Results committed (delivered downstream) per lane.
    commits: Vec<u64>,
    /// Results squashed (killed in place) per lane.
    squashes: Vec<u64>,
    /// Highest occupancy each lane ever reached (run-ahead achieved).
    peaks: Vec<u64>,
    stats: NodeStats,
}

impl CommitStage {
    /// Creates the controller with all lanes empty.
    pub fn new(spec: CommitSpec) -> Self {
        let lanes = spec.lanes;
        CommitStage {
            spec,
            lanes: (0..lanes).map(|_| std::collections::VecDeque::new()).collect(),
            commits: vec![0; lanes],
            squashes: vec![0; lanes],
            peaks: vec![0; lanes],
            stats: NodeStats::default(),
        }
    }

    /// Results committed per lane (diagnostic).
    pub fn commits_per_lane(&self) -> &[u64] {
        &self.commits
    }

    /// Results squashed per lane (diagnostic).
    pub fn squashes_per_lane(&self) -> &[u64] {
        &self.squashes
    }

    /// Highest simultaneous occupancy each lane ever reached (diagnostic).
    pub fn peak_occupancy_per_lane(&self) -> &[u64] {
        &self.peaks
    }

    /// Current occupancy of one lane (diagnostic).
    pub fn occupancy(&self, lane: usize) -> usize {
        self.lanes[lane].len()
    }
}

impl Controller for CommitStage {
    fn eval(&self, io: &mut NodeIo<'_>) {
        for lane in 0..self.spec.lanes {
            let fifo = &self.lanes[lane];
            let full = fifo.len() >= self.spec.depth as usize;
            let output = io.output(lane);
            let input = io.input(lane);

            // Forward side: offer the oldest parked result — persistently.
            io.set_output_valid(lane, !fifo.is_empty());
            io.set_output_data(lane, fifo.front().copied().unwrap_or(0));
            // Zero backward latency: a full lane still accepts when its head
            // leaves (transfer or squash) this very cycle.
            io.set_input_stop(lane, full && output.forward_stop && !output.backward_valid);

            // Anti-tokens squash the head in place; an empty lane passes
            // them through combinationally towards the shared module.
            let pass_through = fifo.is_empty() && output.backward_valid;
            io.set_input_kill(lane, pass_through);
            io.set_output_anti_stop(lane, fifo.is_empty() && input.backward_stop);
        }
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        for lane in 0..self.spec.lanes {
            let input = io.input(lane);
            let output = io.output(lane);

            // Output boundary: the head result commits or is squashed.
            if !self.lanes[lane].is_empty() {
                let squashed = output.backward_transfer();
                let committed = output.forward_valid && !output.forward_stop && !squashed;
                if squashed {
                    self.lanes[lane].pop_front();
                    self.squashes[lane] += 1;
                    self.stats.killed_tokens += 1;
                } else if committed {
                    self.lanes[lane].pop_front();
                    self.commits[lane] += 1;
                    self.stats.output_transfers += 1;
                } else if output.forward_stop {
                    self.stats.stall_cycles += 1;
                }
            }

            // Input boundary: a freshly computed result parks — unless an
            // anti-token was passing through, in which case the two cancel
            // at the boundary and nothing is stored.
            let token_arrived = input.forward_valid && !input.forward_stop;
            let anti_passed = input.backward_transfer();
            if token_arrived {
                if anti_passed {
                    self.squashes[lane] += 1;
                    self.stats.killed_tokens += 1;
                } else {
                    self.lanes[lane].push_back(input.data);
                }
            }
            // The eval-side stop guarantees a lane can never exceed its
            // declared depth: a full lane only accepts in a cycle whose head
            // simultaneously commits or is squashed.
            debug_assert!(
                self.lanes[lane].len() <= self.spec.depth as usize,
                "lane {lane} overflowed its declared depth {}",
                self.spec.depth
            );
            self.peaks[lane] = self.peaks[lane].max(self.lanes[lane].len() as u64);
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn commit_stats(&self) -> Option<CommitStageStats> {
        Some(CommitStageStats {
            depth: self.spec.depth,
            commits_per_lane: self.commits.clone(),
            squashes_per_lane: self.squashes.clone(),
            peak_occupancy_per_lane: self.peaks.clone(),
        })
    }

    fn reset(&mut self) {
        for fifo in &mut self.lanes {
            fifo.clear();
        }
        self.commits.iter_mut().for_each(|c| *c = 0);
        self.squashes.iter_mut().for_each(|s| *s = 0);
        self.peaks.iter_mut().for_each(|p| *p = 0);
        self.stats = NodeStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;

    // Channel layout: inputs 0,1 (lanes 0,1), outputs 2,3.
    fn io(channels: &mut [ChannelState]) -> NodeIo<'_> {
        NodeIo::new(channels, &[0, 1], &[2, 3])
    }

    fn stage() -> CommitStage {
        CommitStage::new(CommitSpec::new(2))
    }

    #[test]
    fn results_park_and_commit_in_operand_order() {
        let mut stage = stage();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[0].data = 0xA;
        stage.eval(&mut io(&mut channels));
        assert!(!channels[2].forward_valid, "one cycle of forward latency");
        assert!(!channels[0].forward_stop, "an empty lane accepts");
        stage.commit(&io(&mut channels));
        assert_eq!(stage.occupancy(0), 1);

        let mut channels = vec![ChannelState::default(); 4];
        stage.eval(&mut io(&mut channels));
        assert!(channels[2].forward_valid);
        assert_eq!(channels[2].data, 0xA);
        stage.commit(&io(&mut channels));
        assert_eq!(stage.commits_per_lane(), &[1, 0]);
        assert_eq!(stage.occupancy(0), 0);
    }

    #[test]
    fn offers_persist_under_back_pressure() {
        let mut stage = stage();
        let mut channels = vec![ChannelState::default(); 4];
        channels[1].forward_valid = true;
        channels[1].data = 7;
        stage.eval(&mut io(&mut channels));
        stage.commit(&io(&mut channels));
        for _ in 0..3 {
            let mut channels = vec![ChannelState::default(); 4];
            channels[3].forward_stop = true; // consumer refuses
            stage.eval(&mut io(&mut channels));
            assert!(channels[3].forward_valid, "a parked result is never retracted");
            assert_eq!(channels[3].data, 7);
            stage.commit(&io(&mut channels));
        }
        assert_eq!(stage.occupancy(1), 1);
    }

    #[test]
    fn anti_tokens_squash_the_parked_result_in_place() {
        let mut stage = stage();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[0].data = 3;
        stage.eval(&mut io(&mut channels));
        stage.commit(&io(&mut channels));

        let mut channels = vec![ChannelState::default(); 4];
        channels[2].backward_valid = true; // wrong-path result
        channels[2].forward_stop = true;
        stage.eval(&mut io(&mut channels));
        assert!(!channels[2].backward_stop, "the lane absorbs the kill");
        assert!(!channels[0].backward_valid, "nothing passes upstream");
        stage.commit(&io(&mut channels));
        assert_eq!(stage.squashes_per_lane(), &[1, 0]);
        assert_eq!(stage.occupancy(0), 0);
    }

    #[test]
    fn kills_pass_through_empty_lanes_combinationally() {
        let stage = stage();
        let mut channels = vec![ChannelState::default(); 4];
        channels[2].backward_valid = true;
        stage.eval(&mut io(&mut channels));
        assert!(channels[0].backward_valid, "the kill continues towards the shared module");
        assert!(!channels[2].backward_stop);
    }

    #[test]
    fn a_full_lane_stops_the_shared_module_until_the_head_leaves() {
        let mut stage = stage();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        stage.eval(&mut io(&mut channels));
        stage.commit(&io(&mut channels));

        // Depth 1, occupied, consumer stalls: the producer is stopped.
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        channels[2].forward_stop = true;
        stage.eval(&mut io(&mut channels));
        assert!(channels[0].forward_stop);
        // Consumer accepts: the head leaves, so the lane accepts in the same
        // cycle (zero backward latency).
        channels[2].forward_stop = false;
        stage.eval(&mut io(&mut channels));
        assert!(!channels[0].forward_stop);
    }

    #[test]
    fn lanes_sustain_full_throughput() {
        let mut stage = stage();
        let mut received = Vec::new();
        let mut channels = vec![ChannelState::default(); 4];
        for value in 0..8u64 {
            channels[0].forward_valid = true;
            channels[0].data = value;
            stage.eval(&mut io(&mut channels));
            if channels[2].forward_valid {
                received.push(channels[2].data);
            }
            stage.commit(&io(&mut channels));
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn reset_rewinds_lanes_and_statistics() {
        let mut stage = stage();
        let mut channels = vec![ChannelState::default(); 4];
        channels[0].forward_valid = true;
        stage.eval(&mut io(&mut channels));
        stage.commit(&io(&mut channels));
        assert_eq!(stage.occupancy(0), 1);
        assert_eq!(stage.peak_occupancy_per_lane(), &[1, 0]);
        stage.reset();
        assert_eq!(stage.occupancy(0), 0);
        assert_eq!(stage.stats(), NodeStats::default());
        assert_eq!(stage.commits_per_lane(), &[0, 0]);
        assert_eq!(stage.peak_occupancy_per_lane(), &[0, 0]);
        assert_eq!(
            stage.commit_stats(),
            Some(crate::metrics::CommitStageStats {
                depth: 1,
                commits_per_lane: vec![0, 0],
                squashes_per_lane: vec![0, 0],
                peak_occupancy_per_lane: vec![0, 0],
            })
        );
    }

    // Single-lane layout used by the depth-N tests: input 0, output 1.
    fn io1(channels: &mut [ChannelState]) -> NodeIo<'_> {
        NodeIo::new(channels, &[0], &[1])
    }

    /// Parks `values` into lane 0 of `stage` while the consumer stalls.
    fn park(stage: &mut CommitStage, values: &[u64]) {
        for &value in values {
            let mut channels = vec![ChannelState::default(); 2];
            channels[0].forward_valid = true;
            channels[0].data = value;
            channels[1].forward_stop = true;
            stage.eval(&mut io1(&mut channels));
            assert!(!channels[0].forward_stop, "lane must have room for {value}");
            stage.commit(&io1(&mut channels));
        }
    }

    #[test]
    fn deep_lanes_squash_several_in_flight_wrong_path_results() {
        // Three wrong-path results are in flight when the mux resolves the
        // other way: each anti-token squashes exactly the oldest entry, in
        // place, without disturbing the entries behind it.
        let mut stage = CommitStage::new(CommitSpec::new(1).with_depth(4));
        park(&mut stage, &[10, 11, 12]);
        assert_eq!(stage.occupancy(0), 3);
        for expected_left in [2usize, 1, 0] {
            let mut channels = vec![ChannelState::default(); 2];
            channels[1].backward_valid = true;
            channels[1].forward_stop = true;
            stage.eval(&mut io1(&mut channels));
            assert!(!channels[1].backward_stop, "an occupied lane absorbs the kill");
            assert!(!channels[0].backward_valid, "nothing passes towards the shared module");
            stage.commit(&io1(&mut channels));
            assert_eq!(stage.occupancy(0), expected_left);
        }
        assert_eq!(stage.squashes_per_lane(), &[3]);
        assert_eq!(stage.commits_per_lane(), &[0]);

        // The lane recovers: a right-path result parks and commits in order.
        park(&mut stage, &[42]);
        let mut channels = vec![ChannelState::default(); 2];
        stage.eval(&mut io1(&mut channels));
        assert!(channels[1].forward_valid);
        assert_eq!(channels[1].data, 42);
        stage.commit(&io1(&mut channels));
        assert_eq!(stage.commits_per_lane(), &[1]);
    }

    #[test]
    fn a_full_deep_lane_accepts_while_its_head_is_squashed() {
        // Zero backward latency must hold at every depth: a full lane still
        // accepts a fresh result in the cycle its head is killed in place.
        let mut stage = CommitStage::new(CommitSpec::new(1).with_depth(2));
        park(&mut stage, &[1, 2]);
        let mut channels = vec![ChannelState::default(); 2];
        channels[0].forward_valid = true;
        channels[0].data = 3;
        channels[1].backward_valid = true;
        channels[1].forward_stop = true;
        stage.eval(&mut io1(&mut channels));
        assert!(!channels[0].forward_stop, "the head leaves, so the lane accepts");
        stage.commit(&io1(&mut channels));
        assert_eq!(stage.occupancy(0), 2);
        assert_eq!(stage.squashes_per_lane(), &[1]);
        // Order is preserved across the squash: 2 then 3 drain.
        for expected in [2u64, 3] {
            let mut channels = vec![ChannelState::default(); 2];
            stage.eval(&mut io1(&mut channels));
            assert_eq!(channels[1].data, expected);
            assert!(channels[1].forward_valid);
            stage.commit(&io1(&mut channels));
        }
        assert_eq!(stage.commits_per_lane(), &[2]);
    }

    #[test]
    fn peak_occupancy_records_the_run_ahead_actually_achieved() {
        let mut stage = CommitStage::new(CommitSpec::new(1).with_depth(4));
        park(&mut stage, &[1, 2, 3]);
        assert_eq!(stage.peak_occupancy_per_lane(), &[3]);
        // Draining does not lower the recorded peak.
        let mut channels = vec![ChannelState::default(); 2];
        stage.eval(&mut io1(&mut channels));
        stage.commit(&io1(&mut channels));
        assert_eq!(stage.occupancy(0), 2);
        assert_eq!(stage.peak_occupancy_per_lane(), &[3]);
        let stats = stage.commit_stats().unwrap();
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.peak_occupancy_per_lane, vec![3]);
        assert!((stats.mean_peak_occupancy().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_lanes_let_the_scheduler_run_ahead() {
        let mut stage = CommitStage::new(CommitSpec::new(1).with_depth(2));
        let mut channels = vec![ChannelState::default(); 2];
        // Two results park while the consumer stalls; the third is stopped.
        for value in [1u64, 2] {
            channels[0].forward_valid = true;
            channels[0].data = value;
            channels[1].forward_stop = true;
            stage.eval(&mut io1(&mut channels));
            assert!(!channels[0].forward_stop, "lane has room for {value}");
            stage.commit(&io1(&mut channels));
        }
        channels[0].forward_valid = true;
        channels[0].data = 3;
        channels[1].forward_stop = true;
        stage.eval(&mut io1(&mut channels));
        assert!(channels[0].forward_stop, "depth 2 exhausted");
        // Results drain oldest-first.
        channels[0].forward_valid = false;
        channels[1].forward_stop = false;
        stage.eval(&mut io1(&mut channels));
        assert_eq!(channels[1].data, 1);
        stage.commit(&io1(&mut channels));
        stage.eval(&mut io1(&mut channels));
        assert_eq!(channels[1].data, 2);
    }
}
