//! Environment controllers: sources (token producers) and sinks (consumers).
//!
//! Sources follow the SELF persistence rule (once `V+` is asserted it is held
//! until the token transfers or is cancelled by an anti-token); sinks apply a
//! configurable back-pressure pattern and record the *transfer stream* — the
//! sequence of accepted values — which is the observable that transfer
//! equivalence (Section 3.1) is defined over.

use elastic_core::kind::{BackpressurePattern, DataStream, SourcePattern};
use elastic_core::{SinkSpec, SourceSpec};
use elastic_datapath::adder::mask;
use elastic_datapath::lfsr::Lfsr64;

use crate::controller::{Controller, NodeIo, NodeStats};

const OUT: usize = 0;
const IN: usize = 0;

/// A token-producing environment.
#[derive(Debug)]
pub struct SourceController {
    spec: SourceSpec,
    width: u8,
    cycle: u64,
    /// Index of the next stream element to offer (advances on transfer or kill).
    position: usize,
    /// Whether a token offer is currently outstanding (persistence).
    offering: bool,
    pattern_rng: Lfsr64,
    stats: NodeStats,
    killed: u64,
}

impl SourceController {
    /// Creates the controller for a source with the given output width.
    pub fn new(spec: SourceSpec, width: u8) -> Self {
        let pattern_seed = Self::pattern_seed(&spec);
        SourceController {
            spec,
            width,
            cycle: 0,
            position: 0,
            offering: false,
            pattern_rng: Lfsr64::new(pattern_seed),
            stats: NodeStats::default(),
            killed: 0,
        }
    }

    fn wants_to_offer(&self) -> bool {
        match &self.spec.pattern {
            SourcePattern::Always => true,
            SourcePattern::Every(period) => self.cycle.is_multiple_of(u64::from((*period).max(1))),
            SourcePattern::List(pattern) => {
                if pattern.is_empty() {
                    true
                } else {
                    pattern[(self.cycle as usize) % pattern.len()]
                }
            }
            SourcePattern::Random { probability, .. } => {
                self.pattern_rng.clone().next_bool(*probability)
            }
            // `SourcePattern` is non-exhaustive: unknown patterns offer eagerly.
            _ => true,
        }
    }

    fn current_value(&self) -> u64 {
        let value = match &self.spec.data {
            DataStream::Counter => self.position as u64,
            DataStream::Const(value) => *value,
            DataStream::List(values) => {
                if values.is_empty() {
                    0
                } else {
                    values[self.position % values.len()]
                }
            }
            DataStream::Random { seed } => {
                // Derive the value from the element index so that repeated
                // `eval` calls within a cycle (and replays of the stream) see
                // the same value: a splitmix-style hash of (seed, position).
                let mut value =
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(self.position as u64);
                value = (value ^ (value >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                value = (value ^ (value >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                value ^ (value >> 31)
            }
            // `DataStream` is non-exhaustive: unknown streams count tokens.
            _ => self.position as u64,
        };
        mask(value, self.width)
    }

    /// Number of tokens cancelled by anti-tokens before being produced.
    pub fn killed_tokens(&self) -> u64 {
        self.killed
    }

    fn pattern_seed(spec: &SourceSpec) -> u64 {
        match spec.pattern {
            SourcePattern::Random { seed, .. } => seed,
            _ => 1,
        }
    }
}

impl Controller for SourceController {
    fn eval(&self, io: &mut NodeIo<'_>) {
        // A pending offer persists (Retry behaviour); otherwise the pattern
        // decides whether a fresh token is offered this cycle.
        let offering = self.offering || self.wants_to_offer();
        io.set_output_valid(OUT, offering);
        io.set_output_data(OUT, self.current_value());
        // Sources always accept anti-tokens: a kill simply cancels the
        // pending (or next) token.
        io.set_output_anti_stop(OUT, false);
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let output = io.output(OUT);
        let offering = output.forward_valid;
        let killed = output.backward_transfer();
        let transferred = offering && !output.forward_stop && !killed;
        if killed {
            if self.spec.consume_on_kill {
                self.position += 1;
            }
            self.killed += 1;
            self.stats.killed_tokens += 1;
            self.offering = false;
        } else if transferred {
            self.position += 1;
            self.stats.output_transfers += 1;
            self.offering = false;
        } else if offering {
            self.offering = true;
            self.stats.stall_cycles += 1;
        }
        self.cycle += 1;
        // Keep the pattern RNG advancing once per cycle regardless of outcome
        // so random offer patterns are per-cycle, not per-token.
        if matches!(self.spec.pattern, SourcePattern::Random { .. }) {
            let _ = self.pattern_rng.next_word();
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.cycle = 0;
        self.position = 0;
        self.offering = false;
        self.pattern_rng = Lfsr64::new(Self::pattern_seed(&self.spec));
        self.stats = NodeStats::default();
        self.killed = 0;
    }

    fn override_source_pattern(&mut self, pattern: &SourcePattern) -> bool {
        self.spec.pattern = pattern.clone();
        self.reset();
        true
    }

    /// The offer pattern and persistence state fully determine the driven
    /// signals; sources never react to channel signals within a cycle.
    fn eval_reads_channels(&self) -> bool {
        false
    }
}

/// A token-consuming environment that records the transfer stream.
#[derive(Debug)]
pub struct SinkController {
    spec: SinkSpec,
    cycle: u64,
    rng: Lfsr64,
    received: Vec<(u64, u64)>,
    stats: NodeStats,
}

impl SinkController {
    /// Creates the controller for a sink.
    pub fn new(spec: SinkSpec) -> Self {
        let seed = Self::backpressure_seed(&spec);
        SinkController {
            spec,
            cycle: 0,
            rng: Lfsr64::new(seed),
            received: Vec::new(),
            stats: NodeStats::default(),
        }
    }

    fn backpressure_seed(spec: &SinkSpec) -> u64 {
        match spec.backpressure {
            BackpressurePattern::Random { seed, .. } => seed,
            _ => 3,
        }
    }

    fn stalls_now(&self) -> bool {
        match &self.spec.backpressure {
            BackpressurePattern::Never => false,
            BackpressurePattern::Every(period) => {
                *period > 0 && self.cycle.is_multiple_of(u64::from(*period))
            }
            BackpressurePattern::List(pattern) => {
                if pattern.is_empty() {
                    false
                } else {
                    pattern[(self.cycle as usize) % pattern.len()]
                }
            }
            BackpressurePattern::Random { probability, .. } => {
                self.rng.clone().next_bool(*probability)
            }
            // `BackpressurePattern` is non-exhaustive: unknown patterns never stall.
            _ => false,
        }
    }

    /// The transfer stream observed so far: `(cycle, value)` pairs.
    pub fn received(&self) -> &[(u64, u64)] {
        &self.received
    }
}

impl Controller for SinkController {
    fn eval(&self, io: &mut NodeIo<'_>) {
        io.set_input_stop(IN, self.stalls_now());
        io.set_input_kill(IN, false);
    }

    fn commit(&mut self, io: &NodeIo<'_>) {
        let input = io.input(IN);
        if input.forward_valid && !input.forward_stop {
            self.received.push((self.cycle, input.data));
            self.stats.output_transfers += 1;
        } else if input.forward_valid {
            self.stats.stall_cycles += 1;
        }
        self.cycle += 1;
        if matches!(self.spec.backpressure, BackpressurePattern::Random { .. }) {
            let _ = self.rng.next_word();
        }
    }

    fn stats(&self) -> NodeStats {
        self.stats
    }

    fn reset(&mut self) {
        self.cycle = 0;
        self.rng = Lfsr64::new(Self::backpressure_seed(&self.spec));
        self.received.clear();
        self.stats = NodeStats::default();
    }

    fn override_backpressure(&mut self, pattern: &BackpressurePattern) -> bool {
        self.spec.backpressure = pattern.clone();
        self.reset();
        true
    }

    fn transfer_stream(&self) -> Option<&[(u64, u64)]> {
        Some(&self.received)
    }

    /// The back-pressure pattern fully determines the driven signals; sinks
    /// never react to channel signals within a cycle (recording happens at
    /// the clock edge).
    fn eval_reads_channels(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::ChannelState;

    fn source_io(channels: &mut [ChannelState]) -> NodeIo<'_> {
        // Sources have no inputs and one output (channel 0).
        NodeIo::new(channels, &[], &[0])
    }

    fn sink_io(channels: &mut [ChannelState]) -> NodeIo<'_> {
        NodeIo::new(channels, &[0], &[])
    }

    #[test]
    fn list_sources_offer_values_in_order_and_repeat() {
        let mut source = SourceController::new(SourceSpec::list(vec![10, 20, 30]), 8);
        let mut channels = [ChannelState::default()];
        let mut seen = Vec::new();
        for _ in 0..5 {
            source.eval(&mut source_io(&mut channels));
            assert!(channels[0].forward_valid);
            seen.push(channels[0].data);
            source.commit(&source_io(&mut channels));
        }
        assert_eq!(seen, vec![10, 20, 30, 10, 20]);
    }

    #[test]
    fn sources_hold_their_token_under_backpressure() {
        let mut source = SourceController::new(SourceSpec::list(vec![5, 6]), 8);
        let mut channels = [ChannelState::default()];
        channels[0].forward_stop = true;
        for _ in 0..3 {
            source.eval(&mut source_io(&mut channels));
            assert_eq!(channels[0].data, 5, "Retry cycles must keep the same token (persistence)");
            source.commit(&source_io(&mut channels));
        }
        channels[0].forward_stop = false;
        source.eval(&mut source_io(&mut channels));
        assert_eq!(channels[0].data, 5);
        source.commit(&source_io(&mut channels));
        source.eval(&mut source_io(&mut channels));
        assert_eq!(channels[0].data, 6, "after the transfer the next value is offered");
    }

    #[test]
    fn anti_tokens_skip_source_tokens() {
        let mut source = SourceController::new(SourceSpec::list(vec![1, 2, 3]), 8);
        let mut channels = [ChannelState::default()];
        channels[0].forward_stop = true;
        channels[0].backward_valid = true; // consumer kills the offered token
        source.eval(&mut source_io(&mut channels));
        assert!(!channels[0].backward_stop);
        source.commit(&source_io(&mut channels));
        assert_eq!(source.killed_tokens(), 1);
        channels[0].backward_valid = false;
        channels[0].forward_stop = false;
        source.eval(&mut source_io(&mut channels));
        assert_eq!(channels[0].data, 2, "the killed token is skipped");
    }

    #[test]
    fn every_n_sources_pace_their_offers() {
        let spec = SourceSpec {
            pattern: SourcePattern::Every(2),
            data: DataStream::Counter,
            ..SourceSpec::default()
        };
        let mut source = SourceController::new(spec, 8);
        let mut channels = [ChannelState::default()];
        let mut offers = Vec::new();
        for _ in 0..6 {
            source.eval(&mut source_io(&mut channels));
            offers.push(channels[0].forward_valid);
            source.commit(&source_io(&mut channels));
            // reset the producer-owned signal between cycles (the engine does
            // this by recomputing from scratch each cycle).
            channels[0].forward_valid = false;
        }
        assert_eq!(offers, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn sinks_record_the_transfer_stream() {
        let mut sink = SinkController::new(SinkSpec::always_ready());
        let mut channels = [ChannelState::default()];
        for value in [4u64, 5, 6] {
            channels[0].forward_valid = true;
            channels[0].data = value;
            sink.eval(&mut sink_io(&mut channels));
            assert!(!channels[0].forward_stop);
            sink.commit(&sink_io(&mut channels));
        }
        let values: Vec<u64> = sink.received().iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![4, 5, 6]);
        assert_eq!(sink.stats().output_transfers, 3);
    }

    #[test]
    fn stalling_sinks_apply_their_pattern() {
        let spec = SinkSpec { backpressure: BackpressurePattern::List(vec![true, false]) };
        let mut sink = SinkController::new(spec);
        let mut channels = [ChannelState::default()];
        channels[0].forward_valid = true;
        channels[0].data = 1;
        let mut stops = Vec::new();
        for _ in 0..4 {
            sink.eval(&mut sink_io(&mut channels));
            stops.push(channels[0].forward_stop);
            sink.commit(&sink_io(&mut channels));
        }
        assert_eq!(stops, vec![true, false, true, false]);
        assert_eq!(sink.received().len(), 2);
    }
}
